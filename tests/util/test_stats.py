"""Tests for online statistics, histograms, and timelines."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    Histogram,
    OnlineStats,
    ThroughputTimeline,
    percentile_of_sorted,
)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.min == 5.0
        assert stats.max == 5.0

    def test_mean_and_std(self):
        stats = OnlineStats()
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, abs=1e-3)

    def test_merge_matches_combined(self):
        rng = random.Random(1)
        left, right, combined = OnlineStats(), OnlineStats(), OnlineStats()
        for _ in range(100):
            value = rng.random()
            left.add(value)
            combined.add(value)
        for _ in range(50):
            value = rng.random() * 10
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.min == combined.min
        assert left.max == combined.max

    def test_merge_into_empty(self):
        left, right = OnlineStats(), OnlineStats()
        right.add(3.0)
        left.merge(right)
        assert left.count == 1
        assert left.mean == 3.0


@given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1, max_size=300))
@settings(max_examples=100)
def test_online_stats_mean_matches_numpy(values):
    stats = OnlineStats()
    for value in values:
        stats.add(value)
    assert stats.mean == pytest.approx(sum(values) / len(values), rel=1e-9)
    assert stats.min == min(values)
    assert stats.max == max(values)


class TestHistogram:
    def test_percentile_monotonic(self):
        hist = Histogram()
        rng = random.Random(2)
        for _ in range(5000):
            hist.add(rng.lognormvariate(-10, 1))
        p50 = hist.percentile(50)
        p90 = hist.percentile(90)
        p99 = hist.percentile(99)
        assert p50 <= p90 <= p99

    def test_percentile_approximates_exact(self):
        hist = Histogram(buckets_per_decade=50)
        rng = random.Random(3)
        values = sorted(rng.uniform(1e-5, 1e-3) for _ in range(10000))
        for value in values:
            hist.add(value)
        exact_p50 = values[len(values) // 2]
        assert hist.percentile(50) == pytest.approx(exact_p50, rel=0.15)

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(99) == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(min_value=0)
        with pytest.raises(ValueError):
            Histogram(min_value=1.0, max_value=0.5)

    def test_out_of_range_values_clamp(self):
        hist = Histogram(min_value=1e-3, max_value=1.0)
        hist.add(1e-9)
        hist.add(100.0)
        assert hist.count == 2

    def test_percentile_extremes_are_exact(self):
        hist = Histogram()
        rng = random.Random(4)
        values = [rng.uniform(1e-5, 1e-3) for _ in range(1000)]
        for value in values:
            hist.add(value)
        # p0/p100 come from the exact min/max tracked by OnlineStats,
        # not from bucket interpolation.
        assert hist.percentile(0) == min(values)
        assert hist.percentile(100) == max(values)

    def test_single_sample_every_percentile_is_the_sample(self):
        hist = Histogram()
        hist.add(3.7e-4)
        for pct in (0, 1, 50, 99, 100):
            assert hist.percentile(pct) == pytest.approx(3.7e-4)

    def test_interpolation_clamped_to_observed_range(self):
        # Two samples in the same wide bucket: interpolation must not
        # report a value outside [min, max].
        hist = Histogram(min_value=1e-3, max_value=10.0, buckets_per_decade=1)
        hist.add(2.0)
        hist.add(2.1)
        for pct in (10, 50, 90):
            assert 2.0 <= hist.percentile(pct) <= 2.1

    def test_empty_percentile_zero_and_hundred(self):
        hist = Histogram()
        assert hist.percentile(0) == 0.0
        assert hist.percentile(100) == 0.0

    def test_negative_percentile_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(-1)


class TestPercentileOfSorted:
    def test_empty_is_zero(self):
        assert percentile_of_sorted([], 50) == 0.0

    def test_single_sample(self):
        assert percentile_of_sorted([4.2], 0) == 4.2
        assert percentile_of_sorted([4.2], 100) == 4.2

    def test_exact_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile_of_sorted(values, 0) == 1.0
        assert percentile_of_sorted(values, 50) == 3.0
        assert percentile_of_sorted(values, 100) == 5.0
        assert percentile_of_sorted(values, 25) == 2.0
        assert percentile_of_sorted([1.0, 2.0], 50) == pytest.approx(1.5)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile_of_sorted([1.0], 101)
        with pytest.raises(ValueError):
            percentile_of_sorted([1.0], -0.1)


class TestThroughputTimeline:
    def test_record_and_series(self):
        timeline = ThroughputTimeline(window=0.1)
        timeline.record(0.05)
        timeline.record(0.06)
        timeline.record(0.25)
        series = timeline.series()
        assert series[0] == (0.0, 20.0)  # 2 events / 0.1 s
        assert series[1] == (pytest.approx(0.1), 0.0)
        assert series[2] == (pytest.approx(0.2), 10.0)

    def test_total(self):
        timeline = ThroughputTimeline(window=0.1)
        for t in (0.0, 0.01, 0.5):
            timeline.record(t)
        assert timeline.total == 3

    def test_rate_between(self):
        timeline = ThroughputTimeline(window=0.01)
        for index in range(100):
            timeline.record(index * 0.001)  # 100 events over 0.1 s
        assert timeline.rate_between(0.0, 0.1) == pytest.approx(1000.0)

    def test_rate_between_invalid(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(0.1).rate_between(1.0, 1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            ThroughputTimeline(0)

    def test_empty_series(self):
        assert ThroughputTimeline(0.1).series() == []

    def test_series_start_past_last_window_is_empty(self):
        timeline = ThroughputTimeline(window=0.1)
        timeline.record(0.05)
        assert timeline.series(start=5.0) == []

    def test_series_with_explicit_end(self):
        timeline = ThroughputTimeline(window=0.1)
        timeline.record(0.05)
        series = timeline.series(start=0.0, end=0.25)
        assert [point[0] for point in series] == pytest.approx([0.0, 0.1, 0.2])
        assert series[0][1] == pytest.approx(10.0)

    def test_record_accumulates_counts_in_one_window(self):
        timeline = ThroughputTimeline(window=1.0)
        timeline.record(0.2)
        timeline.record(0.9, count=4)
        assert timeline._windows == {0: 5}
