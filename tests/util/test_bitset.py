"""Unit + property tests for the failed-ids bitset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bitset import Bitset


class TestBitsetBasics:
    def test_empty(self):
        bits = Bitset(16)
        assert len(bits) == 0
        assert 3 not in bits

    def test_add_and_contains(self):
        bits = Bitset(64)
        assert bits.add(5)
        assert 5 in bits
        assert len(bits) == 1

    def test_double_add_returns_false(self):
        bits = Bitset(64)
        assert bits.add(5)
        assert not bits.add(5)
        assert len(bits) == 1

    def test_discard(self):
        bits = Bitset(64)
        bits.add(7)
        assert bits.discard(7)
        assert 7 not in bits
        assert not bits.discard(7)

    def test_out_of_range_add_raises(self):
        bits = Bitset(8)
        with pytest.raises(IndexError):
            bits.add(8)
        with pytest.raises(IndexError):
            bits.add(-1)

    def test_out_of_range_contains_is_false(self):
        bits = Bitset(8)
        assert 100 not in bits
        assert -1 not in bits

    def test_iteration_in_order(self):
        bits = Bitset(100)
        for index in (30, 2, 77):
            bits.add(index)
        assert list(bits) == [2, 30, 77]

    def test_clear(self):
        bits = Bitset(32)
        bits.add(1)
        bits.add(2)
        bits.clear()
        assert len(bits) == 0
        assert 1 not in bits

    def test_copy_is_independent(self):
        bits = Bitset(32)
        bits.add(4)
        clone = bits.copy()
        clone.add(5)
        assert 5 in clone
        assert 5 not in bits

    def test_update_from(self):
        left = Bitset(32)
        right = Bitset(32)
        left.add(1)
        right.add(2)
        left.update_from(right)
        assert 1 in left and 2 in left
        assert len(left) == 2

    def test_update_from_capacity_mismatch_raises(self):
        with pytest.raises(ValueError):
            Bitset(8).update_from(Bitset(16))

    def test_fill_ratio_drives_recycling(self):
        bits = Bitset(10)
        for index in range(9):
            bits.add(index)
        assert bits.fill_ratio == pytest.approx(0.9)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Bitset(0)

    def test_64k_entries_constant_membership(self):
        """The PILL check must stay O(1) at the 64K design size."""
        bits = Bitset(65536)
        bits.add(65535)
        assert 65535 in bits
        assert 65534 not in bits


@given(st.lists(st.tuples(st.sampled_from(["add", "discard"]), st.integers(0, 255))))
@settings(max_examples=200)
def test_bitset_matches_model_set(operations):
    """Property: Bitset behaves exactly like a Python set."""
    bits = Bitset(256)
    model = set()
    for op, index in operations:
        if op == "add":
            assert bits.add(index) == (index not in model)
            model.add(index)
        else:
            assert bits.discard(index) == (index in model)
            model.discard(index)
        assert len(bits) == len(model)
    assert sorted(model) == list(bits)
    for index in range(256):
        assert (index in bits) == (index in model)
