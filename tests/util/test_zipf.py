"""Tests for the workload key samplers."""

import random
from collections import Counter

import pytest

from repro.util.zipf import HotSetSampler, UniformSampler, ZipfSampler


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(100, 0.99, random.Random(1))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 100

    def test_skew_favors_low_ranks(self):
        sampler = ZipfSampler(1000, 0.99, random.Random(2))
        counts = Counter(sampler.sample() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 > 20000 * 0.3  # heavy head

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, random.Random(3))
        counts = Counter(sampler.sample() for _ in range(20000))
        for index in range(10):
            assert counts[index] == pytest.approx(2000, rel=0.2)

    def test_sample_with_external_rng_deterministic(self):
        sampler = ZipfSampler(50, 0.9, random.Random(0))
        first = [sampler.sample_with(random.Random(9)) for _ in range(10)]
        second = [sampler.sample_with(random.Random(9)) for _ in range(10)]
        # Each call with a fresh identical RNG gives the same value.
        assert first == second

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.9, random.Random(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, random.Random(0))


class TestAliasTableShape:
    """Distribution-shape checks for the O(1) alias-method sampler."""

    def test_alias_table_mass_is_exact(self):
        # The alias decomposition must preserve each rank's total mass:
        # P(i) = (prob[i] + sum of (1 - prob[j]) over aliases j->i) / n.
        sampler = ZipfSampler(64, 0.99, random.Random(4))
        reconstructed = [sampler._prob[i] for i in range(sampler.n)]
        for j in range(sampler.n):
            target = sampler._alias[j]
            if target != j:
                reconstructed[target] += 1.0 - sampler._prob[j]
        for rank in range(sampler.n):
            assert reconstructed[rank] / sampler.n == pytest.approx(
                sampler.pmf(rank), abs=1e-12
            )

    def test_empirical_matches_pmf(self):
        # Chi-square-style check: empirical frequency of every rank of
        # a small keyspace within 5 sigma of the exact pmf.
        n, draws = 20, 50_000
        sampler = ZipfSampler(n, 0.99, random.Random(5))
        counts = Counter(sampler.sample() for _ in range(draws))
        for rank in range(n):
            p = sampler.pmf(rank)
            sigma = (draws * p * (1 - p)) ** 0.5
            assert abs(counts[rank] - draws * p) < 5 * sigma + 1

    def test_theta_sweep_head_mass_monotone(self):
        # Higher theta concentrates more mass on the head.
        draws = 20_000
        head_shares = []
        for theta in (0.0, 0.5, 0.99, 1.3):
            sampler = ZipfSampler(500, theta, random.Random(6))
            counts = Counter(sampler.sample() for _ in range(draws))
            head_shares.append(sum(counts[i] for i in range(10)) / draws)
        assert head_shares == sorted(head_shares)

    def test_internal_and_external_rng_agree(self):
        # sample() is sample_with(internal rng): same stream, same draws.
        a = ZipfSampler(100, 0.8, random.Random(7))
        b = ZipfSampler(100, 0.8, random.Random(0))
        external = random.Random(7)
        assert [a.sample() for _ in range(50)] == [
            b.sample_with(external) for _ in range(50)
        ]

    def test_single_rank(self):
        sampler = ZipfSampler(1, 0.99, random.Random(8))
        assert all(sampler.sample() == 0 for _ in range(10))
        assert sampler.pmf(0) == pytest.approx(1.0)


class TestUniformAndHotSet:
    def test_uniform_range(self):
        sampler = UniformSampler(10, random.Random(1))
        assert all(0 <= sampler.sample() < 10 for _ in range(100))

    def test_hot_set_confined(self):
        sampler = HotSetSampler(5, random.Random(1))
        assert all(0 <= sampler.sample() < 5 for _ in range(100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformSampler(0, random.Random(0))
        with pytest.raises(ValueError):
            HotSetSampler(0, random.Random(0))
