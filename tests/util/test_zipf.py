"""Tests for the workload key samplers."""

import random
from collections import Counter

import pytest

from repro.util.zipf import HotSetSampler, UniformSampler, ZipfSampler


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(100, 0.99, random.Random(1))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 100

    def test_skew_favors_low_ranks(self):
        sampler = ZipfSampler(1000, 0.99, random.Random(2))
        counts = Counter(sampler.sample() for _ in range(20000))
        top10 = sum(counts[i] for i in range(10))
        assert top10 > 20000 * 0.3  # heavy head

    def test_theta_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, random.Random(3))
        counts = Counter(sampler.sample() for _ in range(20000))
        for index in range(10):
            assert counts[index] == pytest.approx(2000, rel=0.2)

    def test_sample_with_external_rng_deterministic(self):
        sampler = ZipfSampler(50, 0.9, random.Random(0))
        first = [sampler.sample_with(random.Random(9)) for _ in range(10)]
        second = [sampler.sample_with(random.Random(9)) for _ in range(10)]
        # Each call with a fresh identical RNG gives the same value.
        assert first == second

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 0.9, random.Random(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, random.Random(0))


class TestUniformAndHotSet:
    def test_uniform_range(self):
        sampler = UniformSampler(10, random.Random(1))
        assert all(0 <= sampler.sample() < 10 for _ in range(100))

    def test_hot_set_confined(self):
        sampler = HotSetSampler(5, random.Random(1))
        assert all(0 <= sampler.sample() < 5 for _ in range(100))

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformSampler(0, random.Random(0))
        with pytest.raises(ValueError):
            HotSetSampler(0, random.Random(0))
