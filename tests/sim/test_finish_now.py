"""Tests for the fast-path event completion added for the RDMA fabric."""

import pytest

from repro.sim import Event, Simulator


class TestFinishNow:
    def test_runs_callbacks_synchronously(self):
        sim = Simulator()
        event = Event(sim)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.finish_now("payload")
        assert seen == ["payload"]  # no kernel step needed
        assert event.processed

    def test_failure_path(self):
        sim = Simulator()
        event = Event(sim)
        caught = []

        def proc():
            try:
                yield event
            except KeyError as error:
                caught.append(error.args[0])

        sim.process(proc())
        sim.run(until=0.0)
        event.finish_now(None, KeyError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_double_finish_raises(self):
        sim = Simulator()
        event = Event(sim)
        event.finish_now(1)
        with pytest.raises(RuntimeError):
            event.finish_now(2)

    def test_yielding_already_finished_event_resumes(self):
        sim = Simulator()
        event = Event(sim)
        event.finish_now(42)

        def proc():
            value = yield event
            return value

        assert sim.run_until_complete(sim.process(proc())) == 42

    def test_mixed_with_scheduled_events_keeps_order(self):
        sim = Simulator()
        trace = []

        def waiter(tag, evt):
            value = yield evt
            trace.append((tag, value, sim.now))

        scheduled = sim.timeout(1.0, "slow")
        fast = Event(sim)
        sim.process(waiter("a", fast))
        sim.process(waiter("b", scheduled))
        sim.call_at(0.5, lambda: fast.finish_now("fast"))
        sim.run()
        assert trace == [("a", "fast", 0.5), ("b", "slow", 1.0)]
