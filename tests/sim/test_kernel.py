"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    Interrupt,
    ProcessKilled,
    Simulator,
)


@pytest.fixture
def sim():
    return Simulator()


class TestTimeAdvancement:
    def test_initial_time_is_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        fired = []

        def proc():
            yield sim.timeout(1.5)
            fired.append(sim.now)

        sim.process(proc())
        sim.run()
        assert fired == [1.5]

    def test_run_until_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_until_in_past_raises(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=0.5)

    def test_events_fire_in_time_order(self, sim):
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(3.0, "c"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(2.0, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in range(5):
            sim.process(proc(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_timeout_raises(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestEvents:
    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        seen = []

        def proc():
            value = yield event
            seen.append(value)

        sim.process(proc())
        sim.call_at(2.0, lambda: event.succeed("payload"))
        sim.run()
        assert seen == ["payload"]

    def test_fail_raises_in_process(self, sim):
        event = sim.event()
        caught = []

        def proc():
            try:
                yield event
            except ValueError as error:
                caught.append(str(error))

        sim.process(proc())
        sim.call_soon(lambda: event.fail(ValueError("boom")))
        sim.run()
        assert caught == ["boom"]

    def test_double_succeed_raises(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(RuntimeError):
            event.succeed(2)

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(RuntimeError):
            _ = event.value

    def test_late_callback_still_fires(self, sim):
        event = sim.event()
        event.succeed(7)
        sim.run()
        assert event.processed
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestProcesses:
    def test_process_return_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return 42

        process = sim.process(proc())
        result = sim.run_until_complete(process)
        assert result == 42

    def test_process_exception_propagates_to_joiner(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("inner")

        caught = []

        def joiner():
            try:
                yield sim.process(failing())
            except RuntimeError as error:
                caught.append(str(error))

        sim.process(joiner())
        sim.run()
        assert caught == ["inner"]

    def test_yield_from_subgenerator(self, sim):
        def sub():
            yield sim.timeout(1.0)
            return "sub-value"

        def main():
            value = yield from sub()
            return value

        process = sim.process(main())
        assert sim.run_until_complete(process) == "sub-value"

    def test_kill_stops_process(self, sim):
        progress = []

        def proc():
            progress.append("start")
            yield sim.timeout(5.0)
            progress.append("end")

        process = sim.process(proc())
        sim.run(until=1.0)
        process.kill()
        sim.run()
        assert progress == ["start"]
        assert not process.is_alive
        with pytest.raises(ProcessKilled):
            _ = process.value

    def test_kill_is_idempotent(self, sim):
        def proc():
            yield sim.timeout(5.0)

        process = sim.process(proc())
        sim.run(until=1.0)
        process.kill()
        process.kill()
        sim.run()
        assert not process.is_alive

    def test_interrupt_raises_in_process(self, sim):
        caught = []

        def proc():
            try:
                yield sim.timeout(10.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)

        process = sim.process(proc())
        sim.run(until=1.0)
        process.interrupt("because")
        sim.run()
        assert caught == ["because"]

    def test_interrupted_process_can_continue(self, sim):
        trace = []

        def proc():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                trace.append(("interrupted", sim.now))
            yield sim.timeout(2.0)
            trace.append(("done", sim.now))

        process = sim.process(proc())
        sim.run(until=1.0)
        process.interrupt()
        sim.run()
        assert trace == [("interrupted", 1.0), ("done", 3.0)]

    def test_yielding_non_event_raises(self, sim):
        def proc():
            yield 42

        process = sim.process(proc())
        sim.run()
        with pytest.raises(TypeError):
            _ = process.value

    def test_deadlock_detection(self, sim):
        def proc():
            yield sim.event()  # never fires

        process = sim.process(proc())
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run_until_complete(process)


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        times = []

        def proc():
            events = [sim.timeout(1.0, "a"), sim.timeout(3.0, "b"), sim.timeout(2.0, "c")]
            values = yield sim.all_of(events)
            times.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert times == [(3.0, ["a", "b", "c"])]

    def test_all_of_empty_fires_immediately(self, sim):
        done = []

        def proc():
            values = yield sim.all_of([])
            done.append(values)

        sim.process(proc())
        sim.run()
        assert done == [[]]

    def test_any_of_fires_on_first(self, sim):
        results = []

        def proc():
            events = [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
            index, value = yield sim.any_of(events)
            results.append((sim.now, index, value))

        sim.process(proc())
        sim.run()
        assert results == [(1.0, 1, "fast")]

    def test_any_of_duplicate_event_reports_first_index(self, sim):
        results = []

        def proc():
            shared = sim.timeout(1.0, "v")
            index, value = yield sim.any_of([shared, shared, shared])
            results.append((index, value))

        sim.process(proc())
        sim.run()
        assert results == [(0, "v")]

    def test_any_of_duplicate_behind_distinct_event(self, sim):
        results = []

        def proc():
            slow = sim.timeout(5.0, "slow")
            fast = sim.timeout(1.0, "fast")
            index, value = yield sim.any_of([slow, fast, fast])
            results.append((index, value))

        sim.process(proc())
        sim.run()
        # The duplicate's first occurrence (slot 1) wins, never slot 2.
        assert results == [(1, "fast")]

    def test_any_of_empty_fires_immediately(self, sim):
        done = []

        def proc():
            value = yield sim.any_of([])
            done.append(value)

        sim.process(proc())
        sim.run()
        assert done == [[]]

    def test_any_of_index_lookup_is_precomputed(self, sim):
        events = [sim.event() for _ in range(4)]
        condition = sim.any_of(events)
        assert condition._index_of == {id(event): i for i, event in enumerate(events)}

    def test_all_of_propagates_failure(self, sim):
        event = sim.event()
        caught = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(5.0), event])
            except KeyError as error:
                caught.append(error.args[0])

        sim.process(proc())
        sim.call_at(1.0, lambda: event.fail(KeyError("bad")))
        sim.run()
        assert caught == ["bad"]


class TestCallScheduling:
    def test_call_soon_runs_at_current_time(self, sim):
        times = []
        sim.call_soon(lambda: times.append(sim.now))
        sim.run()
        assert times == [0.0]

    def test_call_at_runs_at_absolute_time(self, sim):
        times = []
        sim.call_at(4.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.5]

    def test_call_at_past_raises(self, sim):
        sim.timeout(2.0)
        sim.run()
        with pytest.raises(ValueError):
            sim.call_at(1.0, lambda: None)

    def test_kill_is_idempotent(self, sim):
        def proc():
            yield sim.timeout(10.0)

        process = sim.process(proc())
        sim.run(until=1.0)
        process.kill()
        process.kill()  # second kill: no ValueError, no state change
        sim.run()
        assert not process.is_alive
        with pytest.raises(ProcessKilled):
            process.value

    def test_kill_after_completion_preserves_result(self, sim):
        """Killing a process whose event is already processed is a
        no-op: the return value must not be clobbered by ProcessKilled."""

        def proc():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(proc())
        sim.run()
        process.kill()
        process.interrupt()
        assert process.value == "done"

    def test_interrupt_after_completion_schedules_nothing(self, sim):
        def proc():
            yield sim.timeout(1.0)

        process = sim.process(proc())
        sim.run()
        before = sim.processed_events
        process.interrupt("late")
        sim.run()
        assert sim.processed_events == before

    def test_snapshotted_wakeup_after_interrupt_is_stale(self, sim):
        """An event triggering in the same tick as an interrupt must not
        double-drive the generator. ``_run_callbacks`` snapshots the
        callback list, so ``interrupt()``'s callback strip cannot reach
        a wake-up already in flight — ``_on_target`` has to recognise
        it as stale instead.
        """
        event = sim.event()
        got = []

        def proc():
            try:
                yield event
                got.append("value")
            except Interrupt as interrupt:
                got.append(("interrupt", interrupt.cause))

        # Subscribe the interrupter *before* the process, so the
        # snapshot runs it first and the process wake-up is orphaned.
        process_ref = []
        event.add_callback(lambda _e: process_ref[0].interrupt("now"))
        process_ref.append(sim.process(proc()))
        sim.call_at(1.0, lambda: event.succeed("v"))
        sim.run()
        assert got == [("interrupt", "now")]

    def test_stale_wakeup_from_processed_event_after_interrupt(self, sim):
        """Late-subscription path: yielding an already-processed event
        parks the wake-up in the kernel queue, out of reach of
        ``interrupt()``'s strip. The parked wake-up must not deliver
        the event value to a generator that has been interrupted."""
        event = sim.event()
        event.succeed("old")
        sim.run()
        got = []

        def proc():
            try:
                yield event
                got.append("value")
            except Interrupt:
                got.append("interrupt")

        process = sim.process(proc())
        sim.call_soon(lambda: process.interrupt())
        sim.run()
        assert got == ["interrupt"]

    def test_determinism_across_runs(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for tag in range(4):
                sim.process(worker(tag, 0.5 + tag * 0.25))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()


class TestNowRingScheduler:
    """PR 9 ring-kernel specifics: the now-ring / timer-heap split.

    Invariants under test: the timer heap only ever holds strictly
    future entries, same-instant work drains in schedule order before
    time advances, queue_depth spans both queues, and ``run(until=...)``
    must peek across *both* queues — including when ``until`` lands
    exactly on a batched QP completion's timestamp.
    """

    def test_timer_heap_holds_only_future_entries(self, sim):
        sim.call_at(1.0, lambda: None)
        sim.call_soon(lambda: None)
        assert all(when > sim.now for when, _, _ in sim._timers)
        assert len(sim._ring) == 1

    def test_call_soon_during_cohort_runs_before_time_advances(self, sim):
        order = []

        def first():
            order.append(("first", sim.now))
            # Lands in the now-ring: must run at t=1.0, before the
            # t=2.0 timer, even though it was scheduled last.
            sim.call_soon(lambda: order.append(("soon", sim.now)))

        sim.call_at(1.0, first)
        sim.call_at(2.0, lambda: order.append(("later", sim.now)))
        sim.run()
        assert order == [("first", 1.0), ("soon", 1.0), ("later", 2.0)]

    def test_same_instant_timers_drain_in_schedule_order(self, sim):
        order = []
        for tag in range(5):
            sim.call_at(1.0, lambda tag=tag: order.append(tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_queue_depth_spans_ring_and_timers(self, sim):
        sim.call_soon(lambda: None)
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        assert sim.queue_depth == 3

    def test_run_until_lands_on_batched_completion(self, sim):
        # Regression: run(until=T) with a coalesced QP batch due exactly
        # at T must deliver every batched item, stop the clock at T, and
        # count each item in processed_events (the batch compensates).
        from repro.rdma.qp import _ArrivalBatch

        batch = _ArrivalBatch(sim)
        fired = []
        batch.schedule(1.0, lambda: fired.append("a"))
        batch.schedule(1.0, lambda: fired.append("b"))
        batch.schedule(1.0, lambda: fired.append("c"))
        # One kernel entry holds all three items.
        assert sim.queue_depth == 1
        before = sim.processed_events
        sim.run(until=1.0)
        assert fired == ["a", "b", "c"]
        assert sim.now == 1.0
        assert sim.processed_events - before == 3

    def test_batch_splits_when_another_push_intervenes(self, sim):
        # An unrelated heap push between same-instant deliveries could
        # order between them, so the coalescer must open a fresh batch.
        from repro.rdma.qp import _ArrivalBatch

        batch = _ArrivalBatch(sim)
        order = []
        batch.schedule(1.0, lambda: order.append("a"))
        sim.call_at(1.0, lambda: order.append("other"))
        batch.schedule(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "other", "b"]

    def test_legacy_mode_matches_ring_mode(self):
        def drive(sim):
            trace = []

            def worker(tag, delay):
                for _ in range(4):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for tag in range(4):
                sim.process(worker(tag, 0.5 + tag * 0.25))
            sim.run()
            return trace, sim.processed_events

        assert drive(Simulator()) == drive(Simulator(legacy=True))
