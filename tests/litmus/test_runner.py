"""Litmus campaigns: Pandora passes, seeded FORD bugs are caught."""

import pytest

from repro.litmus import (
    LITMUS_SUITE,
    LitmusRunner,
    litmus1_direct_write,
    litmus2_read_write,
    litmus3_indirect_write,
)
from repro.protocol.types import BugFlags

# Campaigns are deliberately small so the suite stays fast; the
# benchmark harness runs the full-size versions.
ROUNDS = 25


class TestPandoraPasses:
    @pytest.mark.parametrize("spec", LITMUS_SUITE(), ids=lambda s: s.name)
    def test_failure_free(self, spec):
        report = LitmusRunner(spec, protocol="pandora", rounds=ROUNDS, seed=11).run()
        assert report.passed, report.violations[:3]
        assert report.commits > 0

    @pytest.mark.parametrize("spec", LITMUS_SUITE(), ids=lambda s: s.name)
    def test_with_crash_injection(self, spec):
        report = LitmusRunner(
            spec,
            protocol="pandora",
            rounds=ROUNDS,
            crash_probability=0.5,
            seed=11,
        ).run()
        assert report.passed, report.violations[:3]
        assert report.crashes_injected > 0


class TestBaselineFixedPasses:
    """FORD online component with the Table 1 bugs fixed + scan
    recovery must also be consistent (it is just slow)."""

    def test_litmus3_with_crashes(self):
        report = LitmusRunner(
            litmus3_indirect_write(),
            protocol="baseline",
            rounds=15,
            crash_probability=0.4,
            seed=11,
        ).run()
        assert report.passed, report.violations[:3]


class TestBugsAreCaught:
    """Each online (C1) bug must be exposed by its litmus test.

    The recovery-path (C2) bugs are demonstrated deterministically in
    test_scenarios.py; these campaigns cover the racy online bugs.
    """

    def test_covert_locks_caught_by_litmus2(self):
        report = LitmusRunner(
            litmus2_read_write(),
            protocol="pandora",
            bugs=BugFlags(covert_locks=True),
            rounds=40,
            seed=2,
            copies=2,
        ).run()
        assert not report.passed
        # The violating state is exactly the read-write cycle X == Y.
        violation = report.violations[0]
        assert violation.values["X"] == violation.values["Y"]

    def test_relaxed_locks_caught_by_litmus2(self):
        report = LitmusRunner(
            litmus2_read_write(),
            protocol="pandora",
            bugs=BugFlags(relaxed_locks=True),
            rounds=100,
            seed=1,
            copies=1,
        ).run()
        assert not report.passed

    def test_complicit_abort_caught_by_litmus3(self):
        report = LitmusRunner(
            litmus3_indirect_write(),
            protocol="pandora",
            bugs=BugFlags(complicit_abort=True),
            rounds=100,
            seed=3,
            copies=3,
        ).run()
        assert not report.passed

    def test_published_ford_fails_litmus2(self):
        """FORD exactly as shipped violates strict serializability."""
        report = LitmusRunner(
            litmus2_read_write(),
            protocol="ford",
            rounds=40,
            seed=2,
            copies=2,
        ).run()
        assert not report.passed


class TestReportShape:
    def test_summary_format(self):
        report = LitmusRunner(
            litmus1_direct_write(), protocol="pandora", rounds=3, seed=1
        ).run()
        text = report.summary()
        assert "litmus-1" in text
        assert "PASS" in text

    def test_rounds_counted(self):
        report = LitmusRunner(
            litmus1_direct_write(), protocol="pandora", rounds=5, seed=1
        ).run()
        assert report.rounds == 5
