"""Directed scenarios: deterministic replays of every Table 1 bug.

Each scenario stages the exact schedule the paper describes (§5.1)
through the real protocol + failure detector + recovery manager, and
must corrupt state with the bug enabled and stay consistent with the
fix (and with Pandora).
"""


from repro.litmus.scenarios import (
    run_complicit_abort_scenario,
    run_log_without_lock_scenario,
    run_lost_decision_scenario,
    run_missing_insert_log_scenario,
)
from repro.protocol.types import BugFlags


class TestLostDecision:
    def test_buggy_ford_corrupts(self):
        report = run_lost_decision_scenario(
            "baseline", BugFlags(lost_decision=True)
        )
        assert not report.consistent
        # Recovery rolled X back below a committed dependent write.
        assert (report.values["X"] or 0) < (report.values["Z"] or 0)

    def test_fixed_ford_is_consistent(self):
        report = run_lost_decision_scenario("baseline", BugFlags())
        assert report.consistent

    def test_pandora_is_consistent(self):
        report = run_lost_decision_scenario("pandora", None)
        assert report.consistent

    def test_tradlog_is_consistent(self):
        report = run_lost_decision_scenario("tradlog", None)
        assert report.consistent


class TestLogWithoutLock:
    def test_buggy_ford_corrupts(self):
        report = run_log_without_lock_scenario(
            "baseline", BugFlags(log_without_lock=True)
        )
        assert not report.consistent

    def test_fixed_ford_is_consistent(self):
        report = run_log_without_lock_scenario("baseline", BugFlags())
        assert report.consistent

    def test_pandora_is_consistent(self):
        report = run_log_without_lock_scenario("pandora", None)
        assert report.consistent


class TestMissingInsertLog:
    def test_buggy_ford_leaves_partial_insert(self):
        report = run_missing_insert_log_scenario(
            "baseline", BugFlags(missing_insert_log=True)
        )
        assert not report.consistent
        assert report.values["X"] is not None
        assert report.values["Y"] is None

    def test_fixed_ford_rolls_back_both(self):
        report = run_missing_insert_log_scenario("baseline", BugFlags())
        assert report.consistent
        # The crash hit mid-commit, so the fix rolls both inserts back.
        assert report.values["X"] is None and report.values["Y"] is None

    def test_pandora_is_consistent(self):
        report = run_missing_insert_log_scenario("pandora", None)
        assert report.consistent


class TestComplicitAbort:
    def test_buggy_abort_frees_foreign_locks(self):
        report = run_complicit_abort_scenario(
            "pandora", BugFlags(complicit_abort=True)
        )
        assert not report.consistent
        # A lost update: X counts fewer increments than committed.
        assert report.values["X"] < report.values["committed_increments"]

    def test_fixed_abort_releases_only_own(self):
        report = run_complicit_abort_scenario("pandora", None)
        assert report.consistent

    def test_fixed_ford_also_consistent(self):
        report = run_complicit_abort_scenario("baseline", None)
        assert report.consistent


class TestScenarioReport:
    def test_summary_contains_state(self):
        report = run_missing_insert_log_scenario("pandora", None)
        assert "missing-insert-log" in report.summary()
        assert "consistent" in report.summary()
