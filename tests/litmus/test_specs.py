"""Unit tests for the litmus specifications themselves."""

import pytest

from repro.litmus.specs import (
    ABSENT,
    LITMUS_SUITE,
    compound_litmus,
    litmus1_direct_write,
    litmus1_insert_delete,
    litmus2_read_write,
    litmus3_extended,
    litmus3_indirect_write,
    stretched_litmus,
)


class _Outcome:
    def __init__(self, committed):
        self.committed = committed


class TestSuiteShape:
    def test_suite_has_seven_specs(self):
        suite = LITMUS_SUITE()
        assert len(suite) == 7
        assert len({spec.name for spec in suite}) == 7

    def test_every_spec_has_writers_and_check(self):
        for spec in LITMUS_SUITE():
            assert spec.writers
            assert callable(spec.check)
            assert set(spec.initial) == set(spec.keys)


class TestLitmus1Check:
    def test_equal_values_pass(self):
        spec = litmus1_direct_write()
        assert spec.check({"X": 1, "Y": 1}, [])
        assert spec.check({"X": 2, "Y": 2}, [])

    def test_mixed_values_fail(self):
        spec = litmus1_direct_write()
        assert not spec.check({"X": 1, "Y": 2}, [])

    def test_violation_description(self):
        spec = litmus1_direct_write()
        text = spec.describe_violation({"X": 1, "Y": 2})
        assert "litmus-1" in text and "X=1" in text


class TestLitmus1InsertCheck:
    def test_presence_must_agree(self):
        spec = litmus1_insert_delete()
        assert spec.check({"X": None, "Y": None}, [])
        assert spec.check({"X": 1, "Y": 1}, [])
        assert not spec.check({"X": 1, "Y": None}, [])

    def test_initial_state_is_absent(self):
        spec = litmus1_insert_delete()
        assert spec.initial["X"] is ABSENT


class TestLitmus2Check:
    def test_untouched_state_ok(self):
        spec = litmus2_read_write()
        assert spec.check({"X": 0, "Y": 0}, [])

    def test_cycle_state_fails(self):
        spec = litmus2_read_write()
        assert not spec.check({"X": 1, "Y": 1}, [])

    def test_serial_states_pass(self):
        spec = litmus2_read_write()
        assert spec.check({"X": 2, "Y": 1}, [])
        assert spec.check({"X": 1, "Y": 0}, [])


class TestLitmus3Checks:
    def test_counter_matches_commits(self):
        spec = litmus3_indirect_write()
        outcomes = [_Outcome(True), _Outcome(True)]
        assert spec.check({"X": 2, "Y": 1, "Z": 2}, outcomes)

    def test_lost_update_detected(self):
        spec = litmus3_indirect_write()
        outcomes = [_Outcome(True), _Outcome(True)]
        assert not spec.check({"X": 1, "Y": 1, "Z": 1}, outcomes)

    def test_unknown_outcomes_widen_range(self):
        spec = litmus3_indirect_write()
        outcomes = [_Outcome(True), None]
        assert spec.check({"X": 1, "Y": 1, "Z": 0}, outcomes)
        assert spec.check({"X": 2, "Y": 1, "Z": 1}, outcomes)

    def test_rollback_corruption_detected(self):
        spec = litmus3_extended()
        outcomes = [_Outcome(False), _Outcome(True)]
        # X rolled back below Z: the lost-decision signature.
        assert not spec.check({"X": 0, "Y": 0, "Z": 1, "B": 100}, outcomes)


class TestCompoundAndStretched:
    def test_compound_mixed_direct_values_fail(self):
        spec = compound_litmus()
        values = {"A": 1, "B": 2, "X": 0, "Y": 0, "Z": 0}
        assert not spec.check(values, [])

    def test_stretched_width_validation(self):
        with pytest.raises(ValueError):
            stretched_litmus(width=1)

    def test_stretched_detects_mixing(self):
        spec = stretched_litmus(width=4)
        good = {key: 2 for key in spec.keys}
        assert spec.check(good, [])
        bad = dict(good)
        bad[spec.keys[-1]] = 3
        assert not spec.check(bad, [])
