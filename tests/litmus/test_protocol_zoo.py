"""Litmus coverage for the two zoo newcomers (lotus, vote1pc).

The classic pandora/ford/tradlog litmus matrix lives in
``test_scenarios.py``; lotus and vote1pc get the same treatment here:
clean runs, crash-heavy runs (exercising queue-aware PILL recovery for
lotus and the replica-state decision for vote1pc), and sanitized runs
where the PILL shadow-lock table audits every verb.
"""

import pytest

from repro.litmus import (
    LitmusRunner,
    litmus1_direct_write,
    litmus1_insert_delete,
    litmus2_read_write,
    litmus3_indirect_write,
)

ZOO = ("lotus", "vote1pc")

SPECS = [
    litmus1_direct_write,
    litmus1_insert_delete,
    litmus2_read_write,
    litmus3_indirect_write,
]


def run_spec(spec, protocol, **kwargs):
    kwargs.setdefault("rounds", 12)
    kwargs.setdefault("seed", 7)
    runner = LitmusRunner(spec(), protocol=protocol, **kwargs)
    return runner.run()


@pytest.mark.parametrize("protocol", ZOO)
class TestZooLitmus:
    @pytest.mark.parametrize("spec", SPECS)
    def test_clean_runs_pass_every_spec(self, protocol, spec):
        report = run_spec(spec, protocol)
        assert report.passed, [str(v) for v in report.violations]
        assert report.commits > 0

    def test_crashing_runs_stay_consistent(self, protocol):
        # Heavy crash injection: recovery (queue-aware PILL for lotus,
        # shadow-vote re-derivation for vote1pc) must keep the
        # application-observable assertion true in every round and in
        # the retroactive final sweep.
        report = run_spec(
            litmus1_direct_write, protocol, rounds=20, crash_probability=0.5
        )
        assert report.passed, [str(v) for v in report.violations]
        assert report.crashes_injected > 0

    def test_sanitized_crashing_runs_stay_clean(self, protocol):
        report = run_spec(
            litmus1_direct_write,
            protocol,
            rounds=15,
            crash_probability=0.3,
            sanitize=True,
        )
        assert report.passed, [str(v) for v in report.violations]
