"""Tests for the serializability checker."""

import pytest

from repro.litmus.checker import SerializabilityChecker, check_history


def entry(txn_id, reads=None, rmw=None, writes=None, time=0.0):
    return (txn_id, time, reads or {}, rmw or {}, writes or {})


OBJ_X = (0, 1)
OBJ_Y = (0, 2)


class TestChecker:
    def test_empty_history_serializable(self):
        assert check_history([])

    def test_single_txn(self):
        assert check_history([entry(1, writes={OBJ_X: 1})])

    def test_serial_chain(self):
        history = [
            entry(1, writes={OBJ_X: 1}),
            entry(2, rmw={OBJ_X: 1}, writes={OBJ_X: 2}),
            entry(3, rmw={OBJ_X: 2}, writes={OBJ_X: 3}),
        ]
        checker = SerializabilityChecker(history)
        assert checker.is_serializable()
        assert checker.serial_order() == [1, 2, 3]

    def test_write_skew_cycle_detected(self):
        """The classic litmus-2 anomaly: both read the other's
        pre-state and both write — an rw/rw cycle."""
        history = [
            # T1 read X@v1, wrote Y@v2; T2 read Y@v1, wrote X@v2.
            entry(1, reads={OBJ_X: 1}, writes={OBJ_Y: 2}),
            entry(2, reads={OBJ_Y: 1}, writes={OBJ_X: 2}),
        ]
        checker = SerializabilityChecker(history)
        assert not checker.is_serializable()
        assert checker.find_cycle()

    def test_read_from_edge(self):
        history = [
            entry(1, writes={OBJ_X: 5}),
            entry(2, reads={OBJ_X: 5}),
        ]
        checker = SerializabilityChecker(history)
        assert checker.graph.has_edge(1, 2)
        assert checker.is_serializable()

    def test_anti_dependency_edge(self):
        history = [
            entry(1, reads={OBJ_X: 1}),
            entry(2, writes={OBJ_X: 2}),
        ]
        checker = SerializabilityChecker(history)
        assert checker.graph.has_edge(1, 2)  # rw: 1 must precede 2

    def test_serial_order_raises_on_cycle(self):
        history = [
            entry(1, reads={OBJ_X: 1}, writes={OBJ_Y: 2}),
            entry(2, reads={OBJ_Y: 1}, writes={OBJ_X: 2}),
        ]
        with pytest.raises(ValueError):
            SerializabilityChecker(history).serial_order()

    def test_independent_txns_any_order(self):
        history = [
            entry(1, writes={OBJ_X: 1}),
            entry(2, writes={OBJ_Y: 1}),
        ]
        assert check_history(history)


class TestCheckerOnLiveHistory:
    """Collect real histories via the coordinator history sink."""

    def _run_workload(self, protocol, keys=8, txns=60):
        import random

        from tests.protocol.conftest import ProtocolRig

        rig = ProtocolRig(protocol=protocol, compute_nodes=2, keys=keys)
        history = []
        for coordinator in rig.coordinators:
            coordinator.history_sink = history
        rng = random.Random(5)
        processes = []

        def rmw(key):
            def logic(tx):
                value = yield from tx.read_for_update("kv", key)
                tx.write("kv", key, (value or 0) + 1)
                return None

            return logic

        def reader(key_a, key_b):
            def logic(tx):
                a = yield from tx.read("kv", key_a)
                b = yield from tx.read("kv", key_b)
                return (a, b)

            return logic

        for index in range(txns):
            coordinator = rig.coordinators[index % len(rig.coordinators)]
            if rng.random() < 0.5:
                logic = rmw(rng.randrange(keys))
            else:
                logic = reader(rng.randrange(keys), rng.randrange(keys))
            processes.append(rig.submit(coordinator, logic))
        rig.sim.run()
        return history

    @pytest.mark.parametrize("protocol", ["pandora", "ford-fixed", "tradlog"])
    def test_live_history_is_serializable(self, protocol):
        history = self._run_workload(protocol)
        # Contention is high and the rig coordinators do not retry, so
        # only a fraction commits — enough for a meaningful check.
        assert len(history) >= 5
        assert check_history(history)
