"""Boundary coordinator ids: litmus at the top of the legal id space.

Regression companion to the encode_lock sentinel fix: before it, a
deployment whose id allocation reached 0xFFFF would mint lock words
that FORD-style readers treat as *anonymous* — stray locks that PILL
recovery could never attribute. ``ClusterConfig.first_coord_id`` lets
this suite place the whole initial coordinator wave hard against
``MAX_COORD_ID = 0xFFFE`` and prove the run behaves exactly like an
id-0 run: every lock word stays attributable, the sentinel is never
allocated, and the very next allocation exhausts rather than rolling
into 0xFFFF.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.litmus import LitmusRunner, litmus1_direct_write
from repro.protocol.locks import ANONYMOUS_OWNER, MAX_COORD_ID

COMPUTE_NODES = 2
PER_NODE = 4
#: First id such that the initial wave ends exactly at MAX_COORD_ID.
FIRST = MAX_COORD_ID + 1 - COMPUTE_NODES * PER_NODE


def run_boundary_litmus(protocol):
    runner = LitmusRunner(
        litmus1_direct_write(),
        protocol=protocol,
        rounds=8,
        seed=11,
        compute_nodes=COMPUTE_NODES,
        coordinators_per_node=PER_NODE,
        first_coord_id=FIRST,
    )
    return runner.run(), runner.cluster


@pytest.mark.parametrize("protocol", ["pandora", "lotus"])
def test_boundary_ids_commit_cleanly(protocol):
    # lotus rides along because ticket words embed the holder id in the
    # same owner field — the boundary must hold for both word formats.
    report, cluster = run_boundary_litmus(protocol)
    assert report.passed
    assert report.commits > 0
    ids = [
        coord_id
        for node in cluster.compute_nodes.values()
        for coord_id in node.coordinator_ids()
    ]
    assert max(ids) == MAX_COORD_ID
    assert ANONYMOUS_OWNER not in ids
    assert all(FIRST <= coord_id <= MAX_COORD_ID for coord_id in ids)


def test_id_space_exhausts_instead_of_minting_the_sentinel():
    _report, cluster = run_boundary_litmus("pandora")
    with pytest.raises(RuntimeError):
        cluster.id_allocator.allocate()


def test_config_rejects_a_wave_that_reaches_the_sentinel():
    config = ClusterConfig(
        compute_nodes=COMPUTE_NODES,
        coordinators_per_node=PER_NODE,
        first_coord_id=FIRST + 1,
    )
    with pytest.raises(ValueError):
        config.validate()


def test_config_rejects_out_of_range_first_id():
    with pytest.raises(ValueError):
        ClusterConfig(first_coord_id=ANONYMOUS_OWNER).validate()
