"""History-based fuzzing: random traffic must stay serializable."""

import pytest

from repro.litmus.fuzzer import HistoryFuzzer
from repro.protocol.types import BugFlags


class TestFailureFree:
    @pytest.mark.parametrize("protocol", ["pandora", "baseline", "tradlog"])
    def test_random_history_serializable(self, protocol):
        report = HistoryFuzzer(protocol=protocol, seed=13, duration=10e-3).run()
        assert report.committed > 100
        assert report.serializable, report.cycle[:5]

    def test_multiple_seeds(self):
        for seed in (1, 2, 3):
            report = HistoryFuzzer(protocol="pandora", seed=seed, duration=8e-3).run()
            assert report.serializable, (seed, report.cycle[:5])


class TestUnderCrashes:
    def test_pandora_history_serializable_across_crashes(self):
        report = HistoryFuzzer(
            protocol="pandora",
            seed=21,
            duration=25e-3,
            crash_probability_per_ms=0.15,
        ).run()
        assert report.crashes >= 1
        assert report.committed > 100
        assert report.serializable, report.cycle[:5]


class TestBuggyProtocolFails:
    def test_covert_locks_produces_cycles(self):
        """Cross-validation: the history checker independently catches
        the covert-locks bug that litmus-2 exposes."""
        report = HistoryFuzzer(
            protocol="pandora",
            bugs=BugFlags(covert_locks=True),
            seed=5,
            keys=8,  # crank up contention
            duration=12e-3,
        ).run()
        assert not report.serializable
        assert report.cycle


class TestReportShape:
    def test_summary(self):
        report = HistoryFuzzer(protocol="pandora", seed=1, duration=3e-3).run()
        assert "SERIALIZABLE" in report.summary()
