"""History-based fuzzing: random traffic must stay serializable."""

import random

import pytest

from repro.litmus.fuzzer import HistoryFuzzer, _FuzzWorkload
from repro.protocol.types import BugFlags


class TestFailureFree:
    @pytest.mark.parametrize("protocol", ["pandora", "baseline", "tradlog"])
    def test_random_history_serializable(self, protocol):
        report = HistoryFuzzer(protocol=protocol, seed=13, duration=10e-3).run()
        assert report.committed > 100
        assert report.serializable, report.cycle[:5]

    def test_multiple_seeds(self):
        for seed in (1, 2, 3):
            report = HistoryFuzzer(protocol="pandora", seed=seed, duration=8e-3).run()
            assert report.serializable, (seed, report.cycle[:5])


class TestUnderCrashes:
    def test_pandora_history_serializable_across_crashes(self):
        report = HistoryFuzzer(
            protocol="pandora",
            seed=21,
            duration=25e-3,
            crash_probability_per_ms=0.15,
        ).run()
        assert report.crashes >= 1
        assert report.committed > 100
        assert report.serializable, report.cycle[:5]


class TestBuggyProtocolFails:
    def test_covert_locks_produces_cycles(self):
        """Cross-validation: the history checker independently catches
        the covert-locks bug that litmus-2 exposes."""
        report = HistoryFuzzer(
            protocol="pandora",
            bugs=BugFlags(covert_locks=True),
            seed=5,
            keys=8,  # crank up contention
            duration=12e-3,
        ).run()
        assert not report.serializable
        assert report.cycle


class TestReportShape:
    def test_summary(self):
        report = HistoryFuzzer(protocol="pandora", seed=1, duration=3e-3).run()
        assert "SERIALIZABLE" in report.summary()


def _scenario_stream(seed, count=200):
    """The first *count* generated transaction kinds for one seed."""
    workload = _FuzzWorkload(keys=24)
    rng = random.Random(seed)
    return [workload.next_transaction(rng).__name__ for _ in range(count)]


class TestDeterminism:
    """Fuzz runs must replay bit-identically from their seed — the
    property every litmus failure report relies on."""

    def test_same_seed_same_scenario_stream(self):
        assert _scenario_stream(7) == _scenario_stream(7)

    def test_different_seeds_differ(self):
        assert _scenario_stream(7) != _scenario_stream(8)

    def test_scenario_stream_covers_every_kind(self):
        kinds = set(_scenario_stream(3, count=500))
        assert kinds == {
            "read_pair",
            "rmw",
            "blind",
            "transfer",
            "read_a_write_b",
            "delete_or_revive",
        }

    def test_same_seed_identical_history(self):
        first = HistoryFuzzer(protocol="pandora", seed=11, duration=5e-3)
        second = HistoryFuzzer(protocol="pandora", seed=11, duration=5e-3)
        first_report = first.run()
        second_report = second.run()
        assert first_report.committed == second_report.committed
        assert first.history == second.history

    def test_different_seed_distinct_history(self):
        first = HistoryFuzzer(protocol="pandora", seed=11, duration=5e-3)
        second = HistoryFuzzer(protocol="pandora", seed=12, duration=5e-3)
        first.run()
        second.run()
        assert first.history != second.history

    def test_same_seed_identical_under_crashes(self):
        def run_once():
            fuzzer = HistoryFuzzer(
                protocol="pandora",
                seed=21,
                duration=12e-3,
                crash_probability_per_ms=0.2,
            )
            report = fuzzer.run()
            return report.crashes, list(fuzzer.history)

        assert run_once() == run_once()
