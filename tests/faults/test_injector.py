"""Tests for the fault injector and MTTF process."""

import random

import pytest

from repro import Cluster, ClusterConfig
from repro.faults.injector import FaultInjector
from repro.faults.mttf import MttfProcess
from repro.sim import Simulator
from repro.workloads import MicroBenchmark


def make_cluster(**overrides):
    defaults = dict(coordinators_per_node=2, seed=41)
    defaults.update(overrides)
    cluster = Cluster(
        ClusterConfig(**defaults), MicroBenchmark(num_keys=200, write_ratio=1.0)
    )
    cluster.start()
    return cluster


class TestTimedCrash:
    def test_crash_at_time(self):
        cluster = make_cluster()
        cluster.crash_compute(0, at=0.005)
        cluster.run(until=0.006)
        assert not cluster.compute_nodes[0].alive
        assert cluster.compute_nodes[0].crash_time == pytest.approx(0.005)

    def test_crash_records_event(self):
        cluster = make_cluster()
        cluster.injector.crash_at(cluster.compute_nodes[0], 0.003)
        cluster.run(until=0.004)
        assert cluster.injector.crashes[0][1] == 0

    def test_crash_on_dead_node_is_noop(self):
        cluster = make_cluster()
        cluster.injector.crash_at(cluster.compute_nodes[0], 0.002)
        cluster.injector.crash_at(cluster.compute_nodes[0], 0.003)
        cluster.run(until=0.004)
        assert len(cluster.injector.crashes) == 1


class TestCrashPoints:
    def test_crash_on_named_point(self):
        cluster = make_cluster()
        cluster.injector.crash_on_point(0, "locked", nth=1)
        cluster.run(until=0.010)
        assert not cluster.compute_nodes[0].alive
        assert cluster.injector.crashes[0][2] == "locked"

    def test_nth_occurrence(self):
        first = make_cluster()
        first.injector.crash_on_point(0, "locked", nth=1)
        first.run(until=0.010)
        later = make_cluster()
        later.injector.crash_on_point(0, "locked", nth=30)
        later.run(until=0.010)
        assert later.compute_nodes[0].crash_time > first.compute_nodes[0].crash_time

    def test_plan_fires_once(self):
        cluster = make_cluster(restart_failed_after=1e-3, fd_timeout=2e-3)
        plan = cluster.injector.crash_on_point(0, "locked", nth=1)
        cluster.run(until=0.050)
        assert plan.fired
        # The node restarted and was not re-crashed by the same plan.
        assert cluster.compute_nodes[0].alive

    def test_point_mismatch_does_not_fire(self):
        cluster = make_cluster()
        cluster.injector.crash_on_point(0, "no-such-point", nth=1)
        cluster.run(until=0.010)
        assert cluster.compute_nodes[0].alive

    def test_clear_plans(self):
        cluster = make_cluster()
        cluster.injector.crash_on_point(0, "locked", nth=50_000)
        cluster.injector.clear(0)
        assert cluster.injector._plans_by_node.get(0) in (None, [])

    def test_other_nodes_unaffected(self):
        cluster = make_cluster()
        cluster.injector.crash_on_point(0, "locked", nth=1)
        cluster.run(until=0.010)
        assert cluster.compute_nodes[1].alive

    def test_crash_point_without_plans_is_free(self):
        injector = FaultInjector(Simulator())

        class FakeNode:
            node_id = 9

        class FakeCoordinator:
            node = FakeNode()

        assert injector.crash_point("locked", FakeCoordinator()) is None


class TestMttfProcess:
    def test_crash_restore_cycles(self):
        cluster = make_cluster(fd_timeout=1e-3, fd_heartbeat_interval=0.3e-3)
        node = cluster.compute_nodes[0]
        mttf = MttfProcess(
            cluster.sim,
            node,
            restart=cluster.restart_compute,
            mttf=5e-3,
            repair_time=1e-3,
            rng=random.Random(5),
        )
        mttf.start()
        cluster.run(until=0.060)
        assert mttf.crash_count >= 3
        # The node ends up alive (restored) or mid-repair; either way
        # the cluster kept making progress.
        assert cluster.aggregate_stats().commits > 0

    def test_invalid_mttf(self):
        with pytest.raises(ValueError):
            MttfProcess(Simulator(), None, None, mttf=0)

    def test_stop(self):
        cluster = make_cluster()
        node = cluster.compute_nodes[0]
        mttf = MttfProcess(
            cluster.sim, node, cluster.restart_compute, mttf=100.0
        )
        mttf.start()
        mttf.stop()
        cluster.run(until=0.010)
        assert node.alive


class TestDefaultSeed:
    """Components built without an RNG fall back to the named constant
    (and say so at debug level) instead of a silent `random.Random(0)`."""

    def test_constant_exists(self):
        from repro.faults.injector import DEFAULT_FAULT_SEED

        assert DEFAULT_FAULT_SEED == 0

    def test_injector_fallback_matches_constant(self):
        from repro.faults.injector import DEFAULT_FAULT_SEED

        injector = FaultInjector(Simulator())
        reference = random.Random(DEFAULT_FAULT_SEED)
        assert [injector.rng.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]

    def test_mttf_fallback_matches_constant(self):
        from repro.faults.injector import DEFAULT_FAULT_SEED

        cluster = make_cluster()
        mttf = MttfProcess(
            cluster.sim, cluster.compute_nodes[0], cluster.restart_compute, mttf=1.0
        )
        reference = random.Random(DEFAULT_FAULT_SEED)
        assert [mttf.rng.random() for _ in range(5)] == [
            reference.random() for _ in range(5)
        ]

    def test_fallback_logs_at_debug(self, caplog):
        import logging

        with caplog.at_level(logging.DEBUG, logger="repro.faults.injector"):
            FaultInjector(Simulator())
        assert any("DEFAULT_FAULT_SEED" in record.message for record in caplog.records)


class TestStateHygiene:
    """Injector state hygiene: clear() resets plans, dead nodes are inert."""

    def _rig(self, alive=True):
        sim = Simulator()
        injector = FaultInjector(sim, random.Random(7))

        class FakeNode:
            node_id = 0

            def __init__(self):
                self.alive = alive
                self.crashed = 0

            def crash(self):
                self.alive = False
                self.crashed += 1

        class FakeCoordinator:
            pass

        node = FakeNode()
        coordinator = FakeCoordinator()
        coordinator.node = node
        return sim, injector, node, coordinator

    def test_clear_resets_countdown(self):
        _sim, injector, _node, coordinator = self._rig()
        plan = injector.crash_on_point(0, "locked", nth=3)
        injector.crash_point("locked", coordinator)
        injector.crash_point("locked", coordinator)
        assert plan._seen == 2
        injector.clear()
        injector.add_plan(plan)
        # Fresh countdown: the first post-clear invocation is #1 of 3,
        # not #3 of 3 (the pre-fix behaviour fired here).
        assert injector.crash_point("locked", coordinator) is None
        assert not plan.fired

    def test_clear_resets_fired_flag(self):
        _sim, injector, node, coordinator = self._rig()
        plan = injector.crash_on_point(0, "locked", nth=1)
        assert injector.crash_point("locked", coordinator) is not None
        assert plan.fired
        injector.clear(0)
        node.alive = True
        injector.add_plan(plan)
        # A re-registered plan arms again instead of staying spent.
        assert injector.crash_point("locked", coordinator) is not None

    def test_per_node_clear_resets_only_that_node(self):
        _sim, injector, _node, _coordinator = self._rig()
        mine = injector.crash_on_point(0, "locked", nth=5)
        other = injector.crash_on_point(1, "locked", nth=5)
        mine._seen = other._seen = 4
        injector.clear(0)
        assert mine._seen == 0
        assert other._seen == 4

    def test_crash_at_dead_node_never_schedules(self):
        sim, injector, node, _coordinator = self._rig(alive=False)
        injector.crash_at(node, 0.005)
        assert sim.queue_depth == 0

    def test_crash_point_on_dead_node_is_inert(self):
        _sim, injector, node, coordinator = self._rig(alive=False)
        plan = injector.crash_on_point(0, "locked", nth=1)
        rng_state = injector.rng.getstate()
        assert injector.crash_point("locked", coordinator) is None
        assert not plan.fired and plan._seen == 0
        assert not injector.crashes
        assert node.crashed == 0
        # Probabilistic plans must not burn RNG draws either, or a
        # dead-node window would shift every later seeded decision.
        injector.clear()
        injector.random_crashes(0, probability=0.5)
        assert injector.crash_point("locked", coordinator) is None
        assert injector.rng.getstate() == rng_state
