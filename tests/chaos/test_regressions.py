"""Minimized chaos schedules for recovery-path bugs fixed in this repo.

Each JSON file under ``schedules/`` is a delta-debugged fault schedule
that deterministically reproduced a real bug before its fix (verified
by reverting the fix and replaying), and must stay clean forever after.
The bugs, by artifact:

* ``recovery-claim-leak.json`` — killing the recovery process for a
  compute node mid-recovery (the RC itself crashing, §3.2.3) leaked
  the ``_in_progress`` claim forever: no re-detection could start a
  fresh recovery and the node's coordinator ids were never marked
  failed (CHAOS-QUIESCE, plus stray locks stuck under unfailed ids).
  Fix: release the claim in a ``finally`` that also runs on kill.

* ``degraded-log-quorum.json`` — a memory-server failure that left
  fewer than f+1 live log servers made ``Placement.log_nodes`` raise;
  the error escaped mid-transaction *after* the lock barrier and
  silently killed the worker with its locks held under a live
  coordinator id — unstealable by PILL forever (CHAOS-LOCK). Fix:
  degrade to the live subset (like data-primary promotion) and
  fail-stop the node on any unexpected worker error.

* ``self-kill-zombie-workers.json`` — a falsely-suspected coordinator
  observing its own fencing crashes its node *from one of the node's
  own worker processes*; ``generator.close()`` on the running
  generator raised ValueError and aborted the kill loop, leaving
  sibling workers alive as zombies. After the node restarted with
  fresh ids, the zombies' verbs landed again under ids already marked
  failed: their blind unlock released a lock a legitimate PILL steal
  had just re-granted, double-granting it (CHAOS-SERIAL cycle). Fix:
  tolerate self-kill in ``Process.kill``.

* ``stale-log-restore.json`` — re-replication restarted a memory node
  with its DRAM log regions intact; invalidations/truncations issued
  while it was down never reached it, so long-resolved transactions
  kept *valid* records a later log recovery could replay over newer
  committed data (CHAOS-LOG). Fix: catch-up truncation during restore
  for every region except those of a still-unrecovered coordinator.

* ``abort-drain-on-dead-server.json`` — the abort path awaited its
  log acks and record invalidations with ``all_of``; one copy on a
  log server that died in flight failed the composite, the RdmaError
  skipped the unlock loop, and every held lock leaked under a live
  coordinator id (CHAOS-LOCK). Fix: await per event, tolerating
  RdmaError — dead-server copies are judged by the survivors.

* ``per-event-fence-await.json`` — the fence step awaited its
  link-revocation RPCs with ``all_of``; a memory server that died
  between a fence's post and its arrival (a window a retransmission
  storm stretches to tens of microseconds — hence the ``net_degrade``
  loss spike over the recovery window) failed the composite and
  aborted the whole recovery, leaving the node unrecovered and its
  stray locks unstealable (CHAOS-QUIESCE + CHAOS-LOCK). Fix: await
  per event, tolerating RdmaError — a dead server cannot serve the
  fenced node's verbs anyway. The artifact sets ``fd_redetect``
  to false: FD re-detection restarts the aborted recovery and heals
  the cluster, masking the bug it pins.
"""

import pathlib

import pytest

from repro.chaos import Schedule, run_schedule

SCHEDULE_DIR = pathlib.Path(__file__).parent / "schedules"
SCHEDULES = sorted(SCHEDULE_DIR.glob("*.json"))


def _load(path: pathlib.Path) -> Schedule:
    return Schedule.from_json(path.read_text())


class TestRegressionSchedules:
    def test_artifacts_exist(self):
        assert len(SCHEDULES) >= 5

    @pytest.mark.parametrize("path", SCHEDULES, ids=lambda p: p.stem)
    def test_schedule_stays_clean(self, path):
        result = run_schedule(_load(path))
        assert result.ok, (
            f"{path.stem} regressed: "
            + "; ".join(f"[{v.code}] {v.detail}" for v in result.violations)
        )

    @pytest.mark.parametrize("path", SCHEDULES, ids=lambda p: p.stem)
    def test_schedule_round_trips(self, path):
        schedule = _load(path)
        assert Schedule.from_json(schedule.to_json()).to_dict() == schedule.to_dict()

    def test_minimized_schedules_are_small(self):
        """Shrinker artifacts: locally minimal, so just a few faults."""
        for path in SCHEDULES:
            assert len(_load(path).faults) <= 3, path.stem
