"""Tests for chaos schedules: generation, JSON round trip, coverage."""

from repro.chaos import (
    ALL_CRASH_POINTS,
    FAMILIES,
    Fault,
    Schedule,
    generate_schedule,
)


class TestGeneration:
    def test_same_seed_same_schedule(self):
        assert generate_schedule(17).to_dict() == generate_schedule(17).to_dict()

    def test_different_seeds_differ(self):
        assert generate_schedule(0).to_dict() != generate_schedule(5).to_dict()

    def test_contiguous_bank_spans_all_families(self):
        families = {generate_schedule(seed).family for seed in range(5)}
        assert families == set(FAMILIES)

    def test_bank_spans_every_crash_point(self):
        """A bank of len(ALL_CRASH_POINTS) seeds hits every protocol
        boundary, including the interrupt-resolution points."""
        points = set()
        for seed in range(len(ALL_CRASH_POINTS)):
            for fault in generate_schedule(seed).faults:
                if fault.kind == "crash_point":
                    points.add(fault.point)
        assert points >= set(ALL_CRASH_POINTS)

    def test_every_schedule_has_faults(self):
        for seed in range(25):
            assert generate_schedule(seed).faults


class TestJsonRoundTrip:
    def test_round_trip_identity(self):
        for seed in range(10):
            schedule = generate_schedule(seed)
            assert Schedule.from_json(schedule.to_json()).to_dict() == schedule.to_dict()

    def test_unknown_version_rejected(self):
        import pytest

        data = generate_schedule(0).to_dict()
        data["version"] = 999
        with pytest.raises(ValueError):
            Schedule.from_dict(data)

    def test_without_fault(self):
        schedule = generate_schedule(0)
        smaller = schedule.without_fault(0)
        assert len(smaller.faults) == len(schedule.faults) - 1
        # The original is untouched (copies, not aliases).
        smaller.faults[0].at = 123.0
        assert schedule.faults[1].at != 123.0

    def test_fault_defaults_survive(self):
        fault = Fault(kind="crash_compute", node=1, at=2e-3)
        restored = Schedule.from_dict(
            Schedule(seed=0, family="cascade", faults=[fault]).to_dict()
        )
        assert restored.faults[0] == fault
