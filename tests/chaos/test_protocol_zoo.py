"""Chaos coverage for the two zoo newcomers (lotus, vote1pc).

Neither has a frozen legacy twin to diff against, so their safety case
is the consistency oracle itself: every fault family must run to
quiescence with zero violations, sanitized or not. Two regressions are
pinned here on the seeds that caught them:

* lotus: a memory restore used to leave the node's *volatile* ticket
  queues populated while re-replication zeroed the lock words — the
  next FAA found the stale queue and re-granted the slot to a waiter
  whose transaction had long since resolved, a live-owner lock leak
  the oracle reports as CHAOS-LOCK. Seeds ≡ 2, 3 (mod 5) carry
  restore_memory faults and reproduced it 8/20 before the fix
  (``MemoryNode.restart`` now drops queues and vote shadows).
* vote1pc: the same restore path must not resurrect stale vote
  shadows, or recovery would "roll back" state the restore already
  rebuilt from live replicas.

The CI chaos job runs both protocols over a 20-seed sanitized bank;
this tier-1 bank covers every family twice per protocol.
"""

import pytest

from repro.chaos import generate_schedule, run_schedule

ZOO = ("lotus", "vote1pc")

#: Two seeds per fault family (seed % 5 selects the family).
SEED_BANK = tuple(range(10))

#: The restore_memory families that caught the stale-ticket-queue leak.
RESTORE_SEEDS = (2, 3, 7, 8)


class TestZooCampaign:
    @pytest.mark.parametrize("protocol", ZOO)
    @pytest.mark.parametrize("seed", SEED_BANK)
    def test_family_seed_clean(self, protocol, seed):
        result = run_schedule(generate_schedule(seed, protocol=protocol))
        assert result.ok, [str(v) for v in result.violations]
        assert result.committed > 0

    @pytest.mark.parametrize("protocol", ZOO)
    @pytest.mark.parametrize("seed", RESTORE_SEEDS[:2])
    def test_memory_restore_families_sanitized(self, protocol, seed):
        # The regression families, with the PILL sanitizer watching
        # every verb on top of the oracle.
        result = run_schedule(
            generate_schedule(seed, protocol=protocol), sanitize=True
        )
        assert result.ok, [str(v) for v in result.violations]

    @pytest.mark.parametrize("protocol", ZOO)
    def test_same_seed_same_fingerprint(self, protocol):
        schedule = generate_schedule(2, protocol=protocol)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.fingerprint == second.fingerprint
        assert first.committed == second.committed


class TestTicketQueuesAreVolatile:
    """The lotus leak, re-enacted at the memory-node level."""

    def test_restart_drops_queues_and_shadows(self):
        from repro.memory.node import MemoryNode, _TicketQueue

        node = MemoryNode(0)
        # A waiter is queued when the node restarts (battery-backed
        # memory survives, the lock server's process state does not).
        queue = _TicketQueue()
        queue.entries[queue.next_ticket] = 17
        queue.next_ticket += 1
        node._ticket_queues[(0, 5)] = queue
        node._vote_shadows[(0, 5)] = (17, 1, 0, "old", True, ())
        node.restart()
        assert node.alive
        assert not node._ticket_queues
        assert not node._vote_shadows
