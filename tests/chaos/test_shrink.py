"""Unit tests for the delta-debugging shrinker (no cluster needed)."""

from repro.chaos import Fault, Schedule, shrink_schedule


def _schedule(n_faults: int) -> Schedule:
    return Schedule(
        seed=0,
        family="cascade",
        faults=[
            Fault(kind="crash_compute", node=i % 3, at=(i + 1) * 1e-3)
            for i in range(n_faults)
        ],
    )


class TestShrinker:
    def test_shrinks_to_single_culprit(self):
        """Failure depends on one fault: everything else is removed."""
        schedule = _schedule(6)
        culprit = schedule.faults[3]

        def fails(candidate):
            return culprit in candidate.faults

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == [culprit]

    def test_keeps_interacting_pair(self):
        """Failure needs two faults together: both survive."""
        schedule = _schedule(5)
        pair = (schedule.faults[1], schedule.faults[4])

        def fails(candidate):
            return all(fault in candidate.faults for fault in pair)

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == list(pair)

    def test_restart_finds_order_dependent_removals(self):
        """Removing fault 4 only helps after fault 0 is gone; the
        restart-at-zero policy still reaches the 1-fault minimum."""
        schedule = _schedule(5)
        f0, f2 = schedule.faults[0], schedule.faults[2]

        def fails(candidate):
            # f2 alone fails; f0 masks removals of anything else.
            if f0 in candidate.faults:
                return len(candidate.faults) >= 4
            return f2 in candidate.faults

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == [f2]

    def test_never_returns_empty(self):
        schedule = _schedule(3)
        minimized, _runs = shrink_schedule(schedule, fails=lambda s: True)
        assert len(minimized.faults) == 1

    def test_max_runs_bounds_work(self):
        schedule = _schedule(8)
        calls = []

        def fails(candidate):
            calls.append(1)
            return True

        _minimized, runs = shrink_schedule(schedule, fails=fails, max_runs=3)
        assert runs == 3
        assert len(calls) == 3

    def test_input_schedule_never_rerun(self):
        schedule = _schedule(3)
        seen = []

        def fails(candidate):
            seen.append(candidate)
            return False

        shrink_schedule(schedule, fails=fails)
        assert all(candidate.to_dict() != schedule.to_dict() for candidate in seen)
