"""Unit tests for the delta-debugging shrinker (no cluster needed)."""

from repro.chaos import Fault, Schedule, shrink_schedule


def _schedule(n_faults: int) -> Schedule:
    return Schedule(
        seed=0,
        family="cascade",
        faults=[
            Fault(kind="crash_compute", node=i % 3, at=(i + 1) * 1e-3)
            for i in range(n_faults)
        ],
    )


class TestShrinker:
    def test_shrinks_to_single_culprit(self):
        """Failure depends on one fault: everything else is removed."""
        schedule = _schedule(6)
        culprit = schedule.faults[3]

        def fails(candidate):
            return culprit in candidate.faults

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == [culprit]

    def test_keeps_interacting_pair(self):
        """Failure needs two faults together: both survive."""
        schedule = _schedule(5)
        pair = (schedule.faults[1], schedule.faults[4])

        def fails(candidate):
            return all(fault in candidate.faults for fault in pair)

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == list(pair)

    def test_restart_finds_order_dependent_removals(self):
        """Removing fault 4 only helps after fault 0 is gone; the
        restart-at-zero policy still reaches the 1-fault minimum."""
        schedule = _schedule(5)
        f0, f2 = schedule.faults[0], schedule.faults[2]

        def fails(candidate):
            # f2 alone fails; f0 masks removals of anything else.
            if f0 in candidate.faults:
                return len(candidate.faults) >= 4
            return f2 in candidate.faults

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults == [f2]

    def test_never_returns_empty(self):
        schedule = _schedule(3)
        minimized, _runs = shrink_schedule(schedule, fails=lambda s: True)
        assert len(minimized.faults) == 1

    def test_max_runs_bounds_work(self):
        schedule = _schedule(8)
        calls = []

        def fails(candidate):
            calls.append(1)
            return True

        _minimized, runs = shrink_schedule(schedule, fails=fails, max_runs=3)
        assert runs == 3
        assert len(calls) == 3

    def test_input_schedule_never_rerun(self):
        schedule = _schedule(3)
        seen = []

        def fails(candidate):
            seen.append(candidate)
            return False

        shrink_schedule(schedule, fails=fails)
        assert all(candidate.to_dict() != schedule.to_dict() for candidate in seen)


class TestFieldMinimization:
    """The second pass: zero delays, round times (not just delete)."""

    def test_zeroes_irrelevant_delays_and_rounds_times(self):
        """A known-shrinkable schedule: the crash matters, its exact
        microseconds and the kill delays do not."""
        schedule = Schedule(
            seed=0,
            family="recovery_crash",
            faults=[
                Fault(kind="crash_compute", node=1, at=0.0031874),
                Fault(
                    kind="crash_recovery",
                    node=1,
                    after=1.7e-5,
                    restart_after=6.3e-4,
                ),
            ],
        )

        def fails(candidate):
            # Reproduces as long as node 1 crashes and its recovery is
            # killed — timing is generator noise.
            kinds = {fault.kind for fault in candidate.faults}
            return kinds == {"crash_compute", "crash_recovery"}

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        crash, kill = minimized.faults
        assert crash.at == 0.003  # rounded to the 1ms grid
        assert kill.after == 0.0
        assert kill.restart_after == 0.0

    def test_keeps_load_bearing_fields(self):
        """Fields the failure depends on are left alone."""
        schedule = Schedule(
            seed=0,
            family="recovery_crash",
            faults=[
                Fault(kind="crash_recovery", node=0, after=1.7e-5, restart_after=0.0)
            ],
        )

        def fails(candidate):
            # The kill only reproduces inside the recovery window.
            return candidate.faults[0].after == 1.7e-5

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults[0].after == 1.7e-5

    def test_falls_back_to_finer_grid(self):
        """When the millisecond grid kills the repro, 0.1ms is tried."""
        schedule = Schedule(
            seed=0,
            family="cascade",
            faults=[Fault(kind="crash_compute", node=0, at=0.0034874)],
        )

        def fails(candidate):
            # Needs the crash in [3.3ms, 3.6ms): 0.003 fails, 0.0035 works.
            return 3.3e-3 <= candidate.faults[0].at < 3.6e-3

        minimized, _runs = shrink_schedule(schedule, fails=fails)
        assert minimized.faults[0].at == 0.0035

    def test_field_pass_shares_run_budget(self):
        schedule = Schedule(
            seed=0,
            family="cascade",
            faults=[
                Fault(kind="crash_compute", node=0, at=0.0031874, after=1e-5),
                Fault(kind="crash_compute", node=1, at=0.0042113, after=2e-5),
            ],
        )
        calls = []

        def fails(candidate):
            calls.append(1)
            return True

        minimized, runs = shrink_schedule(schedule, fails=fails, max_runs=2)
        assert runs == 2
        assert len(calls) == 2
        # The budget ran out after zeroing `after`, before `at` rounding.
        assert minimized.faults[0].after == 0.0
        assert minimized.faults[0].at == 0.0042113

    def test_fixpoint_is_stable(self):
        """Re-shrinking an already-minimal schedule does no runs beyond
        probing (every candidate fails to reproduce, nothing changes)."""
        schedule = Schedule(
            seed=0,
            family="cascade",
            faults=[Fault(kind="crash_compute", node=0, at=0.003)],
        )
        minimized, _runs = shrink_schedule(schedule, fails=lambda s: True)
        assert minimized.faults[0].at == 0.003
        again, runs_again = shrink_schedule(minimized, fails=lambda s: True)
        assert again.to_dict() == minimized.to_dict()
