"""Tests for the chaos campaign runner and consistency oracle.

The seed bank here is small (chaos runs build a full cluster each);
the CI ``chaos`` job and ``repro chaos --seeds 50`` run the wide bank.
"""

from dataclasses import replace

import pytest

from repro.chaos import generate_schedule, run_schedule
from repro.chaos.schedule import Fault, Schedule

# One seed per fault family (seed % 5 selects the family).
FAMILY_SEEDS = (0, 1, 2, 3, 4)


class TestCampaign:
    @pytest.mark.parametrize("seed", FAMILY_SEEDS)
    def test_family_seed_clean(self, seed):
        """Every fault family runs to quiescence with a clean oracle."""
        result = run_schedule(generate_schedule(seed))
        assert result.ok, [v.detail for v in result.violations]
        assert result.crashes > 0 or result.schedule.family == "fd_false_positive"

    def test_recovery_kill_lands(self):
        """The recovery_crash family really kills recovery mid-flight
        (a watcher that always misses would test nothing)."""
        result = run_schedule(generate_schedule(1))
        assert result.recovery_kills >= 1

    def test_same_seed_same_fingerprint(self):
        """Bit-identical replay: same schedule, same final state."""
        schedule = generate_schedule(2)
        first = run_schedule(schedule)
        second = run_schedule(schedule)
        assert first.fingerprint == second.fingerprint
        assert first.committed == second.committed
        assert first.crashes == second.crashes

    def test_commits_happen_under_chaos(self):
        """The workload makes real progress despite the fault load."""
        result = run_schedule(generate_schedule(0))
        assert result.committed > 0

    def test_sanitize_mode_clean(self):
        """The PILL sanitizer rides along without new violations."""
        result = run_schedule(generate_schedule(1), sanitize=True)
        assert result.ok, [v.detail for v in result.violations]

    def test_summary_mentions_seed_and_family(self):
        result = run_schedule(generate_schedule(3))
        summary = result.summary()
        assert "seed=3" in summary and "logserver" in summary

    def test_redetections_surface_in_result_and_summary(self):
        """When the schedule's own recovery re-trigger is pushed past
        the run (restart_after > duration), only the FD's re-detection
        can heal the killed recovery — and the result counts it."""
        schedule = Schedule(
            seed=999,
            family="recovery_crash",
            duration=20e-3,
            faults=[
                Fault(kind="crash_compute", at=4e-3, node=0),
                Fault(
                    kind="crash_recovery",
                    node=0,
                    # Strike 5us in: compute recovery completes in tens
                    # of us, so a longer delay misses it entirely.
                    after=5e-6,
                    restart_after=1.0,
                ),
            ],
        )
        result = run_schedule(schedule)
        assert result.ok, [v.detail for v in result.violations]
        assert result.recovery_kills >= 1
        assert result.redetections >= 1
        assert f"redetects={result.redetections}" in result.summary()

    def test_redetect_interval_zero_disables_redetection(self):
        result = run_schedule(generate_schedule(1), fd_redetect_interval=0.0)
        assert result.redetections == 0


class TestOraclePositiveControl:
    def test_published_ford_bugs_are_caught(self):
        """FORD with the Table 1 bugs present must fail the oracle —
        otherwise the oracle is vacuous."""
        schedule = replace(generate_schedule(0), protocol="ford")
        result = run_schedule(schedule)
        codes = {violation.code for violation in result.violations}
        assert codes, "oracle passed a protocol with six published bugs"
        assert codes & {"CHAOS-SERIAL", "CHAOS-LOG", "CHAOS-LOCK"}
