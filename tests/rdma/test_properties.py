"""Property tests for the RDMA fabric's ordering and delay guarantees."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.node import MemoryNode
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.verbs import Verbs
from repro.sim import Simulator


@given(
    size=st.integers(0, 1 << 20),
    jitter=st.floats(0.0, 1e-6),
    seed=st.integers(0, 1000),
)
@settings(max_examples=100)
def test_delay_bounds(size, jitter, seed):
    """delay >= base latency + serialization, and bounded by jitter."""
    config = NetworkConfig(jitter=jitter)
    network = Network(config, random.Random(seed))
    delay = network.delay(size)
    floor = config.one_way_latency + size / config.bandwidth_bytes_per_sec
    assert floor <= delay <= floor + jitter + 1e-12


@given(sizes=st.lists(st.integers(0, 4096), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_qp_preserves_post_order(sizes):
    """RC FIFO: verbs posted together execute in post order at memory,
    regardless of per-message jitter — the property FORD's
    lock-then-read sequence depends on (§3.1.1)."""
    sim = Simulator()
    network = Network(NetworkConfig(jitter=0.5e-6), random.Random(3))
    memory = MemoryNode(0)
    memory.create_table(0, 1, value_size=8)
    memory.load_slot(0, 0, value=0)
    verbs = Verbs(sim, 1, network, {0: memory})

    order = []
    original_apply = memory.apply

    def recording_apply(src, kind, args):
        if kind == "write_object":
            order.append(args[3])  # the value carries the post index
        return original_apply(src, kind, args)

    memory.apply = recording_apply

    def proc():
        events = [
            verbs.write_object(0, 0, 0, version=i + 1, value=i, value_size=size)
            for i, size in enumerate(sizes)
        ]
        yield sim.all_of(events)

    sim.run_until_complete(sim.process(proc()))
    assert order == list(range(len(sizes)))


@given(
    loss=st.floats(0.0, 0.5),
    seed=st.integers(0, 100),
)
@settings(max_examples=30, deadline=None)
def test_lossy_network_still_delivers_everything(loss, seed):
    """Reliable connection: loss shows up as latency, never as a
    missing completion."""
    sim = Simulator()
    network = Network(
        NetworkConfig(jitter=0.0, loss_probability=loss),
        random.Random(seed),
    )
    memory = MemoryNode(0)
    memory.create_table(0, 8, value_size=8)
    verbs = Verbs(sim, 1, network, {0: memory})
    delivered = []

    def proc():
        for slot in range(8):
            result = yield verbs.cas_lock(0, 0, slot, 0, 42)
            delivered.append(result)

    sim.run_until_complete(sim.process(proc()))
    assert delivered == [0] * 8
    assert all(memory.slot(0, s).lock == 42 for s in range(8))
