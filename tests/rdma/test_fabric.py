"""Tests for the simulated RDMA fabric: network, QPs, verbs."""

import random

import pytest

from repro.memory.node import MemoryNode
from repro.rdma.errors import LinkRevokedError, RemoteNodeDownError
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.verbs import Verbs
from repro.sim import Simulator


@pytest.fixture
def rig():
    sim = Simulator()
    network = Network(NetworkConfig(jitter=0.0), random.Random(1))
    memory = MemoryNode(0)
    memory.create_table(0, 64, value_size=8)
    memory.load_slot(0, 3, value=111)
    verbs = Verbs(sim, compute_id=7, network=network, memory_nodes={0: memory})
    return sim, network, memory, verbs


class TestNetworkModel:
    def test_small_message_delay_near_base_latency(self):
        network = Network(NetworkConfig(jitter=0.0), random.Random(0))
        delay = network.delay(64)
        assert delay == pytest.approx(
            NetworkConfig().one_way_latency + 64 / NetworkConfig().bandwidth_bytes_per_sec
        )

    def test_bulk_transfer_charged_bandwidth(self):
        config = NetworkConfig(jitter=0.0)
        network = Network(config, random.Random(0))
        one_gib = 1 << 30
        delay = network.delay(one_gib)
        assert delay > one_gib / config.bandwidth_bytes_per_sec

    def test_scan_arithmetic_matches_paper_claim(self):
        """§3.1.1: scanning 100 GiB over 100 Gbps takes >= 8 s."""
        network = Network(NetworkConfig(jitter=0.0), random.Random(0))
        assert network.transfer_time(100 * (1 << 30)) >= 8.0

    def test_loss_adds_retransmit_latency(self):
        config = NetworkConfig(jitter=0.0, loss_probability=0.999)
        network = Network(config, random.Random(0))
        assert network.delay(64) > config.retransmit_timeout

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            NetworkConfig(one_way_latency=0).validate()
        with pytest.raises(ValueError):
            NetworkConfig(loss_probability=1.5).validate()


class TestRetransmission:
    """The RC retransmit model: lost packets retry geometrically.

    A retransmitted packet is just as likely to be lost as the
    original, so the retry count is geometric with mean p/(1-p) — the
    old model charged at most one ``retransmit_timeout`` per message,
    underestimating tail latency badly at high loss.
    """

    def _base(self, config: NetworkConfig, size: int = 64) -> float:
        return config.one_way_latency + size / config.bandwidth_bytes_per_sec

    def test_retries_are_geometric_not_single(self):
        config = NetworkConfig(jitter=0.0, loss_probability=0.75)
        network = Network(config, random.Random(3))
        base = self._base(config)
        retries = [
            round((network.delay(64) - base) / config.retransmit_timeout)
            for _ in range(500)
        ]
        # The pre-fix model capped this at 1 retransmission.
        assert max(retries) >= 3
        # Geometric mean p/(1-p) = 3; loose bounds for a seeded sample.
        mean = sum(retries) / len(retries)
        assert 2.0 < mean < 4.5

    def test_each_retry_rerolls_jitter(self):
        """Every retry is a fresh wire traversal: jitter accumulates
        beyond one roll's worth whenever a message retries twice."""
        config = NetworkConfig(jitter=0.2e-6, loss_probability=0.7)
        network = Network(config, random.Random(5))
        base = self._base(config)
        for _ in range(500):
            extra = network.delay(64) - base
            retries = int(extra // config.retransmit_timeout)
            jitter_total = extra - retries * config.retransmit_timeout
            if jitter_total > config.jitter:
                return  # more jitter than a single roll can produce
        pytest.fail("jitter never exceeded one roll across 500 draws")

    def test_zero_loss_pays_no_retransmit(self):
        config = NetworkConfig(jitter=0.0, loss_probability=0.0)
        network = Network(config, random.Random(0))
        assert network.delay(64) == pytest.approx(self._base(config))

    def test_same_seed_same_delays(self):
        config = NetworkConfig(loss_probability=0.4)
        first = Network(config, random.Random(9))
        second = Network(config, random.Random(9))
        assert [first.delay(64) for _ in range(50)] == [
            second.delay(64) for _ in range(50)
        ]


class TestVerbs:
    def test_read_object_roundtrip(self, rig):
        sim, _network, _memory, verbs = rig

        def proc():
            snapshot = yield verbs.read_object(0, 0, 3)
            return snapshot

        lock, version, present, value = sim.run_until_complete(sim.process(proc()))
        assert (lock, version, present, value) == (0, 1, True, 111)

    def test_read_costs_a_round_trip(self, rig):
        sim, network, _memory, verbs = rig

        def proc():
            yield verbs.read_header(0, 0, 3)
            return sim.now

        elapsed = sim.run_until_complete(sim.process(proc()))
        assert elapsed >= 2 * network.config.one_way_latency

    def test_cas_succeeds_and_returns_old(self, rig):
        sim, _network, memory, verbs = rig

        def proc():
            old = yield verbs.cas_lock(0, 0, 3, 0, 0xABC)
            return old

        assert sim.run_until_complete(sim.process(proc())) == 0
        assert memory.slot(0, 3).lock == 0xABC

    def test_cas_failure_leaves_word(self, rig):
        sim, _network, memory, verbs = rig
        memory.slot(0, 3).lock = 0x111

        def proc():
            old = yield verbs.cas_lock(0, 0, 3, 0, 0xABC)
            return old

        assert sim.run_until_complete(sim.process(proc())) == 0x111
        assert memory.slot(0, 3).lock == 0x111

    def test_concurrent_cas_only_one_wins(self, rig):
        """The atomicity that makes one-sided locking possible."""
        sim, _network, memory, verbs = rig

        def contender(word):
            old = yield verbs.cas_lock(0, 0, 3, 0, word)
            return old == 0

        winners = [sim.process(contender(0x100 + i)) for i in range(8)]
        sim.run()
        assert sum(1 for process in winners if process.value) == 1

    def test_qp_fifo_cas_then_read(self, rig):
        """RC in-order delivery: a read posted after a CAS observes it."""
        sim, _network, _memory, verbs = rig

        def proc():
            cas_event = verbs.cas_lock(0, 0, 3, 0, 0xBEEF)
            read_event = verbs.read_header(0, 0, 3)
            yield cas_event
            lock, _version, _present = yield read_event
            return lock

        assert sim.run_until_complete(sim.process(proc())) == 0xBEEF

    def test_write_object_updates_value_and_version(self, rig):
        sim, _network, memory, verbs = rig

        def proc():
            yield verbs.write_object(0, 0, 3, version=2, value=999, present=True)

        sim.run_until_complete(sim.process(proc()))
        slot = memory.slot(0, 3)
        assert (slot.version, slot.value) == (2, 999)

    def test_unsignaled_write_still_lands(self, rig):
        sim, _network, memory, verbs = rig

        def proc():
            event = verbs.write_object(
                0, 0, 3, version=5, value=1, present=True, signaled=False
            )
            yield event  # fires immediately, before the write lands
            return sim.now

        returned_at = sim.run_until_complete(sim.process(proc()))
        assert returned_at == 0.0
        assert memory.slot(0, 3).version != 5
        sim.run()
        assert memory.slot(0, 3).version == 5

    def test_batched_header_read(self, rig):
        sim, _network, memory, verbs = rig
        memory.load_slot(0, 4, value=5)

        def proc():
            headers = yield verbs.read_headers(0, [(0, 3), (0, 4)])
            return headers

        headers = sim.run_until_complete(sim.process(proc()))
        assert len(headers) == 2
        assert headers[0][1] == 1  # version of slot 3

    def test_missing_qp_raises(self, rig):
        _sim, _network, _memory, verbs = rig
        with pytest.raises(KeyError):
            verbs.read_header(99, 0, 0)


class TestFailureSemantics:
    def test_revoked_link_fails_completions(self, rig):
        sim, _network, memory, verbs = rig
        memory._op_ctrl_revoke(0, (7,))

        def proc():
            try:
                yield verbs.read_header(0, 0, 3)
            except LinkRevokedError:
                return "revoked"
            return "ok"

        assert sim.run_until_complete(sim.process(proc())) == "revoked"

    def test_revocation_rpc_end_to_end(self, rig):
        sim, _network, memory, verbs = rig

        def proc():
            yield verbs.revoke_link(0, target_compute_id=7)
            try:
                yield verbs.read_header(0, 0, 3)
            except LinkRevokedError:
                return "fenced"
            return "ok"

        assert sim.run_until_complete(sim.process(proc())) == "fenced"
        assert memory.is_revoked(7)

    def test_dead_memory_node_fails_verbs(self, rig):
        sim, _network, memory, verbs = rig
        memory.crash()

        def proc():
            try:
                yield verbs.read_header(0, 0, 3)
            except RemoteNodeDownError:
                return "down"
            return "ok"

        assert sim.run_until_complete(sim.process(proc())) == "down"

    def test_posted_verbs_land_after_sender_dies(self, rig):
        """The stray-lock mechanism: a CAS posted by a process that is
        killed immediately afterwards still executes at memory."""
        sim, _network, memory, verbs = rig

        def proc():
            verbs.cas_lock(0, 0, 3, 0, 0xDEAD)
            yield sim.timeout(100)  # killed long before this

        process = sim.process(proc())
        sim.run(until=1e-9)
        process.kill()
        sim.run()
        assert memory.slot(0, 3).lock == 0xDEAD
