"""Unit tests for the generator-aware CFG builder (repro.analysis.cfg)."""

import ast

from repro.analysis.cfg import (
    CFG,
    build_cfg,
    dotted_name,
    exception_matches,
    stmt_yield_values,
)


def _cfg(source: str, raises_for=None) -> CFG:
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func, raises_for)


def _node(cfg: CFG, fragment: str):
    matches = [n for n in cfg.stmt_nodes() if fragment in n.desc]
    assert matches, f"no node matching {fragment!r} in:\n{cfg.render()}"
    return matches[0]


def _edges(cfg: CFG, fragment: str):
    return {(t.desc, label) for t, label in _node(cfg, fragment).succs}


def _reachable(cfg: CFG):
    seen = set()
    stack = [cfg.entry]
    while stack:
        node = stack.pop()
        if node.node_id in seen:
            continue
        seen.add(node.node_id)
        for target, _ in node.succs:
            stack.append(target)
    return seen


class TestExceptionModel:
    def test_hierarchy(self):
        assert exception_matches(("RdmaError",), "LinkRevokedError")
        assert exception_matches(("Exception",), "TxnAbort")
        assert not exception_matches(("Exception",), "GeneratorExit")
        assert not exception_matches(("TxnAbort",), "RdmaError")
        assert exception_matches(("BaseException",), "GeneratorExit")

    def test_bare_except_catches_all(self):
        assert exception_matches(None, "GeneratorExit")
        assert exception_matches(None, "RdmaError")

    def test_unknown_exception_defaults_to_exception_subclass(self):
        assert exception_matches(("Exception",), "SomeAppError")
        assert not exception_matches(("RdmaError",), "SomeAppError")


class TestYieldDetection:
    def test_plain_and_yield_from(self):
        stmt = ast.parse("x = yield event").body[0]
        assert len(stmt_yield_values(stmt)) == 1
        stmt = ast.parse("result = yield from self._commit(tx)").body[0]
        assert len(stmt_yield_values(stmt)) == 1

    def test_nested_def_and_lambda_skipped(self):
        stmt = ast.parse(
            "def inner():\n    yield 1\n"
        ).body[0]
        assert stmt_yield_values(stmt) == []
        stmt = ast.parse("f = lambda: (yield 1)").body[0]
        assert stmt_yield_values(stmt) == []

    def test_compound_header_only(self):
        # The for head itself does not yield just because its body does.
        stmt = ast.parse("for ack in acks:\n    yield ack\n").body[0]
        assert stmt_yield_values(stmt) == []
        stmt = ast.parse("for x in (yield evt):\n    pass\n").body[0]
        assert len(stmt_yield_values(stmt)) == 1


class TestBranches:
    def test_if_true_false_labels(self):
        cfg = _cfg(
            "def f(tx):\n"
            "    if tx.log_acks:\n"
            "        drain()\n"
            "    release()\n"
        )
        edges = _edges(cfg, "if tx.log_acks")
        assert ("drain()", "true") in edges
        assert ("release()", "false") in edges

    def test_for_exhausted_edge(self):
        cfg = _cfg(
            "def f(acks):\n"
            "    for ack in acks:\n"
            "        consume(ack)\n"
            "    done()\n"
        )
        edges = _edges(cfg, "for ack in acks")
        assert ("consume(ack)", "true") in edges
        assert ("done()", "false") in edges
        # Loop body flows back to the head.
        assert ("for ack in acks", "") in _edges(cfg, "consume(ack)")

    def test_while_true_has_no_exit_edge(self):
        cfg = _cfg(
            "def f():\n"
            "    while True:\n"
            "        spin()\n"
        )
        labels = {label for _, label in _node(cfg, "while True").succs}
        assert "false" not in labels

    def test_break_and_continue(self):
        cfg = _cfg(
            "def f(items):\n"
            "    for item in items:\n"
            "        if bad(item):\n"
            "            break\n"
            "        if skip(item):\n"
            "            continue\n"
            "        work(item)\n"
            "    after()\n"
        )
        assert ("after()", "") in _edges(cfg, "break")
        assert ("for item in items", "") in _edges(cfg, "continue")


class TestExceptionEdges:
    YIELD = (
        "def f(self):\n"
        "    try:\n"
        "        ack = yield event\n"
        "    except RdmaError:\n"
        "        handle()\n"
        "    done()\n"
    )

    def test_yield_routes_to_matching_handler(self):
        cfg = _cfg(self.YIELD)
        edges = _edges(cfg, "ack = (yield event)")
        assert ("handle()", "RdmaError") in edges
        assert ("done()", "") in edges

    def test_generator_exit_not_caught_by_except_rdma(self):
        cfg = _cfg(self.YIELD)
        node = _node(cfg, "ack = (yield event)")
        kills = [t for t, label in node.succs if label == "GeneratorExit"]
        assert kills == [cfg.kill_exit]

    def test_bare_except_catches_generator_exit(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        ack = yield event\n"
            "    except:\n"
            "        handle()\n"
        )
        edges = _edges(cfg, "ack = (yield event)")
        assert ("handle()", "GeneratorExit") in edges

    def test_handler_exception_skips_siblings(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        ack = yield event\n"
            "    except LinkRevokedError:\n"
            "        cleanup = yield other\n"
            "    except RdmaError:\n"
            "        recover()\n"
        )
        # An RdmaError raised while *handling* LinkRevokedError must
        # NOT reach the sibling RdmaError handler.
        edges = _edges(cfg, "cleanup = (yield other)")
        assert ("recover()", "RdmaError") not in edges
        assert (cfg.raise_exit.desc, "RdmaError") in edges

    def test_first_matching_handler_wins(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        ack = yield event\n"
            "    except LinkRevokedError:\n"
            "        fence()\n"
            "    except RdmaError:\n"
            "        recover()\n"
        )
        edges = _edges(cfg, "ack = (yield event)")
        assert ("fence()", "LinkRevokedError") in edges
        assert ("recover()", "RdmaError") in edges

    def test_explicit_raise(self):
        cfg = _cfg(
            "def f(self):\n"
            "    raise TxnAbort(reason)\n"
        )
        edges = _edges(cfg, "raise TxnAbort")
        assert (cfg.raise_exit.desc, "TxnAbort") in edges

    def test_bare_reraise_uses_handler_type(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        ack = yield event\n"
            "    except LinkRevokedError:\n"
            "        note()\n"
            "        raise\n"
            "    done()\n"
        )
        raise_node = [n for n in cfg.stmt_nodes() if n.desc == "raise"][0]
        assert (cfg.raise_exit, "LinkRevokedError") in raise_node.succs


class TestFinally:
    def test_finally_duplicated_per_route(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        ack = yield event\n"
            "    finally:\n"
            "        cleanup()\n"
            "    done()\n"
        )
        # Normal path, RdmaError path, LinkRevoked path, and the kill
        # path each get their own finally copy (normal is shared).
        copies = [n for n in cfg.stmt_nodes() if n.desc == "cleanup()"]
        assert len(copies) >= 4
        kill_copies = [
            n for n in copies if (cfg.kill_exit, "GeneratorExit") in n.succs
        ]
        assert len(kill_copies) == 1
        raise_copies = [
            n for n in copies if any(t is cfg.raise_exit for t, _ in n.succs)
        ]
        assert len(raise_copies) >= 1

    def test_return_runs_finally(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        return 1\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        ret = _node(cfg, "return 1")
        cleanups = [t for t, _ in ret.succs if t.desc == "cleanup()"]
        assert cleanups, cfg.render()
        assert (cfg.exit, "return") in cleanups[0].succs

    def test_break_runs_finally_of_inner_try_only(self):
        cfg = _cfg(
            "def f(items):\n"
            "    try:\n"
            "        for item in items:\n"
            "            try:\n"
            "                break\n"
            "            finally:\n"
            "                inner()\n"
            "    finally:\n"
            "        outer()\n"
            "    after()\n"
        )
        brk = _node(cfg, "break")
        inner = [t for t, _ in brk.succs if t.desc == "inner()"]
        assert inner
        # break lands after the loop — still inside the outer try, so
        # the outer finally runs when the try is left, not at break.
        assert ("outer()", "") in {
            (t.desc, label) for t, label in inner[0].succs
        }
        assert ("after()", "") in _edges(cfg, "outer()")

    def test_nested_finallys_run_innermost_first(self):
        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        try:\n"
            "            ack = yield event\n"
            "        finally:\n"
            "            inner()\n"
        "    finally:\n"
            "        outer()\n"
        )
        node = _node(cfg, "ack = (yield event)")
        rdma_targets = [t for t, label in node.succs if label == "RdmaError"]
        assert [t.desc for t in rdma_targets] == ["inner()"]
        next_hop = [
            t for t, label in rdma_targets[0].succs if label == "RdmaError"
        ]
        assert [t.desc for t in next_hop] == ["outer()"]


class TestWholeFunction:
    def test_every_stmt_node_reachable_and_terminated(self):
        source = (
            "def run(self, tx):\n"
            "    try:\n"
            "        result = yield from self._execute(tx)\n"
            "        for ack in tx.log_acks:\n"
            "            try:\n"
            "                yield ack\n"
            "            except RdmaError:\n"
            "                continue\n"
            "        yield from self._commit(tx)\n"
            "    except TxnAbort:\n"
            "        yield from self._abort(tx)\n"
            "    except RdmaError:\n"
            "        yield from self.recover_interrupted(tx)\n"
            "    finally:\n"
            "        self.current_tx = None\n"
            "    return result\n"
        )
        def raises_for(stmt):
            if stmt_yield_values(stmt):
                # Model the engine: delegated calls can surface aborts.
                return ("TxnAbort", "RdmaError", "LinkRevokedError",
                        "GeneratorExit")
            return ()

        cfg = _cfg(source, raises_for)
        reachable = _reachable(cfg)
        for node in cfg.stmt_nodes():
            assert node.node_id in reachable, node
            assert node.succs, f"dangling node {node}"

    def test_custom_raises_for(self):
        def raises_for(stmt):
            if stmt_yield_values(stmt):
                return ("TxnAbort", "GeneratorExit")
            return ()

        cfg = _cfg(
            "def f(self):\n"
            "    try:\n"
            "        yield event\n"
            "    except TxnAbort:\n"
            "        aborted()\n",
            raises_for,
        )
        edges = _edges(cfg, "yield event")
        assert ("aborted()", "TxnAbort") in edges
        labels = {label for _, label in _node(cfg, "yield event").succs}
        assert "RdmaError" not in labels

    def test_docstring_skipped(self):
        cfg = _cfg('def f():\n    """doc"""\n    work()\n')
        descs = [n.desc for n in cfg.stmt_nodes()]
        assert descs == ["work()"]


class TestDottedName:
    def test_chains(self):
        expr = ast.parse("self.verbs.cas_lock(1)").body[0].value
        assert dotted_name(expr.func) == "self.verbs.cas_lock"
        expr = ast.parse("x").body[0].value
        assert dotted_name(expr) == "x"
        expr = ast.parse("f()(1)").body[0].value
        assert dotted_name(expr.func) is None
