"""Tests for the lockset race detector over flight-recorder traces."""

import json

from repro.analysis.races import (
    analyze_attempts,
    analyze_lock_events,
    analyze_traces,
    load_flight_jsonl,
    render_json,
    render_text,
)
from repro.obs.flight import FlightAttempt


def _attempt(coord, txn, locks=(), verbs=(), outcome="commit", node=None):
    record = FlightAttempt(
        "pandora", coord if node is None else node, coord, txn, 1, 0.0
    )
    record.locks = [tuple(event) for event in locks]
    record.verbs = [list(entry) for entry in verbs]
    record.outcome = outcome
    record.open = outcome is None
    return record


def _write(ts, table, slot, phase="commit"):
    """A write_object verb entry carrying its region detail."""
    return ["write_object", 0, phase, ts, 5e-7, True, [table, slot, 2]]


class TestOwnershipIntervals:
    def test_disjoint_holders_are_clean(self):
        a = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 2.0)])
        b = _attempt(1, 0x20, locks=[("acquired", 0, 3, 3.0), ("released", 0, 3, 4.0)])
        report = analyze_attempts([a, b])
        assert report.races == []
        assert report.attempts == 2
        assert report.regions == 1

    def test_overlap_between_coordinators_is_double_grant(self):
        a = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 5.0)])
        b = _attempt(1, 0x20, locks=[("acquired", 0, 3, 2.0), ("released", 0, 3, 3.0)])
        report = analyze_attempts([a, b])
        assert [race.code for race in report.races] == ["RACE-DOUBLE-GRANT"]
        assert report.races[0].table == 0 and report.races[0].slot == 3

    def test_same_coordinator_overlap_is_not_a_race(self):
        """Sequential attempts of one coordinator can appear to overlap
        at identical timestamps; they are one thread of control."""
        a = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 3.0)])
        b = _attempt(0, 0x20, locks=[("acquired", 0, 3, 2.0), ("released", 0, 3, 4.0)])
        assert analyze_attempts([a, b]).races == []

    def test_steal_from_crashed_owner_is_sanctioned(self):
        """PILL's takeover: the owner crashed mid-attempt (no outcome,
        no release) and the thief marked its acquire as a steal."""
        dead = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0)], outcome=None)
        thief = _attempt(
            1,
            0x20,
            locks=[("steal", 0, 3, 2.0), ("acquired", 0, 3, 2.0)],
        )
        assert analyze_attempts([dead, thief]).races == []

    def test_regrant_after_recovery_release_is_sanctioned(self):
        """After recovery releases a dead coordinator's stray lock at
        the memory server, later grants are ordinary acquires — no
        steal marker, and no release in the dead owner's flight record.
        They must not count against the crashed owner's open interval
        (the failover-trace false-positive pattern)."""
        dead = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0)], outcome=None)
        later = _attempt(
            1,
            0x20,
            locks=[("acquired", 0, 3, 5.0), ("released", 0, 3, 6.0)],
        )
        assert analyze_attempts([dead, later]).races == []

    def test_steal_from_live_owner_is_flagged(self):
        """A steal overlapping an owner whose attempt *finished* is the
        symptom of a leak or a broken stray check — never sanctioned."""
        live = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0)], outcome="commit")
        thief = _attempt(
            1,
            0x20,
            locks=[("steal", 0, 3, 2.0), ("acquired", 0, 3, 2.0)],
        )
        report = analyze_attempts([live, thief])
        assert [race.code for race in report.races] == ["RACE-DOUBLE-GRANT"]


class TestWriteAttribution:
    def test_owner_writing_in_place_is_clean(self):
        a = _attempt(
            0,
            0x10,
            locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 4.0)],
            verbs=[_write(2.0, 0, 3)],
        )
        report = analyze_attempts([a])
        assert report.races == []
        assert report.writes_checked == 1

    def test_write_under_other_owner_is_conflict(self):
        owner = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 4.0)])
        intruder = _attempt(1, 0x20, verbs=[_write(2.0, 0, 3)])
        report = analyze_attempts([owner, intruder])
        assert [race.code for race in report.races] == ["RACE-CONFLICT"]

    def test_write_with_no_owner_is_unlocked_write(self):
        a = _attempt(0, 0x10, verbs=[_write(2.0, 0, 3)])
        report = analyze_attempts([a])
        assert [race.code for race in report.races] == ["RACE-UNLOCKED-WRITE"]

    def test_write_after_release_is_unlocked_write(self):
        a = _attempt(
            0,
            0x10,
            locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 2.0)],
            verbs=[_write(3.0, 0, 3)],
        )
        report = analyze_attempts([a])
        assert [race.code for race in report.races] == ["RACE-UNLOCKED-WRITE"]

    def test_verbs_without_region_detail_are_ignored(self):
        """Old-format traces (pre region-detail) carry 6-element verb
        entries; the detector skips them rather than guessing."""
        a = _attempt(
            0, 0x10, verbs=[["write_object", 0, "commit", 2.0, 5e-7, True]]
        )
        report = analyze_attempts([a])
        assert report.races == []
        assert report.writes_checked == 0


class TestSanitizerLockEvents:
    def test_steal_from_live_compute_is_flagged(self):
        events = [
            (1.0, 0, 3, "grant", 7, 7),
            (2.0, 0, 3, "steal", 9, 9),
        ]
        report = analyze_lock_events(events)
        assert [race.code for race in report.races] == ["RACE-DOUBLE-GRANT"]
        assert report.races[0].actors == ("c7", "c9")

    def test_steal_from_failed_compute_is_sanctioned(self):
        events = [
            (1.0, 0, 3, "grant", 7, 7),
            (2.0, 0, 3, "steal", 9, 9),
        ]
        assert analyze_lock_events(events, failed_ids={7}).races == []

    def test_release_clears_ownership(self):
        events = [
            (1.0, 0, 3, "grant", 7, 7),
            (2.0, 0, 3, "release", 7, 0),
            (3.0, 0, 3, "steal", 9, 9),
        ]
        assert analyze_lock_events(events).races == []


class TestTraceFiles:
    def _export(self, tmp_path, attempts, name="flight.jsonl"):
        path = tmp_path / name
        with open(path, "w") as handle:
            handle.write('{"ph": "meta", "protocol": "pandora"}\n')
            handle.write("not json at all\n")
            for record in attempts:
                handle.write(json.dumps(record.to_json()) + "\n")
        return str(path)

    def test_load_skips_non_flight_lines(self, tmp_path):
        a = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 2.0)])
        path = self._export(tmp_path, [a])
        loaded = load_flight_jsonl(path)
        assert len(loaded) == 1
        assert loaded[0].locks == [("acquired", 0, 3, 1.0), ("released", 0, 3, 2.0)]

    def test_analyze_traces_merges_files(self, tmp_path):
        owner = _attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 4.0)])
        intruder = _attempt(1, 0x20, verbs=[_write(2.0, 0, 3)])
        one = self._export(tmp_path, [owner, intruder], name="a.jsonl")
        two = self._export(tmp_path, [owner], name="b.jsonl")
        report = analyze_traces([one, two])
        assert report.attempts == 3
        assert len(report.traces) == 2
        assert [race.code for race in report.races] == ["RACE-CONFLICT"]
        assert report.races[0].trace == one

    def test_render_text_and_json(self, tmp_path):
        a = _attempt(0, 0x10, verbs=[_write(2.0, 0, 3)])
        report = analyze_attempts([a])
        text = render_text(report)
        assert "RACE-UNLOCKED-WRITE" in text and "races: 1" in text
        blob = json.loads(render_json(report))
        assert blob["count"] == 1
        assert blob["races"][0]["code"] == "RACE-UNLOCKED-WRITE"

    def test_cli_races_exit_codes(self, tmp_path, capsys):
        from repro.analysis.cli import main

        clean = self._export(
            tmp_path,
            [_attempt(0, 0x10, locks=[("acquired", 0, 3, 1.0), ("released", 0, 3, 2.0)])],
            name="clean.jsonl",
        )
        assert main(["races", clean]) == 0
        capsys.readouterr()
        racy = self._export(
            tmp_path, [_attempt(0, 0x10, verbs=[_write(2.0, 0, 3)])], name="racy.jsonl"
        )
        assert main(["races", racy]) == 1
        assert "RACE-UNLOCKED-WRITE" in capsys.readouterr().out


class TestLiveClusterIsClean:
    def test_steady_pandora_run_has_no_races(self):
        """End-to-end: a healthy seeded run's flight records pass the
        detector (the shipped-engine control for the mutant checks)."""
        from repro.bench.harness import run_steady_state
        from repro.obs import Obs
        from repro.workloads import MicroBenchmark

        obs = Obs(trace=False, flight=True)

        def _micro():
            return MicroBenchmark(num_keys=200, write_ratio=0.5)

        run_steady_state(
            _micro,
            "pandora",
            obs=obs,
            duration=4e-3,
            warmup=1e-3,
            coordinators_per_node=4,
            seed=11,
        )
        report = analyze_attempts(obs.flight.attempts)
        assert report.attempts > 0
        assert report.races == []
