"""Mutation testing: every seeded protocol bug must trip the sanitizer."""

import pytest

from repro.analysis.mutants import (
    MUTANTS,
    STATIC_MUTANTS,
    render_results,
    run_mutation_harness,
    run_static_mutants,
)


@pytest.fixture(scope="module")
def results():
    return run_mutation_harness()


@pytest.fixture(scope="module")
def static_results():
    return run_static_mutants()


def test_every_mutant_has_a_result(results):
    assert len(results) == len(MUTANTS) >= 3


@pytest.mark.parametrize("name", [spec.name for spec in MUTANTS])
def test_mutant_detected_with_clean_control(results, name):
    result = next(r for r in results if r.name == name)
    assert result.caught, (name, result.codes)
    assert result.control_clean, (name, result.control_codes)
    assert result.passed


def test_expected_codes_are_distinct_enough(results):
    """The harness exercises at least three distinct violation codes."""
    assert len({r.expected_code for r in results}) >= 3


def test_render_results_summarises(results):
    text = render_results(results)
    assert f"{len(results)}/{len(results)} mutants detected" in text


def test_race_detector_cross_checks_dynamic_mutants(results):
    """The lockset detector independently confirms the race-shaped
    mutants from the same runs' flight records, and sees no races in
    any control run."""
    with_race = [r for r in results if r.expected_race is not None]
    assert len(with_race) >= 2
    for result in with_race:
        assert result.race_caught, (result.name, result.race_codes)
    for result in results:
        assert not result.control_race_codes, (
            result.name,
            result.control_race_codes,
        )


def test_static_mutants_cover_the_targeted_rules():
    rules = {spec.expected_rule for spec in STATIC_MUTANTS}
    # Drop-a-finally-release, skip-an-ack-drain, and remove-a-crash-
    # point are the ISSUE-mandated minimum.
    assert {"PROTO001", "PROTO002", "PROTO004"} <= rules
    assert len(STATIC_MUTANTS) >= 3


@pytest.mark.parametrize("name", [spec.name for spec in STATIC_MUTANTS])
def test_static_mutant_flagged_with_clean_control(static_results, name):
    result = next(r for r in static_results if r.name == name)
    assert result.applied, f"{name}: mutation no longer matches the source"
    assert result.caught, (name, result.rules)
    assert result.control_clean, (name, result.control_rules)
    assert result.passed


def test_pr4_lock_leak_is_flagged_statically(static_results):
    """Acceptance criterion: re-introducing the PR 4 abort-path lock
    leak is caught by protolint as PROTO001 without any simulation."""
    result = next(r for r in static_results if r.name == "abort-allof-drain")
    assert "PROTO001" in result.rules


def test_render_includes_static_section(results, static_results):
    text = render_results(results, static_results)
    assert "static mutants flagged by protolint" in text


def test_cli_mutants_exit_zero():
    from repro.analysis.cli import main

    assert main(["mutants", "--skip-static"]) == 0
