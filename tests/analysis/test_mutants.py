"""Mutation testing: every seeded protocol bug must trip the sanitizer."""

import pytest

from repro.analysis.mutants import (
    MUTANTS,
    render_results,
    run_mutation_harness,
)


@pytest.fixture(scope="module")
def results():
    return run_mutation_harness()


def test_every_mutant_has_a_result(results):
    assert len(results) == len(MUTANTS) >= 3


@pytest.mark.parametrize("name", [spec.name for spec in MUTANTS])
def test_mutant_detected_with_clean_control(results, name):
    result = next(r for r in results if r.name == name)
    assert result.caught, (name, result.codes)
    assert result.control_clean, (name, result.control_codes)
    assert result.passed


def test_expected_codes_are_distinct_enough(results):
    """The harness exercises at least three distinct violation codes."""
    assert len({r.expected_code for r in results}) >= 3


def test_render_results_summarises(results):
    text = render_results(results)
    assert f"{len(results)}/{len(results)} mutants detected" in text


def test_cli_mutants_exit_zero():
    from repro.analysis.cli import main

    assert main(["mutants"]) == 0
