"""simlint: each rule fires on its fixture and stays quiet otherwise."""

import json
import os

import repro
from repro.analysis.simlint import (
    RULES,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestRules:
    def test_sim001_wall_clock(self):
        source = "import time\n\ndef f():\n    return time.time()\n"
        assert "SIM001" in rules_of(lint_source(source))

    def test_sim001_datetime_now(self):
        source = "import datetime\n\ndef f():\n    return datetime.datetime.now()\n"
        assert "SIM001" in rules_of(lint_source(source))

    def test_sim002_module_level_random(self):
        source = "import random\n\ndef f():\n    return random.random()\n"
        assert "SIM002" in rules_of(lint_source(source))

    def test_sim002_seeded_rng_ok(self):
        source = (
            "import random\n\n"
            "def f(rng: random.Random):\n"
            "    return rng.random()\n"
        )
        assert "SIM002" not in rules_of(lint_source(source))

    def test_sim003_set_iteration(self):
        source = "def f(xs):\n    for x in set(xs):\n        pass\n"
        assert "SIM003" in rules_of(lint_source(source))

    def test_sim003_sorted_set_ok(self):
        source = "def f(xs):\n    for x in sorted(set(xs)):\n        pass\n"
        assert "SIM003" not in rules_of(lint_source(source))

    def test_sim004_mutable_default(self):
        source = "def f(xs=[]):\n    return xs\n"
        assert "SIM004" in rules_of(lint_source(source))

    def test_sim005_bare_except(self):
        source = "def f():\n    try:\n        pass\n    except:\n        pass\n"
        assert "SIM005" in rules_of(lint_source(source))

    def test_sim006_none_default_without_optional(self):
        source = "def f(x: int = None):\n    return x\n"
        assert "SIM006" in rules_of(lint_source(source))

    def test_sim006_optional_ok(self):
        source = (
            "from typing import Optional\n\n"
            "def f(x: Optional[int] = None):\n"
            "    return x\n"
        )
        assert "SIM006" not in rules_of(lint_source(source))

    def test_sim007_print_outside_allowlist(self):
        source = "def f():\n    print('hello')\n"
        assert "SIM007" in rules_of(lint_source(source, path="engine.py"))

    def test_sim007_print_allowed_in_cli(self):
        source = "def f():\n    print('hello')\n"
        assert "SIM007" not in rules_of(lint_source(source, path="cli.py"))

    def test_sim007_print_allowed_in_report_renderers(self):
        source = "def f():\n    print('hello')\n"
        for path in (
            "src/repro/bench/report.py",
            "src/repro/obs/report.py",
            "src/repro/analysis/cli.py",
        ):
            assert "SIM007" not in rules_of(lint_source(source, path=path)), path

    def test_sim007_stray_report_module_is_not_exempt(self):
        # The allowlist matches path suffixes, not basenames: a
        # report.py outside the known renderer locations still flags.
        source = "def f():\n    print('hello')\n"
        assert "SIM007" in rules_of(lint_source(source, path="src/repro/engine/report.py"))
        # Nor does a file merely *ending* in "cli.py" sneak through.
        assert "SIM007" in rules_of(lint_source(source, path="src/repro/fastcli.py"))

    def test_sim008_entropy(self):
        source = "import os\n\ndef f():\n    return os.urandom(8)\n"
        assert "SIM008" in rules_of(lint_source(source))

    def test_clean_source_has_no_findings(self):
        source = (
            "from typing import Optional\n\n"
            "def f(x: Optional[int] = None):\n"
            "    return (x or 0) + 1\n"
        )
        assert lint_source(source) == []


class TestSuppression:
    def test_bare_disable_silences_line(self):
        source = "def f():\n    print('x')  # simlint: disable\n"
        assert lint_source(source, path="engine.py") == []

    def test_targeted_disable_silences_only_named_rule(self):
        source = "def f():\n    print('x')  # simlint: disable=SIM007\n"
        assert lint_source(source, path="engine.py") == []

    def test_disable_for_other_rule_keeps_finding(self):
        source = "def f():\n    print('x')  # simlint: disable=SIM001\n"
        assert "SIM007" in rules_of(lint_source(source, path="engine.py"))

    def test_comma_separated_codes_all_apply(self):
        source = (
            "def f():\n"
            "    print('x')  # simlint: disable=SIM001, SIM007\n"
        )
        assert lint_source(source, path="engine.py") == []

    def test_next_line_placement_is_not_honored(self):
        """Unlike protolint, simlint suppressions are same-line only —
        a marker on the preceding line does not cover the finding."""
        source = (
            "def f():\n"
            "    # simlint: disable=SIM007\n"
            "    print('x')\n"
        )
        assert "SIM007" in rules_of(lint_source(source, path="engine.py"))

    def test_unknown_rule_code_is_ignored_without_error(self):
        """simlint has no hygiene rule: an unknown code simply fails to
        match, so the finding survives (protolint's PROTO008 is the
        strict counterpart)."""
        source = "def f():\n    print('x')  # simlint: disable=SIM999\n"
        assert "SIM007" in rules_of(lint_source(source, path="engine.py"))


class TestSelectAndRendering:
    SOURCE = "def f(xs=[]):\n    print(xs)\n"

    def test_select_narrows_rules(self):
        findings = lint_source(self.SOURCE, path="engine.py", select={"SIM004"})
        assert rules_of(findings) == ["SIM004"]

    def test_render_text_mentions_rule_and_count(self):
        findings = lint_source(self.SOURCE, path="engine.py")
        text = render_text(findings)
        assert "SIM004" in text
        assert f"{len(findings)} finding(s)" in text

    def test_render_json_is_machine_readable(self):
        findings = lint_source(self.SOURCE, path="engine.py")
        payload = json.loads(render_json(findings))
        assert payload["tool"] == "simlint"
        assert payload["count"] == len(findings)
        assert {f["rule"] for f in payload["findings"]} <= set(RULES)

    def test_syntax_error_reported_not_raised(self):
        findings = lint_source("def f(:\n")
        assert rules_of(findings) == ["SIM000"]


class TestRepoIsClean:
    def test_whole_package_lints_clean(self):
        package_dir = os.path.dirname(repro.__file__)
        findings = lint_paths([package_dir])
        assert findings == [], render_text(findings)


class TestCliExitCodes:
    def test_clean_repo_exits_zero(self):
        from repro.analysis.cli import main

        assert main(["lint"]) == 0

    def test_violating_fixture_exits_nonzero(self, tmp_path, capsys):
        from repro.analysis.cli import main

        fixture = tmp_path / "dirty.py"
        fixture.write_text(
            "import time\n\ndef f(xs=[]):\n    return time.time()\n"
        )
        assert main(["lint", str(fixture)]) != 0
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert "SIM004" in out
