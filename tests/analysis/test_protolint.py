"""Tests for the protocol-discipline CFG analyzer (protolint).

The heavyweight rule checks are exercised end-to-end by the static
mutants in ``tests/analysis/test_mutants.py`` (each mutant re-lints
the real engine files through the overlay API). This file covers the
pieces around them: suppression parsing and hygiene (PROTO008), the
committed-baseline round trip, and the shipped tree's cleanliness —
the PR's acceptance criterion.
"""

from repro.analysis.protolint import (
    Finding,
    RULES,
    Suppression,
    apply_suppressions,
    filter_baseline,
    load_baseline,
    parse_suppressions,
    render_json,
    render_text,
    run_protolint,
    write_baseline,
)


def _finding(path="eng.py", line=10, rule="PROTO001", message="leak"):
    return Finding(path, line, 0, rule, message)


class TestSuppressionParsing:
    def test_bare_disable_means_all_rules(self):
        sups = parse_suppressions("eng.py", "x = 1  # protolint: disable\n")
        assert len(sups) == 1
        assert sups[0].rules is None
        assert sups[0].line == 1

    def test_targeted_disable_with_reason(self):
        source = "# protolint: disable=PROTO001 -- fenced hand-off\nraise\n"
        sups = parse_suppressions("eng.py", source)
        assert sups[0].rules == {"PROTO001"}
        assert sups[0].reason == "fenced hand-off"

    def test_comma_separated_codes(self):
        source = "y = 2  # protolint: disable=PROTO001, PROTO007\n"
        sups = parse_suppressions("eng.py", source)
        assert sups[0].rules == {"PROTO001", "PROTO007"}

    def test_no_marker_no_suppressions(self):
        assert parse_suppressions("eng.py", "x = 1  # a plain comment\n") == []


class TestSuppressionApplication:
    def test_same_line_placement_covers_finding(self):
        sups = [Suppression("eng.py", 10, {"PROTO001"}, "")]
        kept, hygiene = apply_suppressions([_finding(line=10)], sups)
        assert kept == []
        assert hygiene == []

    def test_next_line_placement_covers_finding(self):
        """A comment line directly above the flagged statement works."""
        sups = [Suppression("eng.py", 9, {"PROTO001"}, "")]
        kept, hygiene = apply_suppressions([_finding(line=10)], sups)
        assert kept == []
        assert hygiene == []

    def test_two_lines_above_does_not_cover(self):
        sups = [Suppression("eng.py", 8, {"PROTO001"}, "")]
        kept, hygiene = apply_suppressions([_finding(line=10)], sups)
        assert len(kept) == 1
        # ...and the suppression is now stale.
        assert any("stale" in f.message for f in hygiene)

    def test_wrong_rule_does_not_cover(self):
        sups = [Suppression("eng.py", 10, {"PROTO002"}, "")]
        kept, hygiene = apply_suppressions([_finding(line=10)], sups)
        assert len(kept) == 1
        assert any("stale" in f.message for f in hygiene)

    def test_bare_disable_covers_any_rule(self):
        sups = [Suppression("eng.py", 10, None, "")]
        kept, hygiene = apply_suppressions(
            [_finding(line=10, rule="PROTO005")], sups
        )
        assert kept == []
        assert hygiene == []

    def test_unknown_rule_code_is_proto008(self):
        sups = [Suppression("eng.py", 10, {"PROTO099"}, "")]
        kept, hygiene = apply_suppressions([], sups)
        unknown = [f for f in hygiene if "unknown rule code" in f.message]
        assert unknown and unknown[0].rule == "PROTO008"
        assert "PROTO099" in unknown[0].message

    def test_stale_suppression_is_proto008_with_reason(self):
        sups = [Suppression("eng.py", 50, {"PROTO001"}, "old hand-off")]
        kept, hygiene = apply_suppressions([], sups)
        stale = [f for f in hygiene if "stale" in f.message]
        assert stale and stale[0].rule == "PROTO008"
        assert "old hand-off" in stale[0].message

    def test_proto008_findings_are_not_suppressible(self):
        """A disable marker cannot silence the hygiene rule itself."""
        hygiene_finding = _finding(line=10, rule="PROTO008", message="stale")
        sups = [Suppression("eng.py", 10, None, "")]
        kept, hygiene = apply_suppressions([hygiene_finding], sups)
        assert hygiene_finding in kept

    def test_one_suppression_covers_both_anchor_lines(self):
        """Same marker silences a finding on its own line and the next
        without going stale."""
        sups = [Suppression("eng.py", 10, {"PROTO001"}, "")]
        findings = [_finding(line=10), _finding(line=11)]
        kept, hygiene = apply_suppressions(findings, sups)
        assert kept == []
        assert hygiene == []


class TestBaseline:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = [_finding(), _finding(line=20, rule="PROTO004")]
        write_baseline(findings, path)
        baseline = load_baseline(path)
        assert len(baseline) == 2
        assert filter_baseline(findings, baseline) == []

    def test_new_finding_survives_baseline(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([_finding()], path)
        baseline = load_baseline(path)
        fresh = _finding(line=99, message="new leak")
        assert filter_baseline([_finding(), fresh], baseline) == [fresh]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == set()

    def test_corrupt_baseline_is_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert load_baseline(str(path)) == set()


class TestShippedTree:
    def test_shipped_engines_lint_clean(self):
        """Acceptance criterion: zero unsuppressed violations on the
        shipped protocol + recovery engines."""
        assert run_protolint() == []

    def test_rules_table_documents_all_eight(self):
        assert {f"PROTO00{i}" for i in range(1, 9)} <= set(RULES)


class TestRendering:
    def test_render_text_clean(self):
        assert "no violations" in render_text([])

    def test_render_text_lists_findings(self):
        text = render_text([_finding()])
        assert "PROTO001" in text and "eng.py" in text

    def test_render_json_is_machine_readable(self):
        import json

        blob = json.loads(render_json([_finding()]))
        assert blob["findings"][0]["rule"] == "PROTO001"


class TestCli:
    def test_protolint_clean_exits_zero(self, capsys):
        from repro.analysis.cli import main

        assert main(["protolint"]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_protolint_json_format(self, capsys):
        import json

        from repro.analysis.cli import main

        assert main(["protolint", "--format", "json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert blob["findings"] == []
