"""PillSanitizer: raw-verb strict checks plus end-to-end clean runs."""

import pytest

from repro.analysis.sanitizer import (
    LOCK_OVERWRITE,
    PillSanitizer,
    SanitizerViolation,
    STEAL_LIVE_OWNER,
    UNLOCK_BY_NON_OWNER,
    WRITE_WITHOUT_LOCK,
)
from repro.memory.node import MemoryNode
from repro.protocol.locks import encode_lock


def make_node(node_id=0, slots=8):
    node = MemoryNode(node_id)
    node.create_table(0, slots, 8)
    for slot in range(slots):
        node.load_slot(0, slot, 0)
    return node


def make_strict(node, failed_ids=frozenset()):
    sanitizer = PillSanitizer({node.node_id: node}, failed_ids=failed_ids, strict=True)
    node.sanitizer = sanitizer
    return sanitizer


class TestStrictRawVerbs:
    def test_write_without_lock_raises(self):
        node = make_node()
        make_strict(node)
        with pytest.raises(SanitizerViolation) as excinfo:
            node.apply(1, "write_object", (0, 3, 2, 99, True))
        assert excinfo.value.code == WRITE_WITHOUT_LOCK

    def test_locked_write_by_owner_passes(self):
        node = make_node()
        word = encode_lock(1)
        make_strict(node)
        node.apply(1, "cas_lock", (0, 3, 0, word))
        # Non-advancing write (same version): needs the lock but no
        # logged undo record, so only the lock discipline is in play.
        node.apply(1, "write_object", (0, 3, 1, 99, True))
        node.apply(1, "write_lock", (0, 3, 0))

    def test_steal_from_live_owner_raises(self):
        node = make_node()
        make_strict(node)
        node.apply(5, "cas_lock", (0, 3, 0, encode_lock(5)))
        with pytest.raises(SanitizerViolation) as excinfo:
            node.apply(1, "cas_lock", (0, 3, encode_lock(5), encode_lock(1)))
        assert excinfo.value.code == STEAL_LIVE_OWNER

    def test_steal_from_failed_owner_allowed(self):
        node = make_node()
        make_strict(node, failed_ids=frozenset({5}))
        node.apply(5, "cas_lock", (0, 3, 0, encode_lock(5)))
        node.apply(1, "cas_lock", (0, 3, encode_lock(5), encode_lock(1)))

    def test_unlock_by_non_owner_raises(self):
        node = make_node()
        make_strict(node)
        node.apply(5, "cas_lock", (0, 3, 0, encode_lock(5)))
        with pytest.raises(SanitizerViolation) as excinfo:
            node.apply(1, "write_lock", (0, 3, 0))
        assert excinfo.value.code == UNLOCK_BY_NON_OWNER

    def test_lock_overwrite_raises(self):
        node = make_node()
        make_strict(node)
        node.apply(5, "cas_lock", (0, 3, 0, encode_lock(5)))
        with pytest.raises(SanitizerViolation) as excinfo:
            node.apply(1, "write_lock", (0, 3, encode_lock(1)))
        assert excinfo.value.code == LOCK_OVERWRITE

    def test_violation_carries_timeline(self):
        node = make_node()
        make_strict(node)
        with pytest.raises(SanitizerViolation) as excinfo:
            node.apply(1, "write_object", (0, 3, 2, 99, True))
        text = str(excinfo.value)
        assert WRITE_WITHOUT_LOCK in text
        assert "write_object" in text

    def test_collect_mode_records_without_raising(self):
        node = make_node()
        sanitizer = PillSanitizer({0: node}, strict=False)
        node.sanitizer = sanitizer
        node.apply(1, "write_object", (0, 3, 2, 99, True))
        assert [v.code for v in sanitizer.violations] == [WRITE_WITHOUT_LOCK]


class TestCleanProtocolRuns:
    def test_stock_pandora_scenarios_are_clean(self):
        from repro.analysis.mutants import MUTANTS

        for spec in MUTANTS:
            rig = spec.scenario(spec.control_factory)
            codes = [v.code for v in rig.sanitizer.violations]
            assert codes == [], (spec.name, codes)

    def test_sanitized_steady_state_is_clean(self):
        from repro.bench.harness import run_steady_state
        from repro.workloads import MicroBenchmark

        result = run_steady_state(
            lambda: MicroBenchmark(num_keys=2_000, write_ratio=1.0),
            "pandora",
            duration=8e-3,
            sanitize=True,
        )
        assert result.commits > 0

    def test_sanitized_compute_failover_is_clean(self):
        from repro.bench.harness import run_failover
        from repro.workloads import MicroBenchmark

        result = run_failover(
            lambda: MicroBenchmark(num_keys=2_000, write_ratio=1.0),
            "pandora",
            crash_kind="compute",
            crash_at=8e-3,
            duration=25e-3,
            sanitize=True,
        )
        assert result.pre_rate > 0

    def test_sanitized_memory_failover_is_clean(self):
        from repro.bench.harness import run_failover
        from repro.workloads import MicroBenchmark

        result = run_failover(
            lambda: MicroBenchmark(num_keys=2_000, write_ratio=1.0),
            "pandora",
            crash_kind="memory",
            crash_at=8e-3,
            duration=25e-3,
            sanitize=True,
        )
        assert result.pre_rate > 0

    def test_sanitized_litmus_family_is_clean(self):
        from repro.litmus import LITMUS_SUITE, LitmusRunner

        spec = LITMUS_SUITE()[0]
        runner = LitmusRunner(
            spec,
            protocol="pandora",
            rounds=6,
            crash_probability=0.5,
            seed=5,
            sanitize=True,
        )
        report = runner.run()
        assert report.passed
        assert runner.cluster.sanitizer.violations == []


class TestDisabledSanitizerIsInert:
    def test_runs_bit_identical_with_and_without_noop(self):
        """A build without ``sanitize=True`` must not change behaviour —
        the hooks are no-ops, so histories match a plain run exactly."""
        from repro.litmus.fuzzer import HistoryFuzzer

        plain = HistoryFuzzer(protocol="pandora", seed=9, duration=5e-3)
        sanitized = HistoryFuzzer(
            protocol="pandora", seed=9, duration=5e-3, sanitize=True
        )
        plain.run()
        sanitized.run()
        assert plain.history == sanitized.history
