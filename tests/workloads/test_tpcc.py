"""Tests for the TPC-C workload, including cross-table invariants."""

import random

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import TpcC
from repro.workloads.tpcc import (
    DISTRICTS_PER_WAREHOUSE,
    TABLE_DISTRICT,
    TABLE_NEW_ORDER,
    TABLE_ORDERS,
)


class TestSchema:
    def test_nine_tables(self):
        from repro.kvs.catalog import Catalog
        from repro.kvs.placement import Placement

        catalog = Catalog(Placement([0, 1], replication_degree=2))
        TpcC(warehouses=1, customers_per_district=10, items=50).create_schema(catalog)
        assert len(catalog.tables) == 9

    def test_invalid_warehouses(self):
        with pytest.raises(ValueError):
            TpcC(warehouses=0)

    def test_mix_is_write_heavy(self):
        workload = TpcC()
        writes = sum(
            weight
            for kind, weight in workload.mix.items()
            if kind in ("new_order", "payment", "delivery")
        )
        assert writes == pytest.approx(92)


def _cluster(until=0.02, crash=None, seed=13):
    workload = TpcC(warehouses=2, customers_per_district=50, items=300)
    cluster = Cluster(ClusterConfig(coordinators_per_node=4, seed=seed), workload)
    cluster.start()
    if crash is not None:
        cluster.crash_compute(0, at=crash)
    cluster.run(until=until)
    return workload, cluster


class TestEndToEnd:
    def test_commits_flow(self):
        _workload, cluster = _cluster()
        assert cluster.aggregate_stats().commits > 200

    def test_district_order_consistency(self):
        """Invariant: for each district, next_o_id - 1 equals the
        number of orders created (no order ids lost or duplicated)."""
        workload, cluster = _cluster(until=0.03)
        # Quiesce so no new-order is mid-commit.
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.032)
        catalog = cluster.catalog
        for w in range(workload.warehouses):
            for d in range(DISTRICTS_PER_WAREHOUSE):
                slot = catalog.slot_for(TABLE_DISTRICT, (w, d))
                primary = catalog.primary(TABLE_DISTRICT, slot)
                district = cluster.memory_nodes[primary].slot(TABLE_DISTRICT, slot)
                next_o_id = district.value["next_o_id"]
                # Orders wrap onto a ring; count the distinct o_ids
                # currently stored for this district.
                seen = set()
                for o_slot_index in range(workload.order_capacity):
                    key = (w, d, o_slot_index)
                    if key not in catalog._key_slots[TABLE_ORDERS]:
                        continue
                    slot_index = catalog.slot_for(TABLE_ORDERS, key)
                    node_id = catalog.primary(TABLE_ORDERS, slot_index)
                    entry = cluster.memory_nodes[node_id].slot(TABLE_ORDERS, slot_index)
                    if entry.present:
                        seen.add(entry.value["o_id"])
                assert all(o_id < next_o_id for o_id in seen)

    def test_new_order_rows_reference_orders(self):
        """Every pending new_order row has a matching orders row."""
        workload, cluster = _cluster(until=0.03)
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.032)
        catalog = cluster.catalog
        for key in catalog.known_keys(TABLE_NEW_ORDER):
            slot = catalog.slot_for(TABLE_NEW_ORDER, key)
            primary = catalog.primary(TABLE_NEW_ORDER, slot)
            if not cluster.memory_nodes[primary].slot(TABLE_NEW_ORDER, slot).present:
                continue
            order_slot = catalog.slot_for(TABLE_ORDERS, key)
            order_primary = catalog.primary(TABLE_ORDERS, order_slot)
            assert cluster.memory_nodes[order_primary].slot(
                TABLE_ORDERS, order_slot
            ).present

    def test_survives_compute_crash(self):
        _workload, cluster = _cluster(until=0.05, crash=0.01)
        assert len(cluster.recovery.records) == 1
        assert cluster.timeline.rate_between(0.03, 0.05) > 0

    def test_all_profiles_generated(self):
        workload = TpcC(warehouses=1, customers_per_district=10, items=50)
        rng = random.Random(7)
        kinds = set()
        for _ in range(400):
            logic = workload.next_transaction(rng)
            kinds.add(logic.__qualname__.split(".")[1].replace("_txn_", ""))
        assert kinds == {
            "new_order",
            "payment",
            "order_status",
            "delivery",
            "stock_level",
        }
