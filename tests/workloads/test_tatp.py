"""Tests for the TATP workload."""


import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import Tatp


class TestConfig:
    def test_invalid_subscribers(self):
        with pytest.raises(ValueError):
            Tatp(subscribers=0)

    def test_default_mix_is_80_percent_read(self):
        workload = Tatp()
        reads = sum(
            weight
            for kind, weight in workload.mix.items()
            if kind.startswith("get_")
        )
        assert reads == pytest.approx(80)


class TestSchema:
    def test_four_tables(self):
        from repro.kvs.catalog import Catalog
        from repro.kvs.placement import Placement

        catalog = Catalog(Placement([0, 1], replication_degree=2))
        Tatp(subscribers=100).create_schema(catalog)
        assert len(catalog.tables) == 4
        assert set(catalog.tables_by_name) == {
            "subscriber",
            "access_info",
            "special_facility",
            "call_forwarding",
        }


class TestEndToEnd:
    def _cluster(self, until=0.02, crash=None, seed=12):
        workload = Tatp(subscribers=1000)
        cluster = Cluster(ClusterConfig(coordinators_per_node=4, seed=seed), workload)
        cluster.start()
        if crash is not None:
            cluster.crash_compute(0, at=crash)
        cluster.run(until=until)
        return workload, cluster

    def test_commits_flow(self):
        _workload, cluster = self._cluster()
        stats = cluster.aggregate_stats()
        assert stats.commits > 300

    def test_insert_delete_cycle(self):
        """Forwarding rows inserted then deleted leave presence sane:
        every present call_forwarding row has an existing facility."""
        _workload, cluster = self._cluster(until=0.03)
        catalog = cluster.catalog
        cf = catalog.tables_by_name["call_forwarding"].table_id
        sf = catalog.tables_by_name["special_facility"].table_id
        for key in catalog.known_keys(cf):
            slot = catalog.slot_for(cf, key)
            primary = catalog.primary(cf, slot)
            if cluster.memory_nodes[primary].slot(cf, slot).present:
                sid, sf_type, _hour = key
                facility_slot = catalog.slot_for(sf, (sid, sf_type))
                facility_primary = catalog.primary(sf, facility_slot)
                assert cluster.memory_nodes[facility_primary].slot(
                    sf, facility_slot
                ).present

    def test_survives_compute_crash(self):
        _workload, cluster = self._cluster(until=0.05, crash=0.01)
        assert len(cluster.recovery.records) == 1
        # The surviving node keeps committing after recovery.
        post = cluster.timeline.rate_between(0.03, 0.05)
        assert post > 0
