"""Tests for the SmallBank workload, including money conservation."""

import random

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import SmallBank
from repro.workloads.smallbank import INITIAL_BALANCE


class TestConfig:
    def test_minimum_accounts(self):
        with pytest.raises(ValueError):
            SmallBank(accounts=1)

    def test_hot_accounts_bounds(self):
        with pytest.raises(ValueError):
            SmallBank(accounts=10, hot_accounts=11)

    def test_conserving_mix(self):
        workload = SmallBank(accounts=10, conserving_only=True)
        assert set(workload.mix) == {"send_payment", "amalgamate", "balance"}


class TestMixGeneration:
    def test_all_profiles_generated(self):
        workload = SmallBank(accounts=100)
        rng = random.Random(4)
        kinds = set()
        for _ in range(500):
            logic = workload.next_transaction(rng)
            kinds.add(logic.__qualname__.split(".")[1].replace("_txn_", ""))
        # All six profiles appear over 500 draws.
        assert len(kinds) == 6


class TestEndToEnd:
    def _cluster(self, conserving, until=0.02, crash=None):
        workload = SmallBank(accounts=500, conserving_only=conserving)
        cluster = Cluster(
            ClusterConfig(coordinators_per_node=4, seed=10), workload
        )
        cluster.start()
        if crash is not None:
            cluster.crash_compute(0, at=crash)
        cluster.run(until=until)
        return workload, cluster

    def test_commits_flow(self):
        _workload, cluster = self._cluster(conserving=False)
        assert cluster.aggregate_stats().commits > 200

    def test_money_conserved_without_failures(self):
        workload, cluster = self._cluster(conserving=True)
        total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
        assert total == 2 * 500 * INITIAL_BALANCE

    def test_money_conserved_across_compute_crash(self):
        """The headline end-to-end invariant: a compute crash plus
        recovery must not create or destroy money."""
        workload, cluster = self._cluster(conserving=True, until=0.05, crash=0.01)
        assert len(cluster.recovery.records) == 1
        total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
        assert total == 2 * 500 * INITIAL_BALANCE

    def test_replicas_converge_after_crash(self):
        """All replicas of every account agree once recovery is done
        and in-flight transactions finished."""
        workload, cluster = self._cluster(conserving=True, until=0.05, crash=0.01)
        # Pause everything so no transaction is mid-commit.
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.052)
        catalog = cluster.catalog
        for table_id in (0, 1):
            for account in range(500):
                slot = catalog.slot_for(table_id, account)
                values = {
                    cluster.memory_nodes[n].slot(table_id, slot).value
                    for n in catalog.replicas(table_id, slot)
                }
                assert len(values) == 1, f"replica divergence at {table_id}/{account}"
