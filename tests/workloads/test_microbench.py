"""Tests for the microbenchmark workload."""

import random

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


class TestConfig:
    def test_invalid_write_ratio(self):
        with pytest.raises(ValueError):
            MicroBenchmark(write_ratio=1.5)

    def test_invalid_hot_keys(self):
        with pytest.raises(ValueError):
            MicroBenchmark(num_keys=10, hot_keys=20)

    def test_invalid_ops(self):
        with pytest.raises(ValueError):
            MicroBenchmark(ops_per_txn=0)


class TestTransactionShape:
    def test_pure_writes_are_plain_logic(self):
        workload = MicroBenchmark(num_keys=100, write_ratio=1.0, rmw=False)
        logic = workload.next_transaction(random.Random(1))
        # Pure blind-write logic is a plain function, not a generator fn.
        assert not hasattr(logic(_FakeTx()), "__next__")

    def test_hot_keys_confine_access(self):
        workload = MicroBenchmark(num_keys=1000, hot_keys=10, write_ratio=1.0)
        rng = random.Random(2)
        for _ in range(50):
            assert workload._sample_key(rng) < 10

    def test_zipf_mode(self):
        workload = MicroBenchmark(num_keys=100, zipf_theta=0.99)
        rng = random.Random(3)
        keys = [workload._sample_key(rng) for _ in range(200)]
        assert all(0 <= key < 100 for key in keys)


class _FakeTx:
    def __init__(self):
        self.writes = []

    def write(self, table, key, value):
        self.writes.append((table, key, value))


class TestEndToEnd:
    def _run(self, **kwargs):
        workload = MicroBenchmark(num_keys=500, **kwargs)
        cluster = Cluster(
            ClusterConfig(coordinators_per_node=2, seed=9), workload
        )
        cluster.start()
        cluster.run(until=0.01)
        return cluster

    def test_write_only_commits(self):
        cluster = self._run(write_ratio=1.0, rmw=False)
        assert cluster.aggregate_stats().commits > 100

    def test_read_only_commits(self):
        cluster = self._run(write_ratio=0.0)
        stats = cluster.aggregate_stats()
        assert stats.commits > 100

    def test_rmw_increments_survive(self):
        cluster = self._run(write_ratio=1.0, rmw=True, hot_keys=20)
        # Quiesce so no transaction is mid-commit (applied but not
        # yet acked) when we audit.
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=cluster.sim.now + 2e-3)
        stats = cluster.aggregate_stats()
        # Every committed RMW adds exactly ops_per_txn increments.
        total = 0
        catalog = cluster.catalog
        for key in range(500):
            slot = catalog.slot_for(0, key)
            primary = catalog.primary(0, slot)
            total += cluster.memory_nodes[primary].slot(0, slot).value
        assert total == stats.commits * 2  # ops_per_txn defaults to 2
