"""Flight recorder: attribution correctness and zero perturbation.

Unit tests drive :class:`FlightRecorder` directly (ambient-focus guard,
first-close-wins sealing, completion tokens); integration tests check
that a seeded run's flight records reconcile exactly with the harness
outcome and that enabling the recorder never changes a seeded run.
"""

import pytest

from repro.bench.harness import run_steady_state
from repro.obs import Obs
from repro.obs.flight import UNSIGNALED, FlightRecorder, NullFlightRecorder
from repro.workloads import SmallBank


def _smallbank():
    return SmallBank(accounts=1_000)


STEADY = dict(duration=6e-3, warmup=2e-3, coordinators_per_node=4, seed=11)


class TestRecorderUnit:
    def test_begin_focus_post_attributes_to_current_attempt(self):
        recorder = FlightRecorder()
        record = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.focus(record, "lock")
        token = recorder.on_post("cas_lock", 2, 5, 0.002)
        assert token is not None
        assert record.verbs == [["cas_lock", 5, "lock", 0.002, UNSIGNALED, True]]
        recorder.on_complete(token, 3e-6, True)
        assert record.verbs[0][4] == 3e-6
        assert not recorder.unattributed

    def test_post_from_other_compute_node_is_unattributed(self):
        recorder = FlightRecorder()
        record = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.focus(record, "lock")
        assert recorder.on_post("read_object", 3, 5, 0.002) is None
        assert recorder.unattributed == {"read_object": 1}
        assert record.verbs == []

    def test_post_after_close_is_unattributed(self):
        recorder = FlightRecorder()
        record = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.close(record, "commit", 0.002, writes=1)
        assert recorder.on_post("write_log", 2, 5, 0.003) is None
        assert recorder.unattributed == {"write_log": 1}

    def test_first_close_wins(self):
        recorder = FlightRecorder()
        record = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.close(record, "commit:interrupted", 0.002, writes=3)
        recorder.close(record, "interrupted", 0.005, writes=0)
        assert record.outcome == "commit:interrupted"
        assert record.end == 0.002
        assert record.writes == 3

    def test_focus_on_closed_record_does_not_steal_attribution(self):
        recorder = FlightRecorder()
        dead = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.close(dead, "abort:lock_conflict", 0.002)
        live = recorder.begin("pandora", 2, 8, 43, 1, 0.003)
        recorder.focus(dead, "commit")  # stale focus from a killed attempt
        token = recorder.on_post("write_object", 2, 5, 0.004)
        assert token is not None
        assert live.verbs and not dead.verbs

    def test_lock_events_recorded_in_order(self):
        recorder = FlightRecorder()
        record = recorder.begin("pandora", 2, 7, 42, 1, 0.001)
        recorder.on_lock(record, "conflict", 3, 17, 0.002)
        recorder.on_lock(record, "steal", 3, 17, 0.003)
        assert record.locks == [("conflict", 3, 17, 0.002), ("steal", 3, 17, 0.003)]

    def test_null_recorder_is_inert(self):
        null = NullFlightRecorder()
        assert null.begin("pandora", 2, 7, 42, 1, 0.0) is None
        assert null.on_post("read_object", 2, 5, 0.0) is None
        assert len(null) == 0 and null.closed() == [] and null.committed() == []


class TestFlightParity:
    def test_flight_enabled_run_is_bit_identical(self):
        base = run_steady_state(_smallbank, "pandora", **STEADY)
        flown = run_steady_state(
            _smallbank, "pandora", obs=Obs(trace=False, flight=True), **STEADY
        )
        # Dataclass equality covers commits, aborts, throughput, and
        # latency percentiles — the full observable outcome.
        assert flown == base

    def test_flight_disabled_obs_records_nothing(self):
        obs = Obs(trace=False)
        run_steady_state(_smallbank, "pandora", obs=obs, **STEADY)
        assert len(obs.flight) == 0
        assert not obs.flight.attempts


class TestFlightContent:
    @pytest.fixture(scope="class")
    def flown_steady(self):
        obs = Obs(trace=True, flight=True)
        result = run_steady_state(_smallbank, "pandora", obs=obs, **STEADY)
        return obs, result

    def test_committed_records_match_harness_commits(self, flown_steady):
        obs, result = flown_steady
        assert len(obs.flight.committed()) == result.commits

    def test_committed_phases_cover_the_protocol_pipeline(self, flown_steady):
        obs, _result = flown_steady
        record = obs.flight.committed()[0]
        names = [name for name, _start, _end in record.phases]
        assert names == ["execute", "lock", "validate", "log", "commit", "unlock"]
        for _name, start, end in record.phases:
            assert record.start <= start <= end <= record.end

    def test_pandora_logs_f_plus_one_per_committed_write_txn(self, flown_steady):
        obs, _result = flown_steady
        # default_config pins replication_degree=2 => f+1 == 2 log servers.
        log_servers = obs.run_meta["log_servers"]
        for record in obs.flight.committed():
            expected = log_servers if record.writes else 0
            assert record.log_writes() == expected, (record.txn_id, record.attempt)

    def test_signaled_verbs_carry_completion_latency(self, flown_steady):
        obs, _result = flown_steady
        record = obs.flight.committed()[0]
        signaled = [entry for entry in record.verbs if entry[4] != UNSIGNALED]
        assert signaled, "no signaled verbs recorded"
        for _kind, _node, _phase, _ts, latency, ok in (
            entry[:6] for entry in signaled
        ):
            assert latency > 0 and ok

    def test_unattributed_is_only_system_traffic(self, flown_steady):
        obs, _result = flown_steady
        # Coordinator log-region registration is control-plane traffic
        # posted before any attempt opens; nothing else may leak.
        assert set(obs.flight.unattributed) <= {"ctrl_register_log_region"}


class TestBoundedMemory:
    def test_max_flights_evicts_oldest_closed_attempts(self):
        recorder = FlightRecorder(max_flights=10)
        for txn in range(100):
            record = recorder.begin("pandora", 0, 1, txn, 1, txn * 1e-6)
            recorder.close(record, "commit", txn * 1e-6 + 5e-7)
        assert len(recorder.attempts) == 10
        assert recorder.evicted == 90
        # The survivors are the newest records, in order.
        assert [record.txn_id for record in recorder.attempts] == list(range(90, 100))

    def test_open_attempts_are_never_evicted(self):
        recorder = FlightRecorder(max_flights=5)
        kept_open = [
            recorder.begin("pandora", 0, 1, txn, 1, txn * 1e-6) for txn in range(20)
        ]
        # Nothing is closed, so nothing may be dropped — a crash report
        # must still see what was killed mid-air.
        assert len(recorder.attempts) == 20
        assert recorder.evicted == 0
        for record in kept_open:
            recorder.close(record, "abort:crash", 1e-3)
        recorder.begin("pandora", 0, 1, 99, 1, 2e-3)
        assert len(recorder.attempts) == 5

    def test_max_flights_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_flights=0)
        assert NullFlightRecorder().max_flights is None

    def test_bounded_recorder_survives_a_10x_run(self):
        # The regression this bound exists for: a long traffic run must
        # not accumulate one resident record per attempt. Same seeded
        # workload, 10x the duration, yet residency stays at the cap
        # and the run outcome is untouched by eviction.
        long_steady = dict(STEADY, duration=10 * STEADY["duration"])
        base = run_steady_state(_smallbank, "pandora", **long_steady)
        obs = Obs(trace=False, flight=True, max_flights=64)
        bounded = run_steady_state(_smallbank, "pandora", obs=obs, **long_steady)
        assert bounded == base
        assert len(obs.flight.attempts) <= 64
        assert obs.flight.evicted > 1_000
        assert obs.flight.evicted + len(obs.flight.attempts) >= base.commits
