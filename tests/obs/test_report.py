"""Report layer: JSONL round trip, §4 claim check, renderers.

Runs small seeded benchmarks per protocol, exports the observability
stream, and checks that the derived tables reproduce the paper's
logging-cost claim and that the renderers emit the expected sections.
"""

import pytest

from repro.bench.harness import run_failover, run_steady_state
from repro.obs import Obs
from repro.obs.report import (
    ABORT_CATEGORIES,
    abort_attribution,
    check_log_write_claim,
    from_obs,
    load_jsonl,
    phase_latency_rows,
    recovery_timelines,
    render_html,
    render_terminal,
    verb_accounting_rows,
)
from repro.workloads import MicroBenchmark, SmallBank

STEADY = dict(duration=6e-3, warmup=2e-3, coordinators_per_node=4, seed=11)


def _micro():
    return MicroBenchmark(num_keys=10_000, write_ratio=0.5)


def _run(protocol):
    obs = Obs(trace=True, flight=True)
    result = run_steady_state(_micro, protocol, obs=obs, **STEADY)
    return obs, result


class TestClaimCheck:
    @pytest.mark.parametrize("protocol", ["pandora", "ford", "tradlog"])
    def test_log_write_claim_holds(self, protocol):
        obs, result = _run(protocol)
        (claim,) = check_log_write_claim(from_obs(obs))
        assert claim["protocol"] == protocol
        assert claim["checked"] == result.commits
        assert claim["ok"], claim["detail"]
        assert claim["violations"] == 0

    def test_pandora_cost_is_constant_while_others_scale(self):
        # write_ratio=0.5 => committed txns mix 0 and 2 writes; mean
        # writes land strictly between, so a per-object cost shows up
        # as mean_log_writes > f+1 * P(write txn).
        by_protocol = {}
        for protocol in ("pandora", "ford", "tradlog"):
            obs, _result = _run(protocol)
            (claim,) = check_log_write_claim(from_obs(obs))
            by_protocol[protocol] = claim
        # Pandora pays f+1 == 2 per write txn; tradlog pays (f+1) x
        # (writes+1) == 6 per write txn; ford pays R x writes == 4.
        assert by_protocol["pandora"]["mean_log_writes"] < (
            by_protocol["ford"]["mean_log_writes"]
        )
        assert by_protocol["ford"]["mean_log_writes"] < (
            by_protocol["tradlog"]["mean_log_writes"]
        )


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def exported(self, tmp_path_factory):
        obs, result = _run("pandora")
        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        obs.export_jsonl(str(path))
        return obs, result, path

    def test_jsonl_reload_preserves_flights_and_meta(self, exported):
        obs, _result, path = exported
        run = load_jsonl(str(path))
        assert len(run.flights) == len(obs.flight.attempts)
        assert run.meta["protocol"] == "pandora"
        assert run.meta["log_servers"] == obs.run_meta["log_servers"]
        original = obs.flight.attempts[0]
        reloaded = run.flights[0]
        assert reloaded.to_json() == original.to_json()

    def test_derivations_identical_live_and_reloaded(self, exported):
        obs, _result, path = exported
        live = from_obs(obs)
        reloaded = load_jsonl(str(path))
        assert phase_latency_rows(live) == phase_latency_rows(reloaded)
        assert verb_accounting_rows(live) == verb_accounting_rows(reloaded)
        assert check_log_write_claim(live) == check_log_write_claim(reloaded)


class TestAttribution:
    def test_abort_rows_use_known_categories(self):
        obs, result = _run("pandora")
        rows = abort_attribution(from_obs(obs))
        categories = set(ABORT_CATEGORIES.values()) | {"open", "other", "fault"}
        assert rows, "seeded run should produce at least one abort"
        total = 0
        for _protocol, category, _outcome, count in rows:
            assert category in categories
            total += count
        # Every non-committed attempt is attributed somewhere.
        assert total == len(obs.flight.attempts) - result.commits


class TestRecoveryTimeline:
    def test_failover_produces_ordered_recovery_steps(self):
        obs = Obs(trace=True, flight=True)
        run_failover(
            lambda: SmallBank(accounts=1_000),
            "pandora",
            crash_kind="compute",
            crash_at=10e-3,
            duration=40e-3,
            obs=obs,
            coordinators_per_node=4,
            seed=11,
        )
        timelines = recovery_timelines(from_obs(obs))
        assert timelines, "compute crash should yield a recovery timeline"
        _node, steps = timelines[0]
        names = [name for name, _start, _duration in steps]
        assert names[0] == "heartbeat-miss"
        assert {"link-revoke", "log-region-read", "truncate"} <= set(names)
        starts = [start for _name, start, _duration in steps]
        assert starts == sorted(starts)


class TestRenderers:
    @pytest.fixture(scope="class")
    def run_data(self):
        obs, _result = _run("pandora")
        return from_obs(obs)

    def test_terminal_report_has_all_sections(self, run_data):
        text = render_terminal([run_data])
        for marker in (
            "phase latency (exact percentiles)",
            "round-trip / verb accounting (committed txns)",
            "logging claim check (paper §4: f+1 per txn vs per object)",
            "abort attribution",
            "OK",
        ):
            assert marker in text, marker

    def test_html_report_is_self_contained(self, run_data):
        html = render_html([run_data])
        assert html.startswith("<!DOCTYPE html>")
        for marker in (
            "<style>",
            "Phase latency (exact percentiles)",
            "Logging claim check",
            "Abort attribution",
            'class="ok"',
        ):
            assert marker in html, marker
        # Self-contained: no external fetches.
        assert "http://" not in html and "https://" not in html
