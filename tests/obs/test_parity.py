"""Integration tests: observability must observe, never perturb.

The tracer and metrics are purely passive (explicit timestamps, list
appends, no simulation events), so a seeded run must produce identical
outcomes with observability enabled or disabled — and the spans it
records must decompose the latencies the harness reports.
"""

import pytest

from repro.bench.harness import run_failover, run_steady_state
from repro.obs import TXN_PHASES, Obs
from repro.workloads import SmallBank


def _smallbank():
    return SmallBank(accounts=1_000)


STEADY = dict(duration=6e-3, warmup=2e-3, coordinators_per_node=4, seed=11)


class TestParity:
    def test_steady_run_identical_with_and_without_obs(self):
        base = run_steady_state(_smallbank, "pandora", **STEADY)
        traced = run_steady_state(
            _smallbank, "pandora", obs=Obs(trace=True), **STEADY
        )
        # Dataclass equality covers commits, aborts, throughput, and
        # latency percentiles — the full observable outcome.
        assert traced == base

    def test_metrics_only_mode_is_also_inert(self):
        base = run_steady_state(_smallbank, "pandora", **STEADY)
        measured = run_steady_state(
            _smallbank, "pandora", obs=Obs(trace=False), **STEADY
        )
        assert measured == base


class TestObsContent:
    @pytest.fixture(scope="class")
    def traced_steady(self):
        obs = Obs(trace=True)
        result = run_steady_state(_smallbank, "pandora", obs=obs, **STEADY)
        return obs, result

    def test_outcome_counters_match_harness_stats(self, traced_steady):
        obs, result = traced_steady
        assert obs.commit_count() == result.commits
        aborts = sum(
            counter.value
            for (_proto, outcome), counter in obs._outcome_counters.items()
            if outcome.startswith("abort:")
        )
        assert aborts == result.aborts

    def test_phase_histograms_populated(self, traced_steady):
        obs, result = traced_steady
        for phase in ("execute", "lock", "validate", "log", "commit", "unlock"):
            histogram = obs.phase_histogram("pandora", phase)
            assert histogram.count >= result.commits, phase
        assert set(TXN_PHASES) >= {
            phase for (_proto, phase) in obs._phase_hist
        }

    def test_attempt_spans_match_outcomes(self, traced_steady):
        obs, result = traced_steady
        commits = [
            span for span in obs.tracer.spans("txn")
            if span[2] == "attempt:commit"
        ]
        assert len(commits) == result.commits

    def test_verb_counters_and_report(self, traced_steady):
        obs, result = traced_steady
        snapshot = obs.metrics.snapshot()
        read_counters = [
            value for key, value in snapshot["counters"].items()
            if key.startswith("rdma.verbs{")
        ]
        assert sum(read_counters) > 0
        report = obs.report(result.commits)
        assert "RDMA verbs" in report
        assert "transaction phase latency" in report
        assert "per commit" in report

    def test_kernel_gauges_sampled(self, traced_steady):
        obs, _result = traced_steady
        assert obs.metrics.gauge("kernel.processed_events").value > 0
        assert obs.metrics.gauge("kernel.now").value == pytest.approx(8e-3)


class TestRecoveryDecomposition:
    @pytest.fixture(scope="class")
    def traced_failover(self):
        obs = Obs(trace=True)
        result = run_failover(
            _smallbank,
            "pandora",
            crash_kind="compute",
            crash_at=10e-3,
            duration=40e-3,
            obs=obs,
            coordinators_per_node=4,
            seed=11,
        )
        return obs, result

    def test_recovery_spans_tile_total_latency(self, traced_failover):
        obs, result = traced_failover
        record = result.recovery_records[0]
        spans = obs.tracer.spans("recovery")
        names = {span[2] for span in spans}
        assert {"heartbeat-miss", "link-revoke", "log-region-read",
                "truncate", "stray-lock-notify"} <= names
        # The post-detection spans tile [detected_at, finished_at]: their
        # summed durations must reproduce the record's total latency.
        inner = [span for span in spans if span[2] != "heartbeat-miss"]
        total = sum(span[4] for span in inner)
        assert total == pytest.approx(record.total_latency, rel=1e-6)

    def test_heartbeat_miss_ends_at_detection(self, traced_failover):
        obs, result = traced_failover
        record = result.recovery_records[0]
        (miss,) = obs.tracer.spans("recovery")[:1]
        assert miss[2] == "heartbeat-miss"
        assert miss[3] + miss[4] == pytest.approx(record.detected_at)

    def test_recovery_metrics_match_record(self, traced_failover):
        obs, result = traced_failover
        record = result.recovery_records[0]
        metrics = obs.metrics
        assert metrics.counter("recovery.compute_recoveries").value == 1
        assert metrics.counter("recovery.rolled_forward").value == record.rolled_forward
        assert metrics.counter("recovery.rolled_back").value == record.rolled_back
        latency = metrics.histogram("recovery.log_recovery_latency")
        assert latency.count == 1
        assert latency.stats.max == pytest.approx(record.log_recovery_latency)
