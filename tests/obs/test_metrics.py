"""Unit tests for the labeled metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    MetricsRegistry,
    render_rows,
)


class TestLabeledInstances:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        first = registry.counter("rdma.verbs", verb="read", node=0)
        second = registry.counter("rdma.verbs", node=0, verb="read")
        assert first is second  # label order must not matter
        first.inc()
        first.inc(3)
        assert second.value == 4

    def test_distinct_labels_distinct_instances(self):
        registry = MetricsRegistry()
        read = registry.counter("rdma.verbs", verb="read")
        write = registry.counter("rdma.verbs", verb="write")
        assert read is not write
        read.inc()
        assert write.value == 0

    def test_gauge_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("kernel.now")
        gauge.set(1.0)
        gauge.set(2.5)
        assert registry.gauge("kernel.now").value == 2.5

    def test_histogram_records_and_reports(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", min_value=1e-6, max_value=1.0)
        for value in (1e-5, 2e-5, 3e-5):
            histogram.add(value)
        assert histogram.count == 3
        assert histogram.percentile(50) == pytest.approx(2e-5, rel=0.2)

    def test_one_shot_helpers(self):
        registry = MetricsRegistry()
        registry.inc("recovery.rolled_forward", 4)
        registry.observe("recovery.latency", 1e-4)
        assert registry.counter("recovery.rolled_forward").value == 4
        assert registry.histogram("recovery.latency").count == 1


class TestMergeAndSnapshot:
    def test_merge_adds_counters_and_merges_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("txn.outcome", 5, outcome="commit")
        b.inc("txn.outcome", 7, outcome="commit")
        b.inc("txn.outcome", 2, outcome="abort")
        a.observe("lat", 1e-3)
        b.observe("lat", 3e-3)
        b.gauge("kernel.now").set(9.0)
        a.merge(b)
        assert a.counter("txn.outcome", outcome="commit").value == 12
        assert a.counter("txn.outcome", outcome="abort").value == 2
        assert a.histogram("lat").count == 2
        assert a.gauge("kernel.now").value == 9.0

    def test_merge_into_empty_registry(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.inc("c", 3, node=1)
        a.merge(b)
        assert a.counter("c", node=1).value == 3
        # The merge copies values, not instances.
        b.counter("c", node=1).inc()
        assert a.counter("c", node=1).value == 3

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("rdma.verbs", 2, verb="read", node=0)
        registry.gauge("kernel.now").set(1.5)
        registry.observe("lat", 2e-4)
        snapshot = registry.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["counters"]["rdma.verbs{node=0,verb=read}"] == 2
        assert round_tripped["gauges"]["kernel.now"] == 1.5
        assert round_tripped["histograms"]["lat"]["count"] == 1

    def test_select_filters_by_prefix(self):
        registry = MetricsRegistry()
        registry.inc("recovery.rolled_forward")
        registry.inc("fd.detections")
        registry.observe("recovery.latency", 1e-4)
        names = [key[0] for key, _ in registry.select("recovery.")]
        assert names == ["recovery.latency", "recovery.rolled_forward"]


class TestRendering:
    def test_render_table_lists_every_metric(self):
        registry = MetricsRegistry()
        registry.inc("rdma.verbs", 3, verb="read")
        registry.gauge("kernel.now").set(0.01)
        registry.observe("lat", 1e-4)
        table = registry.render_table("run metrics")
        assert "run metrics" in table
        assert "rdma.verbs{verb=read}" in table
        assert "kernel.now" in table
        assert "n=1" in table

    def test_render_rows_alignment(self):
        table = render_rows(["a", "bb"], [["x", 1], ["longer", 22]], title="t")
        lines = table.splitlines()
        assert lines[0] == "t"
        assert all(len(line) == len(lines[2]) for line in lines[2:4])


class TestNullMetrics:
    def test_null_instances_swallow_everything(self):
        NULL_COUNTER.inc()
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.add(1.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_HISTOGRAM.percentile(99) == 0.0

    def test_null_histogram_validates_percentile_range(self):
        # Parity with Histogram: out-of-range queries are caller bugs
        # and must not pass silently on the disabled path.
        with pytest.raises(ValueError):
            NULL_HISTOGRAM.percentile(101)
        with pytest.raises(ValueError):
            NULL_HISTOGRAM.percentile(-1)


class TestPrometheusRendering:
    def test_type_lines_and_name_sanitization(self):
        registry = MetricsRegistry()
        registry.inc("rdma.verbs", 3, verb="read")
        registry.gauge("kernel.now").set(0.25)
        text = registry.render_prometheus()
        assert "# TYPE rdma_verbs counter" in text
        assert 'rdma_verbs{verb="read"} 3' in text
        assert "# TYPE kernel_now gauge" in text
        assert "kernel_now 0.25" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.inc("c", 1, path='a\\b"c\nd')
        text = registry.render_prometheus()
        assert 'c{path="a\\\\b\\"c\\nd"} 1' in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", min_value=1e-6, max_value=1.0)
        for value in (2e-6, 2e-6, 5e-4, 0.1):
            hist.add(value)
        text = registry.render_prometheus()
        lines = text.splitlines()
        assert "# TYPE lat histogram" in lines
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith("lat_bucket")
        ]
        # Cumulative: monotonically non-decreasing, ending at the total.
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 4
        assert 'lat_bucket{le="+Inf"} 4' in lines
        assert "lat_count 4" in lines
        (sum_line,) = [line for line in lines if line.startswith("lat_sum")]
        assert float(sum_line.split(" ")[1]) == pytest.approx(2e-6 + 2e-6 + 5e-4 + 0.1)

    def test_histogram_with_labels_keeps_le_with_other_labels(self):
        registry = MetricsRegistry()
        registry.observe("txn.lat", 1e-4, protocol="pandora")
        text = registry.render_prometheus()
        assert 'txn_lat_bucket{protocol="pandora",le="+Inf"} 1' in text
        assert 'txn_lat_count{protocol="pandora"} 1' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""


class TestRollingWindow:
    def test_eviction_is_time_based(self):
        from repro.obs.metrics import RollingWindow

        window = RollingWindow(1e-3)
        window.add(0.0, 1.0)
        window.add(0.5e-3, 2.0)
        window.add(1.2e-3, 3.0)
        assert window.count(1.2e-3) == 2  # the t=0 sample aged out
        assert window.mean(1.2e-3) == pytest.approx(2.5)
        assert window.count(10.0) == 0
        assert window.mean(10.0) == 0.0

    def test_percentiles_are_exact_over_the_window(self):
        from repro.obs.metrics import RollingWindow

        window = RollingWindow(1.0)
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            window.add(0.0, value)
        assert window.percentile(0.0, 0) == 1.0
        assert window.percentile(0.0, 50) == 3.0
        assert window.percentile(0.0, 99) == 5.0
        assert window.percentile(0.0, 100) == 5.0

    def test_percentile_validation_and_empty_window(self):
        from repro.obs.metrics import RollingWindow

        window = RollingWindow(1.0)
        assert window.percentile(0.0, 99) == 0.0
        with pytest.raises(ValueError):
            window.percentile(0.0, 101)
        with pytest.raises(ValueError):
            RollingWindow(0.0)
