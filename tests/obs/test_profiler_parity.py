"""The kernel profiler must measure, never perturb.

Profiling reads the wall clock around dispatch and subsystem
boundaries; none of those reads may feed back into simulated
behaviour. A seeded run must therefore be bit-identical — same event
order, same virtual timestamps, same protocol numbers — with the
profiler enabled, explicitly disabled, or absent. The wall-clock
overhead bound itself lives in ``benchmarks/test_kernel_perf.py``
(mirroring ``benchmarks/test_obs_overhead.py``); these tests pin the
*behavioural* half of the contract.
"""

from repro.bench.harness import run_steady_state
from repro.obs import NULL_PROFILER, KernelProfiler, Obs
from repro.workloads import SmallBank


def _smallbank():
    return SmallBank(accounts=1_000)


STEADY = dict(duration=6e-3, warmup=2e-3, coordinators_per_node=4, seed=11)


class TestProfilerParity:
    def test_profiled_run_identical_protocol_numbers(self):
        base = run_steady_state(_smallbank, "pandora", **STEADY)
        profiled = run_steady_state(
            _smallbank, "pandora", profiler=KernelProfiler(), **STEADY
        )
        # Dataclass equality covers commits, aborts, throughput, and
        # latency percentiles — the full observable outcome.
        assert profiled == base

    def test_null_profiler_is_also_inert(self):
        base = run_steady_state(_smallbank, "pandora", **STEADY)
        nulled = run_steady_state(
            _smallbank, "pandora", profiler=NULL_PROFILER, **STEADY
        )
        assert nulled == base

    def test_event_order_and_virtual_timestamps_bit_identical(self):
        """Same seed, profiler on vs off: every traced span — category,
        name, virtual start, virtual duration, pid — must match, and so
        must the kernel's processed-event count. A single reordered or
        shifted event would diverge the span streams."""
        plain_obs = Obs(trace=True)
        run_steady_state(_smallbank, "pandora", obs=plain_obs, **STEADY)
        profiled_obs = Obs(trace=True)
        run_steady_state(
            _smallbank,
            "pandora",
            obs=profiled_obs,
            profiler=KernelProfiler(),
            **STEADY,
        )
        assert plain_obs.tracer.events == profiled_obs.tracer.events
        plain_kernel = plain_obs.metrics.gauge("kernel.processed_events").value
        profiled_kernel = profiled_obs.metrics.gauge(
            "kernel.processed_events"
        ).value
        assert plain_kernel == profiled_kernel

    def test_profiler_saw_the_run_it_rode_along(self):
        profiler = KernelProfiler()
        result = run_steady_state(
            _smallbank, "pandora", profiler=profiler, **STEADY
        )
        assert result.commits > 0
        assert profiler.steps > 0
        assert profiler._stack == []  # balanced frames at run end
        rollup = profiler.subsystem_rollup()
        for subsystem in ("kernel", "rdma", "protocol"):
            assert subsystem in rollup, subsystem
