"""Unit tests for the tracer and its Chrome trace_event export."""

import io
import json

from repro.obs.trace import NULL_TRACER, Tracer


class TestRecording:
    def test_span_stores_duration(self):
        tracer = Tracer()
        tracer.span("txn", "lock", 1.0, 1.5, pid=2, tid=7)
        ((phase, category, name, ts, dur, pid, tid, args),) = tracer.events
        assert (phase, category, name) == ("X", "txn", "lock")
        assert (ts, dur, pid, tid, args) == (1.0, 0.5, 2, 7, None)

    def test_instant_has_zero_duration(self):
        tracer = Tracer()
        tracer.instant("recovery", "declare-failed", 0.02, pid=1)
        assert tracer.instants() == [("i", "recovery", "declare-failed", 0.02, 0.0, 1, 0, None)]

    def test_category_filters(self):
        tracer = Tracer()
        tracer.span("txn", "execute", 0.0, 1.0)
        tracer.span("recovery", "truncate", 1.0, 2.0)
        tracer.instant("rdma", "read", 0.5)
        assert len(tracer) == 3
        assert [event[2] for event in tracer.spans("recovery")] == ["truncate"]
        assert tracer.instants("txn") == []


class TestChromeExport:
    def _trace(self):
        tracer = Tracer()
        tracer.span("txn", "lock", 1e-3, 2e-3, pid=0, tid=3, args={"txn_id": 9})
        tracer.instant("recovery", "declare-failed", 5e-3, pid=1)
        return tracer

    def test_chrome_schema(self):
        doc = self._trace().to_chrome()
        # Round-trip through JSON: the export must be serializable.
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        assert len(events) == 2
        span, instant = events
        # Complete event: ph=X with ts/dur in microseconds.
        assert span["ph"] == "X"
        assert span["ts"] == 1e-3 * 1e6
        assert span["dur"] == 1e-3 * 1e6
        assert span["pid"] == 0 and span["tid"] == 3
        assert span["args"] == {"txn_id": 9}
        # Instant event: ph=i with a scope, no dur.
        assert instant["ph"] == "i"
        assert instant["s"] == "t"
        assert "dur" not in instant

    def test_export_chrome_to_file_object(self):
        buffer = io.StringIO()
        self._trace().export_chrome(buffer)
        doc = json.loads(buffer.getvalue())
        assert {"ph", "cat", "name", "ts", "pid", "tid"} <= set(doc["traceEvents"][0])

    def test_export_chrome_to_path(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().export_chrome(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_export_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._trace().export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert records[0]["dur"] == 1e-3  # JSONL keeps virtual seconds
        assert "dur" not in records[1]


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        NULL_TRACER.span("txn", "lock", 0.0, 1.0)
        NULL_TRACER.instant("txn", "x", 0.0)
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.spans() == []
        assert NULL_TRACER.instants() == []
        assert not NULL_TRACER.enabled
