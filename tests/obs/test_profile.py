"""Unit tests for the wall-clock kernel profiler."""

import pytest

from repro.obs.profile import (
    NULL_PROFILER,
    KernelProfiler,
    NullKernelProfiler,
    subsystem_of_module,
)
from repro.sim import Simulator


class TestClassification:
    def test_subsystem_of_module(self):
        assert subsystem_of_module("repro.sim.kernel") == "kernel"
        assert subsystem_of_module("repro.rdma.qp") == "rdma"
        assert subsystem_of_module("repro.protocol.pandora") == "protocol"
        assert subsystem_of_module("repro.analysis.sanitizer") == "sanitizer"
        assert subsystem_of_module("numpy.core") == "other"
        assert subsystem_of_module(None) == "other"

    def test_classify_event(self):
        sim = Simulator()
        profiler = KernelProfiler()
        label, subsystem = profiler.classify(sim.timeout(1.0))
        assert label.startswith("event:")
        assert subsystem == "kernel"

    def test_classify_process_normalizes_instance_digits(self):
        sim = Simulator()
        profiler = KernelProfiler()

        def worker():
            yield sim.timeout(1.0)

        labels = set()
        for i in range(3):
            process = sim.process(worker(), name=f"coordinator-{i}")
            labels.add(profiler.classify(process)[0])
        # Instance ids collapse so three coordinators share one site.
        assert labels == {"process:coordinator-*"}

    def test_classify_callback_by_code_object(self):
        profiler = KernelProfiler()

        def callback():
            pass

        label, _subsystem = profiler.classify(callback)
        assert label.endswith("callback")
        # Cached by __code__: same answer, same object.
        assert profiler.classify(callback) is profiler.classify(callback)


class TestFrameAccounting:
    def test_pop_folds_self_and_child_time(self):
        profiler = KernelProfiler()
        profiler.push_site("root", "kernel")
        profiler.push("network", "delay")
        profiler.pop()
        profiler.pop()
        root = profiler.sites["root"]
        inner = profiler.sites["network:delay"]
        assert root.count == 1
        assert inner.count == 1
        assert inner.subsystem == "network"
        # Parent self time excludes the nested frame.
        assert root.self_ns == root.total_ns - inner.total_ns

    def test_collapsed_stack_paths(self):
        profiler = KernelProfiler()
        profiler.push_site("root", "kernel")
        profiler.push("rdma.post", "write_lock")
        profiler.pop()
        profiler.pop()
        paths = {line.rsplit(" ", 1)[0] for line in profiler.collapsed()}
        assert "root;rdma.post:write_lock" in paths
        for line in profiler.collapsed():
            ns = int(line.rsplit(" ", 1)[1])
            assert ns > 0

    def test_phase_attribution_on_verb_post_frames_only(self):
        profiler = KernelProfiler()
        profiler.set_phase("lock")
        profiler.push("rdma.post", "write_lock")
        profiler.pop()
        profiler.push("network", "delay")  # not a verb post: no phase
        profiler.pop()
        profiler.set_phase(None)
        profiler.push("rdma.post", "write_log")  # no ambient phase
        profiler.pop()
        assert list(profiler.phase_ns) == ["lock"]
        assert profiler.phase_counts == {"lock": 1}

    def test_on_schedule_bills_innermost_frame(self):
        profiler = KernelProfiler()
        profiler.on_schedule(object())
        profiler.push_site("root", "kernel")
        profiler.on_schedule(object())
        profiler.on_schedule(object())
        profiler.pop()
        assert profiler.scheduled == 3
        assert profiler.scheduled_by == {"(outside-step)": 1, "root": 2}

    def test_subsystem_rollup_sums_sites(self):
        profiler = KernelProfiler()
        for _ in range(2):
            profiler.push("fanin", "AllOf")
            profiler.pop()
        profiler.push("fanin", "AnyOf")
        profiler.pop()
        calls, ns = profiler.subsystem_rollup()["kernel"]
        assert calls == 3
        assert ns > 0


class TestProfiledSimulation:
    def test_profiled_run_attributes_every_step(self):
        profiler = KernelProfiler()
        sim = Simulator(profiler=profiler)
        done = []

        def worker(tag):
            yield sim.timeout(1.0)
            yield sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
            done.append(tag)

        for tag in range(3):
            sim.process(worker(tag), name=f"worker-{tag}")
        profiler.run_begin()
        sim.run()
        profiler.run_end()
        assert done == [0, 1, 2]
        assert profiler.steps == sim.processed_events
        assert profiler.run_wall_ns > 0
        assert profiler._stack == []  # every frame was popped
        labels = set(profiler.sites)
        assert "process:worker-*" in labels
        assert "resume:worker-*" in labels
        assert "fanin:AllOf" in labels
        rollup = profiler.subsystem_rollup()
        assert rollup["kernel"][1] > 0
        # Attributed self time never exceeds the bracketing run time.
        assert profiler.profiled_ns <= profiler.run_wall_ns

    def test_report_sections_render(self):
        profiler = KernelProfiler()
        sim = Simulator(profiler=profiler)

        def worker():
            yield sim.timeout(1.0)

        sim.process(worker(), name="worker-0")
        profiler.run_begin()
        sim.run()
        profiler.run_end()
        report = profiler.report(top=5)
        assert "kernel steps:" in report
        assert "wall-clock by subsystem" in report
        assert "hottest sites" in report

    def test_unprofiled_simulator_uses_null_singleton(self):
        sim = Simulator()
        assert sim.profiler is NULL_PROFILER
        assert sim.step.__func__ is not Simulator._profiled_step


class TestNullProfiler:
    def test_singleton_is_disabled_and_slotted(self):
        assert NULL_PROFILER.enabled is False
        assert isinstance(NULL_PROFILER, NullKernelProfiler)
        with pytest.raises(AttributeError):
            NULL_PROFILER.anything = 1

    def test_hooks_are_noops(self):
        NULL_PROFILER.run_begin()
        NULL_PROFILER.push("event", "x")
        NULL_PROFILER.push_site("a", "kernel")
        NULL_PROFILER.on_schedule(object())
        NULL_PROFILER.begin_step(object())
        NULL_PROFILER.end_step()
        NULL_PROFILER.pop()
        NULL_PROFILER.pop()  # unbalanced pops are fine: no stack exists
        NULL_PROFILER.set_phase("lock")
        NULL_PROFILER.run_end()
        assert NULL_PROFILER.collapsed() == []
        assert NULL_PROFILER.report() == "(profiling disabled)\n"
