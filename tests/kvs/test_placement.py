"""Tests for consistent-hash placement and primary promotion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvs.placement import ConsistentHashRing, Placement


class TestConsistentHashRing:
    def test_successors_distinct(self):
        ring = ConsistentHashRing([0, 1, 2, 3])
        nodes = ring.successors("some-key", 3)
        assert len(nodes) == len(set(nodes)) == 3

    def test_deterministic(self):
        first = ConsistentHashRing([0, 1, 2]).successors("k", 2)
        second = ConsistentHashRing([0, 1, 2]).successors("k", 2)
        assert first == second

    def test_too_many_replicas_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([0, 1]).successors("k", 3)

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_stability_under_node_addition(self):
        """Consistent hashing: adding a node moves few partitions."""
        before = ConsistentHashRing([0, 1, 2, 3], virtual_nodes=128)
        after = ConsistentHashRing([0, 1, 2, 3, 4], virtual_nodes=128)
        moved = sum(
            1
            for index in range(500)
            if before.successors(f"p{index}", 1) != after.successors(f"p{index}", 1)
        )
        # Ideally ~1/5 of keys move; allow generous slack.
        assert moved < 500 * 0.45

    def test_balance(self):
        ring = ConsistentHashRing([0, 1, 2, 3], virtual_nodes=256)
        counts = {node: 0 for node in range(4)}
        for index in range(2000):
            counts[ring.successors(f"key-{index}", 1)[0]] += 1
        for count in counts.values():
            assert count > 2000 / 4 * 0.5


class TestPlacement:
    def test_replica_count(self):
        placement = Placement([0, 1, 2], replication_degree=2)
        replicas = placement.replicas(0, 5)
        assert len(replicas) == 2
        assert len(set(replicas)) == 2

    def test_primary_is_first_replica(self):
        placement = Placement([0, 1, 2], replication_degree=2)
        assert placement.primary(0, 5) == placement.replicas(0, 5)[0]

    def test_primary_promotion_on_failure(self):
        """§3.2.5: the new primary is computed deterministically."""
        placement = Placement([0, 1, 2], replication_degree=3)
        old_primary = placement.primary(0, 5)
        replicas = placement.replicas(0, 5)
        placement.mark_down(old_primary)
        new_primary = placement.primary(0, 5)
        assert new_primary == next(n for n in replicas if n != old_primary)

    def test_all_replicas_down_raises(self):
        placement = Placement([0, 1], replication_degree=2)
        placement.mark_down(0)
        placement.mark_down(1)
        with pytest.raises(RuntimeError):
            placement.primary(0, 5)

    def test_mark_up_restores(self):
        placement = Placement([0, 1], replication_degree=2)
        primary = placement.primary(0, 5)
        placement.mark_down(primary)
        placement.mark_up(primary)
        assert placement.primary(0, 5) == primary

    def test_backups_exclude_primary(self):
        placement = Placement([0, 1, 2, 3], replication_degree=3)
        primary = placement.primary(0, 7)
        assert primary not in placement.backups(0, 7)

    def test_live_replicas_shrink(self):
        placement = Placement([0, 1, 2], replication_degree=3)
        victim = placement.replicas(0, 9)[1]
        placement.mark_down(victim)
        assert victim not in placement.live_replicas(0, 9)

    def test_log_nodes_are_f_plus_one_and_fixed(self):
        """§3.1.4: every coordinator logs to the same f+1 servers."""
        placement = Placement([0, 1, 2, 3], replication_degree=2)
        log_nodes = placement.log_nodes(coord_id=17)
        assert len(log_nodes) == 2
        assert placement.log_nodes(17) == log_nodes  # stable

    def test_invalid_replication_degree(self):
        with pytest.raises(ValueError):
            Placement([0], replication_degree=2)
        with pytest.raises(ValueError):
            Placement([0], replication_degree=0)


@given(
    nodes=st.integers(min_value=2, max_value=8),
    degree=st.integers(min_value=1, max_value=3),
    table=st.integers(min_value=0, max_value=8),
    slot=st.integers(min_value=0, max_value=100000),
)
@settings(max_examples=100)
def test_placement_properties(nodes, degree, table, slot):
    """Replica lists are valid, deterministic, and degree-sized."""
    if degree > nodes:
        degree = nodes
    placement = Placement(list(range(nodes)), replication_degree=degree)
    replicas = placement.replicas(table, slot)
    assert len(replicas) == degree
    assert len(set(replicas)) == degree
    assert all(0 <= node < nodes for node in replicas)
    assert placement.replicas(table, slot) == replicas
