"""Log-server placement under memory failures (§3.1.4 + §3.2.5)."""

import pytest

from repro.kvs.placement import Placement


class TestLogNodeFailover:
    def test_log_nodes_promote_on_failure(self):
        placement = Placement([0, 1, 2, 3], replication_degree=2)
        before = placement.log_nodes(coord_id=5)
        victim = before[0]
        placement.mark_down(victim)
        after = placement.log_nodes(coord_id=5)
        assert victim not in after
        assert len(after) == 2
        # The surviving log server keeps its role (stable prefix).
        assert before[1] in after

    def test_log_nodes_restored_on_mark_up(self):
        placement = Placement([0, 1, 2], replication_degree=2)
        before = placement.log_nodes(coord_id=9)
        placement.mark_down(before[0])
        placement.mark_up(before[0])
        assert placement.log_nodes(coord_id=9) == before

    def test_degraded_quorum_returns_live_subset(self):
        """With f failures and no spare server, logging degrades to the
        live subset instead of raising — raising here escaped
        mid-transaction after the lock barrier and silently killed the
        worker with its locks held under a live coordinator id (see
        tests/chaos/schedules/degraded-log-quorum.json)."""
        placement = Placement([0, 1], replication_degree=2)
        placement.mark_down(0)
        assert placement.log_nodes(coord_id=1) == (1,)

    def test_zero_live_log_servers_raise(self):
        placement = Placement([0, 1], replication_degree=2)
        placement.mark_down(0)
        placement.mark_down(1)
        with pytest.raises(RuntimeError):
            placement.log_nodes(coord_id=1)

    def test_different_coordinators_spread_over_nodes(self):
        placement = Placement(list(range(6)), replication_degree=2)
        primaries = {placement.log_nodes(coord)[0] for coord in range(64)}
        # Consistent hashing spreads coordinators' log primaries.
        assert len(primaries) >= 4
