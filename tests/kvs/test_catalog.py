"""Tests for the catalog: schemas, key addressing, provisioning."""

import pytest

from repro.kvs.catalog import Catalog, TableSpec
from repro.kvs.placement import Placement
from repro.memory.node import MemoryNode


@pytest.fixture
def catalog():
    placement = Placement([0, 1, 2], replication_degree=2)
    cat = Catalog(placement)
    cat.add_table(TableSpec(table_id=0, name="accounts", max_keys=100, value_size=16))
    return cat


class TestSchema:
    def test_lookup_by_name_and_id(self, catalog):
        assert catalog.table("accounts").table_id == 0
        assert catalog.table(0).name == "accounts"

    def test_duplicate_id_raises(self, catalog):
        with pytest.raises(ValueError):
            catalog.add_table(TableSpec(0, "other", 10, 8))

    def test_duplicate_name_raises(self, catalog):
        with pytest.raises(ValueError):
            catalog.add_table(TableSpec(1, "accounts", 10, 8))

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            TableSpec(0, "t", 0, 8)
        with pytest.raises(ValueError):
            TableSpec(0, "t", 10, 0)


class TestAddressing:
    def test_slots_are_dense_and_stable(self, catalog):
        first = catalog.slot_for(0, "alice")
        second = catalog.slot_for(0, "bob")
        assert (first, second) == (0, 1)
        assert catalog.slot_for(0, "alice") == 0  # stable on re-query

    def test_composite_keys(self, catalog):
        slot = catalog.slot_for(0, (3, 7, "order"))
        assert catalog.slot_for(0, (3, 7, "order")) == slot

    def test_keyspace_exhaustion(self, catalog):
        for key in range(100):
            catalog.slot_for(0, key)
        with pytest.raises(RuntimeError):
            catalog.slot_for(0, "one-too-many")

    def test_key_count(self, catalog):
        catalog.slot_for(0, "x")
        catalog.slot_for(0, "y")
        assert catalog.key_count(0) == 2


class TestProvisioningAndLoad:
    def test_provision_creates_tables_everywhere(self, catalog):
        nodes = {i: MemoryNode(i) for i in range(3)}
        catalog.provision(nodes.values())
        for node in nodes.values():
            assert 0 in node.tables
            assert len(node.tables[0]) == 100

    def test_load_replicates_to_all_replicas(self, catalog):
        nodes = {i: MemoryNode(i) for i in range(3)}
        catalog.provision(nodes.values())
        count = catalog.load(nodes, 0, [("acct-1", 500)])
        assert count == 1
        slot = catalog.slot_for(0, "acct-1")
        replicas = catalog.replicas(0, slot)
        assert len(replicas) == 2
        for node_id in replicas:
            assert nodes[node_id].slot(0, slot).value == 500
            assert nodes[node_id].slot(0, slot).present

    def test_total_dataset_bytes(self, catalog):
        nodes = {i: MemoryNode(i) for i in range(3)}
        catalog.provision(nodes.values())
        catalog.load(nodes, 0, [(k, 0) for k in range(10)])
        assert catalog.total_dataset_bytes() == 10 * (16 + 16)
