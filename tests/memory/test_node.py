"""Tests for the memory-node substrate: slots, logs, scans, control."""

import pytest

from repro.memory.node import (
    LOG_REGION_CAPACITY_BYTES,
    LogRecord,
    LogRegion,
    MemoryNode,
    OBJECT_HEADER_BYTES,
)


@pytest.fixture
def node():
    memory = MemoryNode(0)
    memory.create_table(0, 16, value_size=40)
    memory.load_slot(0, 1, value="hello")
    return memory


def _entry(table=0, slot=1, key=1, old_ver=1, new_ver=2):
    return (table, slot, key, old_ver, new_ver, "old", "new", True, True)


class TestTables:
    def test_create_and_load(self, node):
        slot = node.slot(0, 1)
        assert slot.present and slot.value == "hello" and slot.version == 1

    def test_duplicate_table_raises(self, node):
        with pytest.raises(ValueError):
            node.create_table(0, 4, value_size=8)

    def test_slot_bytes(self, node):
        assert node.slot(0, 1).slot_bytes == OBJECT_HEADER_BYTES + 40

    def test_total_data_bytes(self, node):
        assert node.total_data_bytes() == 16 * (OBJECT_HEADER_BYTES + 40)


class TestVerbDispatch:
    def test_unknown_verb_raises(self, node):
        with pytest.raises(ValueError):
            node.apply(1, "nonsense", ())

    def test_verb_counting(self, node):
        node.apply(1, "read_header", (0, 1))
        node.apply(1, "read_header", (0, 1))
        assert node.verb_counts["read_header"] == 2

    def test_cas_lock_semantics(self, node):
        old, _size = node.apply(1, "cas_lock", (0, 1, 0, 42))
        assert old == 0
        old, _size = node.apply(1, "cas_lock", (0, 1, 0, 43))
        assert old == 42  # failed CAS returns the current word
        assert node.slot(0, 1).lock == 42

    def test_write_object_in_place(self, node):
        node.apply(1, "write_object", (0, 1, 7, "updated", True))
        slot = node.slot(0, 1)
        assert (slot.version, slot.value) == (7, "updated")

    def test_scan_chunk_reports_locked_and_charges_bytes(self, node):
        node.slot(0, 2).lock = 99
        (locked, next_pos), size = node.apply(1, "scan_chunk", (0, 0, 16))
        assert locked == [(2, 99)]
        assert next_pos == 16
        assert size == 16 * (OBJECT_HEADER_BYTES + 40)


class TestLogRegions:
    def test_write_and_read_log(self, node):
        record = LogRecord(coord_id=3, txn_id=10, entries=(_entry(),))
        record_id, _ = node.apply(1, "write_log", (record,))
        records, _ = node.apply(1, "read_log_region", (3,))
        assert len(records) == 1
        assert records[0].record_id == record_id

    def test_invalidate_log(self, node):
        record = LogRecord(coord_id=3, txn_id=10, entries=(_entry(),))
        record_id, _ = node.apply(1, "write_log", (record,))
        found, _ = node.apply(1, "invalidate_log", (3, record_id))
        assert found
        records, _ = node.apply(1, "read_log_region", (3,))
        assert records == []

    def test_truncate_region_hides_all_records(self, node):
        for txn in range(3):
            node.apply(1, "write_log", (LogRecord(3, txn, (_entry(),)),))
        node.apply(1, "truncate_log_region", (3,))
        records, _ = node.apply(1, "read_log_region", (3,))
        assert records == []

    def test_register_resets_region(self, node):
        node.apply(1, "write_log", (LogRecord(3, 1, (_entry(),)),))
        node.apply(1, "truncate_log_region", (3,))
        node.apply(1, "ctrl_register_log_region", (3,))
        node.apply(1, "write_log", (LogRecord(3, 2, (_entry(),)),))
        records, _ = node.apply(1, "read_log_region", (3,))
        assert len(records) == 1

    def test_region_wraps_at_capacity(self):
        region = LogRegion(coord_id=1, capacity_bytes=300)
        for txn in range(10):
            record = LogRecord(1, txn, (_entry(),))
            region.append(record, 100)
        assert region.used_bytes <= 300
        ids = [record.txn_id for record in region.valid_records()]
        assert ids == [7, 8, 9]

    def test_region_default_capacity_is_32k(self):
        assert LogRegion(coord_id=1).capacity_bytes == LOG_REGION_CAPACITY_BYTES

    def test_record_size_accounts_values(self):
        record = LogRecord(1, 1, (_entry(), _entry(slot=2)))
        small = record.size_bytes({0: 8})
        large = record.size_bytes({0: 672})
        assert large > small

    def test_read_missing_region_is_empty(self, node):
        records, _ = node.apply(1, "read_log_region", (99,))
        assert records == []


class TestControlPlane:
    def test_revoke_and_unrevoke(self, node):
        node.apply(1, "ctrl_revoke", (5,))
        assert node.is_revoked(5)
        node.apply(1, "ctrl_unrevoke", (5,))
        assert not node.is_revoked(5)

    def test_crash_and_restart(self, node):
        node.crash()
        assert not node.alive
        node.restart()
        assert node.alive
        assert node.slot(0, 1).value == "hello"  # memory intact

    def test_locked_slots_introspection(self, node):
        node.slot(0, 4).lock = 1
        node.slot(0, 9).lock = 2
        assert node.locked_slots(0) == [4, 9]
