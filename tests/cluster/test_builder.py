"""Tests for cluster configuration, wiring, and restart."""

import pytest

from repro import Cluster
from repro.cluster.config import ClusterConfig as Config
from repro.workloads import MicroBenchmark


def workload():
    return MicroBenchmark(num_keys=200, write_ratio=1.0)


class TestConfigValidation:
    def test_defaults_valid(self):
        Config().validate()

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            Config(protocol="raft").validate()

    def test_replication_exceeds_memory_nodes(self):
        with pytest.raises(ValueError):
            Config(memory_nodes=2, replication_degree=3).validate()

    def test_recovery_mode_mapping(self):
        assert Config(protocol="pandora").recovery_mode == "pill"
        assert Config(protocol="baseline").recovery_mode == "scan"
        assert Config(protocol="ford").recovery_mode == "scan"
        assert Config(protocol="tradlog").recovery_mode == "locklog"

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            Config(compute_nodes=0).validate()


class TestWiring:
    def test_coordinator_ids_unique_across_nodes(self):
        cluster = Cluster(Config(coordinators_per_node=8), workload())
        ids = [c.coord_id for c in cluster.all_coordinators()]
        assert len(ids) == len(set(ids)) == 16

    def test_double_start_raises(self):
        cluster = Cluster(Config(), workload())
        cluster.start()
        with pytest.raises(RuntimeError):
            cluster.start()

    def test_live_coordinator_count(self):
        cluster = Cluster(Config(coordinators_per_node=4), workload())
        cluster.start()
        assert cluster.live_coordinator_count() == 8
        cluster.crash_compute(0)
        assert cluster.live_coordinator_count() == 4

    def test_protocol_selection(self):
        for name, expected in [
            ("pandora", "pandora"),
            ("ford", "ford"),
            ("baseline", "ford"),
            ("tradlog", "tradlog"),
        ]:
            cluster = Cluster(Config(protocol=name), workload())
            engine = cluster.all_coordinators()[0].engine
            assert engine.name == expected

    def test_ford_published_keeps_bugs(self):
        cluster = Cluster(Config(protocol="ford"), workload())
        assert cluster.all_coordinators()[0].engine.bugs.any_enabled()

    def test_baseline_fixes_bugs(self):
        cluster = Cluster(Config(protocol="baseline"), workload())
        assert not cluster.all_coordinators()[0].engine.bugs.any_enabled()


class TestRestart:
    def test_restart_assigns_fresh_ids(self):
        cluster = Cluster(Config(coordinators_per_node=4, seed=3), workload())
        cluster.start()
        node = cluster.compute_nodes[0]
        old_ids = set(node.coordinator_ids())
        cluster.run(until=0.005)
        node.crash()
        cluster.run(until=0.015)
        cluster.restart_compute(node)
        new_ids = set(node.coordinator_ids())
        assert old_ids.isdisjoint(new_ids)
        assert node.alive

    def test_restart_preserves_retired_stats(self):
        cluster = Cluster(Config(coordinators_per_node=4, seed=3), workload())
        cluster.start()
        cluster.run(until=0.010)
        commits_before = cluster.aggregate_stats().commits
        node = cluster.compute_nodes[0]
        node.crash()
        cluster.restart_compute(node)
        assert cluster.aggregate_stats().commits >= commits_before

    def test_restart_unrevokes_links(self):
        cluster = Cluster(
            Config(coordinators_per_node=2, seed=3, fd_timeout=2e-3), workload()
        )
        cluster.start()
        cluster.crash_compute(0, at=0.005)
        cluster.run(until=0.020)  # recovery revokes node 0 everywhere
        cluster.restart_compute(cluster.compute_nodes[0])
        for memory in cluster.memory_nodes.values():
            assert not memory.is_revoked(0)

    def test_restart_receives_full_failed_ids(self):
        """§3.1.2: failures during a node's downtime reach it via the
        FD's initial configuration on rejoin."""
        cluster = Cluster(
            Config(
                compute_nodes=3,
                coordinators_per_node=2,
                seed=3,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
            ),
            workload(),
        )
        cluster.start()
        node_a = cluster.compute_nodes[0]
        node_b = cluster.compute_nodes[1]
        ids_b = set(node_b.coordinator_ids())
        node_a.crash()  # down while B fails
        cluster.run(until=0.010)
        cluster.crash_compute(1, at=0.010)
        cluster.run(until=0.030)  # B's failure recovered; A still down
        cluster.restart_compute(node_a)
        assert ids_b.issubset(set(node_a.failed_ids))

    def test_restarted_node_commits_again(self):
        cluster = Cluster(
            Config(
                coordinators_per_node=2,
                seed=3,
                fd_timeout=2e-3,
                restart_failed_after=2e-3,
            ),
            workload(),
        )
        cluster.start()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.060)
        node = cluster.compute_nodes[0]
        assert node.alive
        assert sum(c.stats.commits for c in node.coordinators) > 0


class TestFencedAliveRestart:
    def test_restart_rejoins_fenced_but_alive_node(self):
        """A falsely-suspected node that idled through its own recovery
        never crashed itself: it is alive, but its links are revoked
        everywhere and its ids are marked failed — it can never commit
        again. ``restart_compute`` must treat it as crash + rejoin, not
        no-op on ``node.alive`` and leave it fenced forever."""
        cluster = Cluster(Config(coordinators_per_node=2, seed=3), workload())
        cluster.start()
        node = cluster.compute_nodes[0]
        old_ids = set(node.coordinator_ids())
        # Emulate a completed false-positive recovery of an idle node:
        # fenced at every memory server, ids failed, node never touched
        # memory so it never observed any of it.
        from repro.cluster.builder import RECOVERY_SERVER_ID

        for memory in cluster.memory_nodes.values():
            memory._op_ctrl_revoke(RECOVERY_SERVER_ID, (node.node_id,))
        for coord_id in old_ids:
            cluster.id_allocator.mark_failed(coord_id)
        assert node.alive

        cluster.restart_compute(node)
        assert node.alive and not node.fenced
        new_ids = set(node.coordinator_ids())
        assert new_ids and new_ids.isdisjoint(old_ids)
        for memory in cluster.memory_nodes.values():
            assert not memory.is_revoked(node.node_id)

    def test_restart_of_healthy_node_is_noop(self):
        """An alive, unfenced node is left alone (no id churn)."""
        cluster = Cluster(Config(coordinators_per_node=2, seed=3), workload())
        cluster.start()
        node = cluster.compute_nodes[0]
        ids = set(node.coordinator_ids())
        cluster.restart_compute(node)
        assert set(node.coordinator_ids()) == ids
