"""Unit tests for ComputeNode lifecycle and pause semantics."""


from repro.cluster.node import ComputeNode
from repro.sim import Simulator


class _StubVerbs:
    pass


class _StubCatalog:
    pass


def make_node(sim=None, node_id=0):
    return ComputeNode(sim or Simulator(), node_id, _StubVerbs(), _StubCatalog())


class TestLifecycle:
    def test_starts_alive_and_unpaused(self):
        node = make_node()
        assert node.alive and not node.paused and not node.fenced

    def test_crash_is_idempotent(self):
        node = make_node()
        node.crash()
        first = node.crash_time
        node.crash()
        assert node.crash_time == first

    def test_fencing_crashes_the_node(self):
        node = make_node()
        node.on_fenced(None)
        assert node.fenced and not node.alive


class TestFailedIds:
    def test_accumulates(self):
        node = make_node()
        node.add_failed_ids([1, 2])
        node.add_failed_ids([2, 3])
        assert set(node.failed_ids) == {1, 2, 3}


class TestPause:
    def test_wait_if_paused_blocks_until_resume(self):
        sim = Simulator()
        node = make_node(sim)
        node.pause()
        progress = []

        def proc():
            yield from node.wait_if_paused()
            progress.append(sim.now)

        sim.process(proc())
        sim.run(until=1.0)
        assert progress == []
        sim.call_at(2.0, node.resume)
        sim.run()
        assert progress == [2.0]

    def test_wait_if_unpaused_is_immediate(self):
        sim = Simulator()
        node = make_node(sim)
        done = []

        def proc():
            yield from node.wait_if_paused()
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [0.0]

    def test_double_pause_single_resume(self):
        sim = Simulator()
        node = make_node(sim)
        node.pause()
        node.pause()
        node.resume()
        assert not node.paused

    def test_repeated_pause_cycles(self):
        sim = Simulator()
        node = make_node(sim)
        wakeups = []

        def proc():
            for _ in range(3):
                yield from node.wait_if_paused()
                wakeups.append(sim.now)
                yield sim.timeout(1.0)

        sim.process(proc())
        node.pause()
        sim.call_at(1.0, node.resume)
        sim.call_at(1.5, node.pause)
        sim.call_at(3.0, node.resume)
        sim.run()
        assert len(wakeups) == 3
