"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_litmus_defaults(self):
        args = build_parser().parse_args(["litmus"])
        assert args.protocol == "pandora"
        assert args.rounds == 30

    def test_steady_options(self):
        args = build_parser().parse_args(
            ["steady", "--workload", "tatp", "--protocol", "tradlog"]
        )
        assert args.workload == "tatp"
        assert args.protocol == "tradlog"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["steady", "--protocol", "raft"])

    def test_failover_crash_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["failover", "--crash", "disk"])


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "log-recovery latency" in out

    def test_steady_runs(self, capsys):
        assert main(["steady", "--workload", "micro", "--duration-ms", "4"]) == 0
        assert "microbench" in capsys.readouterr().out

    def test_recovery_latency_runs(self, capsys):
        assert main(["recovery-latency", "--coordinators", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency (us)" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["steady", "--workload", "nope"])


class TestChaosCommand:
    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seeds == 25
        assert args.seed_base == 0
        assert args.protocol == "pandora"
        assert not args.shrink

    def test_chaos_bank_runs_clean(self, capsys):
        assert main(["chaos", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "chaos[seed=0" in out
        assert "2/2 schedule(s) clean" in out

    def test_chaos_replay_artifact(self, capsys, tmp_path):
        import pathlib

        artifact = sorted(
            (pathlib.Path(__file__).parents[1] / "chaos" / "schedules").glob("*.json")
        )[0]
        assert main(["chaos", "--replay", str(artifact)]) == 0
        assert "1/1 schedule(s) clean" in capsys.readouterr().out

    def test_chaos_failure_exits_nonzero_and_writes_artifact(self, capsys, tmp_path):
        """A protocol with the published FORD bugs fails the oracle;
        the failing schedule lands in --out as replayable JSON."""
        from repro.chaos import Schedule

        out_dir = tmp_path / "artifacts"
        code = main(
            ["chaos", "--seeds", "1", "--protocol", "ford", "--out", str(out_dir)]
        )
        assert code == 1
        written = list(out_dir.glob("chaos-seed*.json"))
        assert len(written) == 1
        schedule = Schedule.from_json(written[0].read_text())
        assert schedule.protocol == "ford"


class TestPerfCommand:
    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf"])
        assert args.workload == "micro"
        assert args.protocol == "pandora"
        assert not args.bench
        assert args.repeats == 3
        assert args.tolerance is None
        assert args.collapsed is None

    def test_perf_profile_run(self, capsys, tmp_path):
        collapsed = tmp_path / "kernel.folded"
        assert main([
            "perf", "--duration-ms", "2", "--collapsed", str(collapsed)
        ]) == 0
        out = capsys.readouterr().out
        assert "wall-clock by subsystem" in out
        assert "hottest sites" in out
        assert "verb-post wall time by txn phase" in out
        lines = collapsed.read_text().splitlines()
        assert lines, "no collapsed stacks written"
        # Every line is flamegraph.pl format: "frame;frame;... <ns>".
        for line in lines:
            path, ns = line.rsplit(" ", 1)
            assert path
            assert int(ns) > 0

    def test_perf_bench_gates_against_baseline(self, capsys, tmp_path, monkeypatch):
        """--bench --baseline exits 1 on a regression, 0 within tolerance."""
        import json

        from repro.bench import kernelperf
        from repro.bench.kernelperf import KernelPerfResult

        def fake_suite(eps):
            return [
                KernelPerfResult(
                    fleet="tiny", coordinators=2, keys=200,
                    virtual_duration=1e-3, steps=1000,
                    wall_seconds=1000 / eps, repeats=1,
                )
            ]

        baseline = tmp_path / "BENCH_KERNEL.json"
        baseline.write_text(
            json.dumps(kernelperf.suite_payload(fake_suite(100.0)))
        )

        monkeypatch.setattr(
            kernelperf, "run_suite", lambda repeats: fake_suite(90.0)
        )
        assert main(["perf", "--bench", "--baseline", str(baseline)]) == 0
        assert "within tolerance" in capsys.readouterr().out

        monkeypatch.setattr(
            kernelperf, "run_suite", lambda repeats: fake_suite(50.0)
        )
        assert main(["perf", "--bench", "--baseline", str(baseline)]) == 1
        assert "regression vs baseline" in capsys.readouterr().out

    def test_perf_bench_missing_baseline_exits(self, tmp_path, monkeypatch):
        from repro.bench import kernelperf

        monkeypatch.setattr(kernelperf, "run_suite", lambda repeats: [])
        with pytest.raises(SystemExit):
            main([
                "perf", "--bench", "--baseline", str(tmp_path / "missing.json")
            ])
