"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_litmus_defaults(self):
        args = build_parser().parse_args(["litmus"])
        assert args.protocol == "pandora"
        assert args.rounds == 30

    def test_steady_options(self):
        args = build_parser().parse_args(
            ["steady", "--workload", "tatp", "--protocol", "tradlog"]
        )
        assert args.workload == "tatp"
        assert args.protocol == "tradlog"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["steady", "--protocol", "raft"])

    def test_failover_crash_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["failover", "--crash", "disk"])


class TestCommands:
    def test_quickstart_runs(self, capsys):
        assert main(["quickstart"]) == 0
        out = capsys.readouterr().out
        assert "log-recovery latency" in out

    def test_steady_runs(self, capsys):
        assert main(["steady", "--workload", "micro", "--duration-ms", "4"]) == 0
        assert "microbench" in capsys.readouterr().out

    def test_recovery_latency_runs(self, capsys):
        assert main(["recovery-latency", "--coordinators", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency (us)" in out

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit):
            main(["steady", "--workload", "nope"])
