"""Unit tests for the kernel-speed benchmark and its baseline gate."""

import pytest

from repro.bench.kernelperf import (
    DEFAULT_FLEETS,
    DEFAULT_TOLERANCE,
    SNAPSHOT_SCHEMA,
    FleetSpec,
    KernelPerfResult,
    compare_to_baseline,
    format_suite,
    run_fleet,
    suite_payload,
)
from repro.obs.profile import KernelProfiler

TINY = FleetSpec("tiny", compute_nodes=1, coordinators_per_node=2, keys=200,
                 duration=0.2e-3)


def _result(fleet="tiny", steps=10_000, wall=0.5, **overrides):
    fields = dict(
        fleet=fleet,
        coordinators=2,
        keys=200,
        virtual_duration=0.2e-3,
        steps=steps,
        wall_seconds=wall,
        repeats=3,
    )
    fields.update(overrides)
    return KernelPerfResult(**fields)


class TestResultMath:
    def test_events_per_sec_and_us_per_event(self):
        result = _result(steps=10_000, wall=0.5)
        assert result.events_per_sec == 20_000
        assert result.wall_us_per_event == 50.0

    def test_zero_guards(self):
        assert _result(wall=0.0).events_per_sec == 0.0
        assert _result(steps=0).wall_us_per_event == 0.0


class TestSuitePayload:
    def test_payload_shape(self):
        payload = suite_payload([_result()], tolerance=0.25)
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["tolerance"] == 0.25
        entry = payload["fleets"]["tiny"]
        assert entry["steps"] == 10_000
        assert entry["events_per_sec"] == 20_000
        assert entry["wall_us_per_event"] == 50.0
        assert entry["coordinators"] == 2
        assert entry["keys"] == 200
        assert entry["repeats"] == 3

    def test_default_fleets_span_three_sizes(self):
        """The ISSUE's acceptance floor: events/sec for >= 3 fleets."""
        assert len(DEFAULT_FLEETS) >= 3
        assert len({spec.coordinators for spec in DEFAULT_FLEETS}) >= 3
        assert len({spec.keys for spec in DEFAULT_FLEETS}) >= 3


class TestBaselineGate:
    def _payloads(self, current_eps, base_eps, current_steps=100, base_steps=100):
        current = suite_payload(
            [_result(steps=current_steps, wall=current_steps / current_eps)]
        )
        baseline = suite_payload(
            [_result(steps=base_steps, wall=base_steps / base_eps)]
        )
        return current, baseline

    def test_within_tolerance_passes(self):
        current, baseline = self._payloads(current_eps=80, base_eps=100)
        assert compare_to_baseline(current, baseline, tolerance=0.25) == []

    def test_regression_below_floor_fails(self):
        current, baseline = self._payloads(current_eps=70, base_eps=100)
        failures = compare_to_baseline(current, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "events/sec" in failures[0]

    def test_faster_run_never_fails(self):
        current, baseline = self._payloads(current_eps=500, base_eps=100)
        assert compare_to_baseline(current, baseline, tolerance=0.25) == []

    def test_missing_fleet_fails(self):
        current = suite_payload([])
        baseline = suite_payload([_result()])
        failures = compare_to_baseline(current, baseline)
        assert failures == ["fleet 'tiny': missing from current run"]

    def test_step_drift_reported_separately(self):
        current, baseline = self._payloads(
            current_eps=100, base_eps=100, current_steps=101, base_steps=100
        )
        failures = compare_to_baseline(current, baseline, tolerance=0.25)
        assert len(failures) == 1
        assert "step count changed" in failures[0]

    def test_tolerance_defaults_from_baseline_payload(self):
        current, baseline = self._payloads(current_eps=97, base_eps=100)
        baseline["tolerance"] = 0.05
        assert compare_to_baseline(current, baseline) == []
        baseline["tolerance"] = 0.01
        assert len(compare_to_baseline(current, baseline)) == 1


class TestRunFleet:
    @pytest.fixture(scope="class")
    def tiny_result(self):
        return run_fleet(TINY, repeats=2, seed=7)

    def test_measures_events(self, tiny_result):
        assert tiny_result.steps > 0
        assert tiny_result.wall_seconds > 0
        assert tiny_result.events_per_sec > 0
        assert tiny_result.repeats == 2

    def test_step_count_is_deterministic(self, tiny_result):
        again = run_fleet(TINY, repeats=1, seed=7)
        assert again.steps == tiny_result.steps

    def test_profiler_attaches_to_last_repeat_only(self):
        profiler = KernelProfiler()
        result = run_fleet(TINY, repeats=2, seed=7, profiler=profiler)
        assert profiler.steps == result.steps

    def test_repeats_must_be_positive(self):
        with pytest.raises(ValueError):
            run_fleet(TINY, repeats=0)

    def test_format_suite_renders(self, tiny_result):
        table = format_suite([tiny_result])
        assert "kernel speed sweep" in table
        assert "tiny" in table
        assert "events/sec" in table

    def test_default_tolerance_is_documented_value(self):
        assert DEFAULT_TOLERANCE == 0.25
