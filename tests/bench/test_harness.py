"""Tests for the benchmark harness (small scales)."""

import pytest

from repro.bench.harness import (
    default_config,
    run_failover,
    run_mttf,
    run_recovery_latency,
    run_steady_state,
)
from repro.bench.report import format_series, format_table
from repro.workloads import MicroBenchmark


def tiny_micro():
    return MicroBenchmark(num_keys=500, write_ratio=1.0)


class TestDefaultConfig:
    def test_matches_paper_topology(self):
        config = default_config()
        assert config.memory_nodes == 2
        assert config.compute_nodes == 2
        assert config.replication_degree == 2
        assert config.fd_timeout == pytest.approx(5e-3)

    def test_overrides(self):
        config = default_config(protocol="tradlog", coordinators_per_node=4)
        assert config.protocol == "tradlog"
        assert config.coordinators_per_node == 4


class TestSteadyState:
    def test_returns_positive_throughput(self):
        result = run_steady_state(
            tiny_micro, "pandora", duration=5e-3, warmup=1e-3,
            coordinators_per_node=2,
        )
        assert result.throughput > 0
        assert result.commits > 0
        assert 0 <= result.abort_rate < 1
        assert result.p50_latency > 0

    def test_row_renders(self):
        result = run_steady_state(
            tiny_micro, "pandora", duration=5e-3, warmup=1e-3,
            coordinators_per_node=2,
        )
        assert "pandora" in result.row()


class TestFailover:
    def test_compute_crash_timeline(self):
        result = run_failover(
            tiny_micro,
            "pandora",
            crash_kind="compute",
            crash_at=10e-3,
            duration=30e-3,
            coordinators_per_node=2,
        )
        assert result.pre_rate > 0
        assert result.recovery_records
        assert result.recovery_records[0].kind == "compute"
        assert len(result.series) > 5

    def test_memory_crash_gets_three_nodes(self):
        result = run_failover(
            tiny_micro,
            "pandora",
            crash_kind="memory",
            crash_at=10e-3,
            duration=30e-3,
            coordinators_per_node=2,
        )
        assert result.recovery_records[0].kind == "memory"

    def test_invalid_crash_kind(self):
        with pytest.raises(ValueError):
            run_failover(tiny_micro, crash_kind="disk")

    def test_reuse_restores_capacity(self):
        no_reuse = run_failover(
            tiny_micro, "pandora", crash_at=10e-3, duration=50e-3,
            reuse_resources=False, coordinators_per_node=2,
        )
        reuse = run_failover(
            tiny_micro, "pandora", crash_at=10e-3, duration=50e-3,
            reuse_resources=True, restart_after=5e-3, coordinators_per_node=2,
        )
        assert reuse.post_rate > no_reuse.post_rate


class TestRecoveryLatency:
    def test_latency_positive_and_small(self):
        result = run_recovery_latency(
            tiny_micro, coordinators_per_node=2, crash_at=5e-3
        )
        assert 0 < result.latency < 50e-3
        assert result.coordinators == 2


class TestMttf:
    def test_no_failures_baseline(self):
        result = run_mttf(
            tiny_micro, None, duration=15e-3, coordinators_per_node=2
        )
        assert result.throughput > 0

    def test_failures_run(self):
        result = run_mttf(
            tiny_micro,
            5e-3,
            duration=30e-3,
            repair_time=1e-3,
            coordinators_per_node=2,
            fd_timeout=2e-3,
        )
        assert result.throughput > 0


class TestReportFormatting:
    def test_table(self):
        text = format_table("Title", ["a", "bb"], [(1, 2), ("xx", "y")], note="n")
        assert "Title" in text
        assert "xx" in text
        assert text.endswith("n\n")

    def test_series_plot(self):
        text = format_series(
            "T", [(0.0, 10.0), (0.001, 5.0)], markers=[(0.001, "crash")]
        )
        assert "#" in text
        assert "crash" in text

    def test_empty_series(self):
        assert "empty" in format_series("T", [])
