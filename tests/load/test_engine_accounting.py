"""Open-loop engine invariants: CO accounting, saturation, determinism.

The coordinated-omission guard is the core property: every *intended*
arrival in the measured window must end up in exactly one bucket —
completed, unknown (killed mid-flight), or censored (still queued or
in flight at the drain deadline) — and the CO histogram must hold one
sample for each completed-or-censored request. Losing requests under
saturation is precisely the accounting error CO correction exists to
prevent.
"""

from repro.load import run_load_point
from repro.workloads import SmallBank


def _smallbank():
    return SmallBank(accounts=1_000, hot_accounts=200)


def _point(offered, duration=5e-3, **kwargs):
    return run_load_point(
        "pandora",
        _smallbank,
        offered,
        duration=duration,
        warmup=1e-3,
        users=64,
        coordinators_per_node=8,
        **kwargs,
    )


class TestAccounting:
    def test_every_intended_request_is_accounted_exactly_once(self):
        # Far past the knee: the queue grows without bound, so the run
        # ends with censored requests — the case that loses samples in
        # a naive harness.
        result = _point(offered=2_000_000.0)
        assert result.intended > 0
        assert result.intended == result.completed + result.unknown + result.censored
        assert result.completed == result.commits + result.aborts
        assert result.co.stats.count == result.completed + result.censored
        assert result.service.stats.count == result.completed

    def test_saturation_is_visible(self):
        result = _point(offered=2_000_000.0)
        assert result.achieved_tps < 0.9 * result.offered
        assert result.censored + result.backlog_end > 0
        assert result.queue_depth_peak > 0
        # Queueing delay inflates CO latency above pure service time.
        assert result.co.percentile(99) > result.service.percentile(99)

    def test_light_load_keeps_up(self):
        result = _point(offered=150_000.0)
        assert result.intended == result.completed + result.unknown + result.censored
        assert result.achieved_tps > 0.7 * result.offered
        assert result.backlog_end <= 2

    def test_summary_is_json_shaped(self):
        summary = _point(offered=150_000.0, duration=3e-3).summary()
        for key in (
            "offered_tps",
            "achieved_tps",
            "commits",
            "censored",
            "co_p99_us",
            "service_p99_us",
            "queue_depth_peak",
            "backlog_end",
        ):
            assert key in summary


class TestDeterminism:
    def test_same_seed_same_point(self):
        first = _point(offered=300_000.0).summary()
        second = _point(offered=300_000.0).summary()
        assert first == second
