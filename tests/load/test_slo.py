"""SLO monitor and workload invariants: unit-level behaviour.

The ticker is a plain generator over ``sim.timeout``, so these tests
drive it with a stub simulator — no cluster needed — and the invariant
monitors are fed synthetic commit acknowledgements.
"""

from types import SimpleNamespace

import pytest

from repro.load import ConservationMonitor, OrderIdMonitor, SloMonitor


class _StubSim:
    def __init__(self):
        self.now = 0.0

    def timeout(self, delay):
        # The stub advances time eagerly; the generator's yield value
        # is never inspected by the ticker.
        self.now += delay
        return delay


class _StubEngine:
    def __init__(self):
        self.sim = _StubSim()
        self._queue = [1, 2, 3]
        self._busy = {1: None}


def _start(slo, engine):
    """Prime the ticker to its first yield (the pending timeout)."""
    generator = slo.ticker(engine)
    next(generator)
    return generator


def _tick(generator):
    """Fire the pending timeout: runs one tick body, stops at the next."""
    next(generator)


class TestSloMonitor:
    def test_gauges_follow_the_rolling_window(self):
        slo = SloMonitor(window=1.0, interval=1e-3)
        engine = _StubEngine()
        slo.observe(0.0, 10e-6, committed=True)
        slo.observe(0.0, 90e-6, committed=False)
        ticker = _start(slo, engine)
        _tick(ticker)
        assert slo.ticks == 1
        assert slo.registry.gauge("load.win_p99_us").value == pytest.approx(90.0)
        assert slo.registry.gauge("load.win_abort_rate").value == 0.5
        assert slo.registry.gauge("load.queue_depth").value == 3
        assert slo.registry.gauge("load.inflight").value == 1

    def test_breaches_counted_against_targets(self):
        slo = SloMonitor(
            window=1.0, interval=1e-3, p99_target=50e-6, abort_rate_target=0.25
        )
        engine = _StubEngine()
        slo.observe(0.0, 90e-6, committed=False)
        ticker = _start(slo, engine)
        _tick(ticker)
        _tick(ticker)
        assert slo.breaches == {"latency": 2, "abort_rate": 2}

    def test_no_breach_when_within_targets(self):
        slo = SloMonitor(
            window=1.0, interval=1e-3, p99_target=50e-6, abort_rate_target=0.25
        )
        engine = _StubEngine()
        slo.observe(0.0, 10e-6, committed=True)
        ticker = _start(slo, engine)
        _tick(ticker)
        assert slo.breaches == {"latency": 0, "abort_rate": 0}

    def test_old_samples_fall_out_of_the_window(self):
        slo = SloMonitor(window=1e-3, interval=5e-3, p99_target=50e-6)
        engine = _StubEngine()
        # Observed at t=0; the first tick happens at t=5ms, far past
        # the 1ms window, so the stale breach-worthy sample is gone.
        slo.observe(0.0, 90e-6, committed=True)
        ticker = _start(slo, engine)
        _tick(ticker)
        assert slo.breaches["latency"] == 0
        assert slo.registry.gauge("load.win_p99_us").value == 0.0

    def test_progress_callback_receives_a_line(self):
        lines = []
        slo = SloMonitor(window=1.0, interval=1e-3, progress=lines.append)
        ticker = _start(slo, _StubEngine())
        _tick(ticker)
        assert len(lines) == 1
        assert "win_p99" in lines[0]


class _StubBalanceWorkload:
    """total_balance returns the next scripted value per call."""

    def __init__(self, *values):
        self._values = list(values)

    def total_balance(self, catalog, memory_nodes):
        return self._values.pop(0)


_STUB_CLUSTER = SimpleNamespace(catalog=None, memory_nodes=None)


class TestConservationMonitor:
    def test_unattached_monitor_reports_itself(self):
        monitor = ConservationMonitor(_StubBalanceWorkload())
        assert monitor.check_final(_STUB_CLUSTER) == [
            "LOAD-CONSERVE monitor was never attached"
        ]

    def test_conserved_balance_is_clean(self):
        monitor = ConservationMonitor(_StubBalanceWorkload(1_000, 1_000))
        monitor.attach(_STUB_CLUSTER)
        assert monitor.check_final(_STUB_CLUSTER) == []

    def test_drifted_balance_is_flagged(self):
        monitor = ConservationMonitor(_StubBalanceWorkload(1_000, 993))
        monitor.attach(_STUB_CLUSTER)
        problems = monitor.check_final(_STUB_CLUSTER)
        assert len(problems) == 1
        assert "LOAD-CONSERVE" in problems[0]
        assert "delta -7" in problems[0]


def _new_order_ack(w, d, o_id):
    return SimpleNamespace(value={"kind": "new_order", "w": w, "d": d, "o_id": o_id})


class TestOrderIdMonitor:
    def test_duplicate_order_id_is_a_lost_update(self):
        monitor = OrderIdMonitor(workload=None)
        monitor.on_commit(None, _new_order_ack(0, 1, 5), now=1e-3)
        monitor.on_commit(None, _new_order_ack(0, 1, 6), now=2e-3)
        monitor.on_commit(None, _new_order_ack(0, 1, 5), now=3e-3)
        assert len(monitor.violations) == 1
        assert "duplicate o_id 5" in monitor.violations[0]

    def test_distinct_districts_do_not_collide(self):
        monitor = OrderIdMonitor(workload=None)
        monitor.on_commit(None, _new_order_ack(0, 1, 5), now=1e-3)
        monitor.on_commit(None, _new_order_ack(0, 2, 5), now=2e-3)
        monitor.on_commit(None, _new_order_ack(1, 1, 5), now=3e-3)
        assert monitor.violations == []

    def test_non_new_order_acks_are_ignored(self):
        monitor = OrderIdMonitor(workload=None)
        monitor.on_commit(None, SimpleNamespace(value=42), now=1e-3)
        monitor.on_commit(None, SimpleNamespace(value={"kind": "payment"}), now=2e-3)
        assert monitor.violations == []
