"""Consistency oracles under open-loop traffic with a mid-run crash.

The load observatory's claim is that it can *catch protocol bugs while
traffic is live*, not just draw latency curves. FORD-style logging
(committed data reachable only through coordinator-private logs) leaves
orphan log records when a compute node dies and is replaced, and the
chaos oracle flags them; Pandora's recovery path cleans them up. The
same schedule must therefore fire for ford and stay clean for pandora
— a one-sided check would also pass for an oracle that never fires.
"""

from repro.load import ConservationMonitor, OrderIdMonitor, run_load_point
from repro.workloads import SmallBank, TpcC


def _conserving_smallbank():
    return SmallBank(accounts=1_000, hot_accounts=200, conserving_only=True)


def _crash_point(protocol):
    return run_load_point(
        protocol,
        _conserving_smallbank,
        400_000.0,
        duration=14e-3,
        warmup=2e-3,
        users=64,
        check_oracle=True,
        crash_compute=[(0, 6e-3)],
        restart_failed_after=2e-3,
        monitor_factory=lambda workload: [ConservationMonitor(workload)],
    )


class TestOracleUnderLoad:
    def test_ford_crash_leaves_oracle_violations(self):
        result = _crash_point("ford")
        assert result.violations
        assert any("CHAOS-" in violation for violation in result.violations)

    def test_pandora_same_schedule_is_clean(self):
        result = _crash_point("pandora")
        assert result.violations == []
        assert result.commits > 0

    def test_conservation_monitor_holds_without_faults(self):
        result = run_load_point(
            "pandora",
            _conserving_smallbank,
            200_000.0,
            duration=5e-3,
            warmup=1e-3,
            users=64,
            check_oracle=True,
            monitor_factory=lambda workload: [ConservationMonitor(workload)],
        )
        assert result.violations == []
        assert result.commits > 0

    def test_order_id_monitor_holds_under_tpcc_traffic(self):
        result = run_load_point(
            "pandora",
            lambda: TpcC(warehouses=1, customers_per_district=30, items=200),
            60_000.0,
            duration=5e-3,
            warmup=1e-3,
            users=32,
            monitor_factory=lambda workload: [OrderIdMonitor(workload)],
        )
        assert result.violations == []
        assert result.commits > 0
