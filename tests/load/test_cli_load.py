"""CLI surface: ``repro load`` and ``repro obs-report --compare``."""

import json

import pytest

from repro.cli import main
from repro.obs.report import compare_snapshots


def _run_load(tmp_path, *extra):
    return main(
        [
            "load",
            "--offered",
            "150000",
            "--protocols",
            "ford",
            "--duration-ms",
            "4",
            "--users",
            "32",
            *extra,
        ]
    )


class TestLoadCommand:
    def test_single_point_prints_a_curve_table(self, tmp_path, capsys):
        assert _run_load(tmp_path) == 0
        out = capsys.readouterr().out
        assert "ford" in out
        assert "co_p99us" in out
        assert "offered" in out

    def test_snapshot_baseline_roundtrip_and_html(self, tmp_path, capsys, monkeypatch):
        # Route BENCH_<name>.json into tmp_path so the committed
        # results directory is untouched.
        monkeypatch.setattr(
            "repro.bench.report.results_dir", lambda: str(tmp_path)
        )
        html = tmp_path / "curves.html"
        assert _run_load(tmp_path, "--snapshot", "LOADTEST", "--html", str(html)) == 0
        snapshot = tmp_path / "BENCH_LOADTEST.json"
        assert snapshot.exists()
        payload = json.loads(snapshot.read_text())
        assert payload["schema"] == "load/1"
        assert "ford" in payload["curves"]
        text = html.read_text()
        assert "<svg" in text
        assert "ford" in text
        # The identical seeded run gates cleanly against its own snapshot.
        assert _run_load(tmp_path, "--baseline", str(snapshot)) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_baseline_regression_fails(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.report.results_dir", lambda: str(tmp_path)
        )
        assert _run_load(tmp_path, "--snapshot", "LOADTEST") == 0
        snapshot = tmp_path / "BENCH_LOADTEST.json"
        payload = json.loads(snapshot.read_text())
        point = payload["curves"]["ford"]["points"][0]
        point["achieved_tps"] = point["achieved_tps"] * 4
        point["commits"] += 1
        snapshot.write_text(json.dumps(payload))
        capsys.readouterr()
        assert _run_load(tmp_path, "--baseline", str(snapshot)) == 1
        out = capsys.readouterr().out
        assert "load regression vs baseline" in out
        assert "seeded behaviour drift" in out

    def test_unknown_workload_is_a_clean_error(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["load", "--workload", "nope", "--offered", "1000"])


class TestObsReportCompare:
    def _snapshot(self, tmp_path, name, achieved, commits):
        payload = {
            "schema": "load/1",
            "curves": {
                "pandora": {
                    "knee_offered_tps": None,
                    "points": [
                        {
                            "offered_tps": 100_000.0,
                            "achieved_tps": achieved,
                            "co_p50_us": 10.0,
                            "co_p99_us": 40.0,
                            "abort_rate": 0.1,
                            "commits": commits,
                        }
                    ],
                }
            },
        }
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_compare_prints_delta_table(self, tmp_path, capsys):
        a = self._snapshot(tmp_path, "a.json", achieved=90_000.0, commits=900)
        b = self._snapshot(tmp_path, "b.json", achieved=99_000.0, commits=990)
        assert main(["obs-report", "--compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "load snapshot delta" in out
        assert "+10.0%" in out

    def test_compare_steady_state_payloads(self, capsys):
        before = {"throughput_tps": 100.0, "p99_latency_us": 50.0, "commits": 10}
        after = {"throughput_tps": 80.0, "p99_latency_us": 60.0, "commits": 10}
        text = compare_snapshots(before, after)
        assert "bench snapshot delta" in text
        assert "-20.0%" in text
        assert "+20.0%" in text
        assert "+0.0%" in text

    def test_obs_report_without_paths_or_compare_errors(self):
        with pytest.raises(SystemExit, match="needs TRACE.jsonl paths"):
            main(["obs-report"])
