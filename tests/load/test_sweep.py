"""Sweep plumbing: grids, knee detection, payloads, and the CI gate."""

import copy

import pytest

from repro.load import (
    DEFAULT_TOLERANCE,
    LoadCurve,
    LoadResult,
    compare_to_baseline,
    default_offered_grid,
    format_curves,
    sweep_payload,
)


def _result(offered, commits, duration=1.0):
    result = LoadResult("pandora", "smallbank", "poisson", offered, duration)
    result.intended = commits
    result.completed = commits
    result.commits = commits
    for _ in range(4):
        result.co.add(20e-6)
        result.service.add(10e-6)
    return result


def _curve(points):
    curve = LoadCurve("pandora", "smallbank", "poisson")
    curve.points = [_result(offered, commits) for offered, commits in points]
    return curve


class TestGridAndKnee:
    def test_default_grid_scales_capacity(self):
        assert default_offered_grid(100_000.0, (0.5, 1.0, 1.4)) == [
            50_000.0,
            100_000.0,
            140_000.0,
        ]

    def test_default_grid_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            default_offered_grid(0.0)

    def test_knee_is_first_point_below_90_percent(self):
        curve = _curve([(100, 99), (200, 195), (300, 250), (400, 240)])
        assert curve.knee_offered_tps == 300

    def test_knee_absent_when_system_keeps_up(self):
        curve = _curve([(100, 99), (200, 198)])
        assert curve.knee_offered_tps is None


class TestPayloadAndGate:
    def _payload(self):
        return sweep_payload(
            [_curve([(100, 99), (300, 250)])], tolerance=DEFAULT_TOLERANCE
        )

    def test_payload_shape(self):
        payload = self._payload()
        assert payload["schema"] == "load/1"
        assert payload["tolerance"] == DEFAULT_TOLERANCE
        assert payload["workload"] == "smallbank"
        curve = payload["curves"]["pandora"]
        assert curve["knee_offered_tps"] == 300
        assert [point["offered_tps"] for point in curve["points"]] == [100, 300]

    def test_identical_payloads_pass_the_gate(self):
        payload = self._payload()
        assert compare_to_baseline(payload, copy.deepcopy(payload)) == []

    def test_throughput_floor_failure(self):
        current, baseline = self._payload(), self._payload()
        point = current["curves"]["pandora"]["points"][0]
        point["achieved_tps"] = point["achieved_tps"] * 0.5
        failures = compare_to_baseline(current, baseline)
        assert any("achieved" in failure for failure in failures)

    def test_latency_ceiling_failure(self):
        current, baseline = self._payload(), self._payload()
        point = current["curves"]["pandora"]["points"][0]
        point["co_p99_us"] = point["co_p99_us"] * 10
        failures = compare_to_baseline(current, baseline)
        assert any("co_p99" in failure for failure in failures)

    def test_commit_drift_is_flagged_even_within_tolerance(self):
        # A 1-commit delta is nowhere near the throughput floor, but
        # seeded virtual time means it still signals behaviour change.
        current, baseline = self._payload(), self._payload()
        current["curves"]["pandora"]["points"][0]["commits"] += 1
        failures = compare_to_baseline(current, baseline)
        assert any("seeded behaviour drift" in failure for failure in failures)

    def test_missing_protocol_and_point_are_flagged(self):
        baseline = self._payload()
        assert compare_to_baseline({"curves": {}}, baseline) == [
            "pandora: missing from current sweep"
        ]
        current = self._payload()
        current["curves"]["pandora"]["points"].pop()
        failures = compare_to_baseline(current, baseline)
        assert any("point missing" in failure for failure in failures)

    def test_tolerance_override_beats_baseline_field(self):
        current, baseline = self._payload(), self._payload()
        point = current["curves"]["pandora"]["points"][0]
        point["achieved_tps"] = point["achieved_tps"] * 0.9
        assert compare_to_baseline(current, baseline) == []
        assert compare_to_baseline(current, baseline, tolerance=0.05)


class TestRendering:
    def test_format_curves_mentions_protocol_and_knee(self):
        text = format_curves([_curve([(100, 99), (300, 250)])])
        assert "pandora" in text
        assert "knee: 300" in text
        assert "co_p99us" in text

    def test_format_curves_lists_violations(self):
        curve = _curve([(100, 99)])
        curve.points[0].violations.append("[CHAOS-LOG] orphan records")
        text = format_curves([curve])
        assert "CHAOS-LOG" in text
