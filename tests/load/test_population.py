"""User population: skew, sessions, and seed determinism."""

import pytest

from repro.load.population import UserPopulation
from repro.workloads import SmallBank


def _population(seed=0, users=100, theta=0.99, session_length=5.0):
    return UserPopulation(
        SmallBank(accounts=200),
        users=users,
        zipf_theta=theta,
        session_length=session_length,
        seed=seed,
    )


class TestDeterminism:
    def test_same_seed_same_request_stream(self):
        a, b = _population(seed=7), _population(seed=7)
        users_a = [a.next_request(i * 1e-5).user for i in range(300)]
        users_b = [b.next_request(i * 1e-5).user for i in range(300)]
        assert users_a == users_b
        assert a.sessions_started == b.sessions_started
        assert a.active_sessions == b.active_sessions

    def test_different_seed_different_stream(self):
        a, b = _population(seed=7), _population(seed=8)
        users_a = [a.next_request(0.0).user for _ in range(300)]
        users_b = [b.next_request(0.0).user for _ in range(300)]
        assert users_a != users_b


class TestSkewAndSessions:
    def test_zipf_skew_concentrates_on_hot_users(self):
        population = _population(users=100, theta=0.99)
        counts = {}
        for _ in range(5_000):
            user = population.next_request(0.0).user
            counts[user] = counts.get(user, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        median = ordered[len(ordered) // 2]
        assert ordered[0] > 5 * max(1, median)

    def test_sessions_are_evicted_when_exhausted(self):
        # session_length=1 forces most sessions to be a single request,
        # so active session state stays tiny while ordinals advance.
        population = _population(users=10, session_length=1.0)
        for _ in range(200):
            population.next_request(0.0)
        assert population.active_sessions <= 10
        assert population.sessions_started > 100

    def test_request_carries_intended_time(self):
        population = _population()
        request = population.next_request(0.0425)
        assert request.intended == 0.0425
        assert request.dispatched is None
        assert request.completed is None
        assert callable(request.logic)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            _population(users=0)
        with pytest.raises(ValueError):
            _population(session_length=0.5)
