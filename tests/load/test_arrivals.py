"""Arrival processes: rate accuracy, shape, and determinism.

Every process is parameterised by the *mean* offered rate, so the
first thing each shape test pins down is that the long-run average
matches — a bursty or diurnal process that quietly offers a different
rate would make sweep points incomparable across --arrivals choices.
"""

import math
import random

import pytest

from repro.load.arrivals import (
    ARRIVAL_KINDS,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
    make_arrivals,
)

RATE = 50_000.0
START = 1.0
WINDOW = 0.2


def _collect(process, rate=RATE, start=START, end=START + WINDOW, seed=3):
    return list(process.times(rate, start, end, random.Random(seed)))


def _bin_counts(times, start=START, end=START + WINDOW, bins=200):
    width = (end - start) / bins
    counts = [0] * bins
    for t in times:
        counts[min(bins - 1, int((t - start) / width))] += 1
    return counts


class TestShapes:
    @pytest.mark.parametrize(
        "process", [PoissonArrivals(), MmppArrivals(), DiurnalArrivals()]
    )
    def test_mean_rate_matches_offered(self, process):
        times = _collect(process)
        expected = RATE * WINDOW
        assert abs(len(times) - expected) < 0.10 * expected

    @pytest.mark.parametrize(
        "process", [PoissonArrivals(), MmppArrivals(), DiurnalArrivals()]
    )
    def test_times_strictly_increasing_within_window(self, process):
        times = _collect(process)
        assert all(b > a for a, b in zip(times, times[1:]))
        assert times[0] >= START
        assert times[-1] < START + WINDOW

    @pytest.mark.parametrize(
        "process", [PoissonArrivals(), MmppArrivals(), DiurnalArrivals()]
    )
    def test_deterministic_under_seed(self, process):
        assert _collect(process, seed=9) == _collect(process, seed=9)
        assert _collect(process, seed=9) != _collect(process, seed=10)

    def test_mmpp_is_overdispersed_vs_poisson(self):
        # Index of dispersion (var/mean of per-bin counts) is ~1 for a
        # Poisson stream; phase switching pushes the MMPP's well above.
        poisson_counts = _bin_counts(_collect(PoissonArrivals()))
        bursty_counts = _bin_counts(_collect(MmppArrivals(burst_factor=1.9)))

        def dispersion(counts):
            mean = sum(counts) / len(counts)
            var = sum((c - mean) ** 2 for c in counts) / len(counts)
            return var / mean

        assert dispersion(poisson_counts) < 1.5
        assert dispersion(bursty_counts) > 1.5

    def test_diurnal_peaks_mid_window(self):
        # periods=1 puts the trough at the edges and the peak at the
        # middle; peak_to_trough=4 means a 4x count ratio in the limit.
        counts = _bin_counts(_collect(DiurnalArrivals(peak_to_trough=4.0)), bins=5)
        assert counts[2] > 2.0 * counts[0]
        assert counts[2] > 2.0 * counts[4]

    def test_diurnal_rate_at_averages_to_rate(self):
        process = DiurnalArrivals(peak_to_trough=4.0, periods=2.0)
        samples = 10_000
        mean = (
            sum(process.rate_at(RATE, i / samples) for i in range(samples)) / samples
        )
        assert math.isclose(mean, RATE, rel_tol=1e-3)


class TestValidation:
    @pytest.mark.parametrize(
        "process", [PoissonArrivals(), MmppArrivals(), DiurnalArrivals()]
    )
    def test_rejects_bad_rate_and_window(self, process):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            next(process.times(0.0, 0.0, 1.0, rng))
        with pytest.raises(ValueError):
            next(process.times(100.0, 1.0, 1.0, rng))

    def test_mmpp_parameter_bounds(self):
        with pytest.raises(ValueError):
            MmppArrivals(burst_factor=2.0)
        with pytest.raises(ValueError):
            MmppArrivals(burst_factor=1.0)
        with pytest.raises(ValueError):
            MmppArrivals(dwell=0.0)

    def test_diurnal_parameter_bounds(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(peak_to_trough=0.5)
        with pytest.raises(ValueError):
            DiurnalArrivals(periods=0.0)


class TestRegistry:
    def test_make_arrivals_covers_every_kind(self):
        for kind, cls in ARRIVAL_KINDS.items():
            process = make_arrivals(kind)
            assert isinstance(process, cls)
            assert process.name == kind

    def test_make_arrivals_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("lunar")
