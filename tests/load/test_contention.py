"""Unit tests for the hot-key contention sweep plumbing.

The full five-protocol × three-skew sweep and its committed baseline
live in ``benchmarks/test_contention.py``; here the pieces are tested
fast: the workload factory's knobs, payload shape (render_load_html
compatible), the regression comparator's gates, and one tiny real
sweep point per zoo newcomer.
"""

import pytest

from repro.load import (
    CONTENTION_PROTOCOLS,
    CONTENTION_SCHEMA,
    CONTENTION_THETAS,
    compare_contention_to_baseline,
    contention_payload,
    contention_workload,
    format_contention,
    run_contention_sweep,
)


class TestWorkload:
    def test_factory_builds_the_paper_microbench(self):
        workload = contention_workload(1.2)
        assert workload.num_keys == 1_000
        assert workload.zipf_theta == 1.2
        assert workload.rmw  # RMW holds locks across round trips

    def test_zoo_is_fully_enumerated(self):
        assert set(CONTENTION_PROTOCOLS) == {
            "pandora",
            "ford",
            "tradlog",
            "lotus",
            "vote1pc",
        }
        assert len(CONTENTION_THETAS) == 3


class TestSweep:
    @pytest.fixture(scope="class")
    def curves(self):
        # One protocol per new lock/commit strategy, one skew, one
        # offered point: enough to exercise the whole pipeline fast.
        return run_contention_sweep(
            protocols=("lotus", "vote1pc"),
            thetas=(1.2,),
            grid=(150_000.0,),
            duration=2e-3,
            users=16,
        )

    def test_curves_cover_the_grid(self, curves):
        assert {(c.protocol, c.theta) for c in curves} == {
            ("lotus", 1.2),
            ("vote1pc", 1.2),
        }
        for curve in curves:
            assert curve.label == f"{curve.protocol} s=1.2"
            assert len(curve.points) == 1
            assert curve.points[0].commits > 0

    def test_payload_shape(self, curves):
        payload = contention_payload(curves)
        assert payload["schema"] == CONTENTION_SCHEMA
        for curve in curves:
            points = payload["curves"][curve.label]["points"]
            assert points[0]["offered_tps"] == 150_000.0
            assert "co_p99_us" in points[0]
            assert "abort_rate" in points[0]

    def test_identical_payloads_pass_the_gate(self, curves):
        payload = contention_payload(curves)
        assert compare_contention_to_baseline(payload, payload) == []

    def test_regressions_are_flagged(self, curves):
        payload = contention_payload(curves)
        import copy

        worse = copy.deepcopy(payload)
        for curve in worse["curves"].values():
            for point in curve["points"]:
                point["achieved_tps"] *= 0.5  # below the 25% floor
                point["co_p99_us"] *= 2.0  # above the 25% ceiling
                point["commits"] += 1  # exact-match gate
        failures = compare_contention_to_baseline(worse, payload)
        text = "\n".join(failures)
        assert "achieved" in text
        assert "co_p99" in text
        assert "commit count changed" in text

    def test_format_mentions_every_curve(self, curves):
        text = format_contention(curves)
        for curve in curves:
            assert curve.label in text
