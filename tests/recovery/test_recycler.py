"""Tests for coordinator-id recycling (§3.1.2)."""


from repro import Cluster, ClusterConfig
from repro.protocol.locks import encode_lock, is_locked
from repro.recovery.idalloc import IdAllocator
from repro.workloads import MicroBenchmark


def make_cluster(**overrides):
    defaults = dict(
        coordinators_per_node=2,
        seed=61,
        fd_timeout=2e-3,
        fd_heartbeat_interval=0.5e-3,
    )
    defaults.update(overrides)
    cluster = Cluster(
        ClusterConfig(**defaults),
        MicroBenchmark(num_keys=300, write_ratio=1.0, hot_keys=50),
    )
    cluster.start()
    return cluster


class TestRecyclerPass:
    def test_releases_stray_locks_and_recycles(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        # Manufacture a failed coordinator with stray locks on cold keys.
        dead_id = cluster.id_allocator.allocate()
        cluster.id_allocator.mark_failed(dead_id)
        catalog = cluster.catalog
        for key in (250, 260, 270):
            slot = catalog.slot_for(0, key)
            primary = catalog.primary(0, slot)
            cluster.memory_nodes[primary].slot(0, slot).lock = encode_lock(dead_id)
        for node in cluster.compute_nodes.values():
            node.add_failed_ids([dead_id])

        process = cluster.recycler.run_once()
        cluster.run(until=cluster.sim.now + 0.050)
        assert process.triggered
        assert cluster.recycler.locks_released == 3
        assert cluster.recycler.ids_recycled == 1
        for key in (250, 260, 270):
            slot = catalog.slot_for(0, key)
            primary = catalog.primary(0, slot)
            assert not is_locked(cluster.memory_nodes[primary].slot(0, slot).lock)

    def test_compute_nodes_forget_recycled_ids(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        dead_id = cluster.id_allocator.allocate()
        cluster.id_allocator.mark_failed(dead_id)
        for node in cluster.compute_nodes.values():
            node.add_failed_ids([dead_id])
        cluster.recycler.run_once()
        cluster.run(until=cluster.sim.now + 0.050)
        for node in cluster.compute_nodes.values():
            assert dead_id not in node.failed_ids

    def test_recycled_id_is_reallocated(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        dead_id = cluster.id_allocator.allocate()
        cluster.id_allocator.mark_failed(dead_id)
        cluster.recycler.run_once()
        cluster.run(until=cluster.sim.now + 0.050)
        assert cluster.id_allocator.allocate() == dead_id

    def test_noop_without_failed_ids(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        process = cluster.recycler.run_once()
        cluster.run(until=cluster.sim.now + 0.010)
        assert process.triggered
        assert cluster.recycler.ids_recycled == 0

    def test_live_locks_are_untouched(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        live_id = cluster.compute_nodes[0].coordinators[0].coord_id
        dead_id = cluster.id_allocator.allocate()
        cluster.id_allocator.mark_failed(dead_id)
        catalog = cluster.catalog
        slot = catalog.slot_for(0, 280)
        primary = catalog.primary(0, slot)
        word = encode_lock(live_id, tag=3)
        cluster.memory_nodes[primary].slot(0, slot).lock = word
        cluster.recycler.run_once()
        cluster.run(until=cluster.sim.now + 0.050)
        assert cluster.memory_nodes[primary].slot(0, slot).lock == word


class TestRecyclerTrigger:
    def test_watch_triggers_past_threshold(self):
        cluster = make_cluster()
        # Exhaust (nearly) the id space with already-failed ids.
        allocator = cluster.id_allocator
        small = IdAllocator(capacity=32, recycle_threshold=0.9)
        # Swap in a tiny allocator shared by the watch + recycler.
        cluster.id_allocator = small
        cluster.recycler.id_allocator = small
        for _ in range(30):
            small.mark_failed(small.allocate())
        assert small.needs_recycling
        cluster.run(until=0.060)
        assert cluster.recycler.runs >= 1
        assert not small.needs_recycling or small.consumed_ratio < 1.0
        assert cluster.recycler.ids_recycled == 30
