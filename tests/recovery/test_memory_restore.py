"""Re-replication of a restored memory server (§3.2.5)."""


from repro import Cluster, ClusterConfig
from repro.workloads import SmallBank
from repro.workloads.smallbank import INITIAL_BALANCE

ACCOUNTS = 300


def make_cluster():
    cluster = Cluster(
        ClusterConfig(
            memory_nodes=3,
            replication_degree=2,
            coordinators_per_node=3,
            seed=95,
            fd_timeout=2e-3,
            fd_heartbeat_interval=0.5e-3,
            fd_check_interval=0.25e-3,
        ),
        SmallBank(accounts=ACCOUNTS, conserving_only=True),
    )
    cluster.start()
    return cluster


class TestMemoryRestore:
    def test_restored_node_serves_again(self):
        cluster = make_cluster()
        cluster.crash_memory(0, at=0.008)
        cluster.run(until=0.020)
        assert 0 in cluster.placement.down_nodes
        cluster.restore_memory(0)
        cluster.run(until=0.040)
        assert 0 not in cluster.placement.down_nodes
        assert cluster.memory_nodes[0].alive

    def test_rereplication_copies_fresh_state(self):
        cluster = make_cluster()
        cluster.crash_memory(0, at=0.008)
        cluster.run(until=0.025)  # transfers happen while 0 is down
        cluster.restore_memory(0)
        cluster.run(until=0.050)
        # Quiesce and check the restored node matches its peers.
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.052)
        catalog = cluster.catalog
        for table_id in (0, 1):
            for account in range(ACCOUNTS):
                slot = catalog.slot_for(table_id, account)
                replicas = catalog.replicas(table_id, slot)
                if 0 not in replicas:
                    continue
                versions = {
                    cluster.memory_nodes[nid].slot(table_id, slot).version
                    for nid in replicas
                }
                assert len(versions) == 1, f"stale replica at {table_id}/{account}"

    def test_money_conserved_through_restore_cycle(self):
        cluster = make_cluster()
        workload = cluster.workload
        cluster.crash_memory(0, at=0.008)
        cluster.run(until=0.020)
        cluster.restore_memory(0)
        cluster.run(until=0.045)
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.047)
        total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
        assert total == 2 * ACCOUNTS * INITIAL_BALANCE

    def test_restore_is_stop_the_world(self):
        cluster = make_cluster()
        cluster.crash_memory(0, at=0.008)
        cluster.run(until=0.020)
        paused_seen = {}

        def probe():
            while True:
                if all(n.paused for n in cluster.compute_nodes.values()):
                    paused_seen["yes"] = cluster.sim.now
                yield cluster.sim.timeout(0.1e-3)

        cluster.sim.process(probe())
        cluster.restore_memory(0)
        cluster.run(until=0.040)
        assert "yes" in paused_seen
        assert not any(n.paused for n in cluster.compute_nodes.values())

    def test_restore_record_tracks_bytes(self):
        cluster = make_cluster()
        cluster.crash_memory(0, at=0.008)
        cluster.run(until=0.020)
        cluster.restore_memory(0)
        cluster.run(until=0.040)
        records = [r for r in cluster.recovery.records if r.kind == "memory-restore"]
        assert len(records) == 1
        assert records[0].scanned_slots > 0  # bytes copied

    def test_restore_alive_node_is_noop(self):
        cluster = make_cluster()
        assert cluster.recovery.restore_memory_node(cluster.memory_nodes[0]) is None
