"""Tests for the recovery manager: the four-step protocol of §3.2.2."""


from repro import Cluster, ClusterConfig
from repro.memory.node import LogRecord
from repro.protocol.locks import encode_lock, is_locked
from repro.workloads import MicroBenchmark


def make_cluster(protocol="pandora", **overrides):
    defaults = dict(
        coordinators_per_node=4,
        seed=31,
        protocol=protocol,
        fd_timeout=2e-3,
        fd_heartbeat_interval=0.5e-3,
        fd_check_interval=0.25e-3,
    )
    defaults.update(overrides)
    workload = MicroBenchmark(num_keys=400, write_ratio=1.0, hot_keys=100)
    cluster = Cluster(ClusterConfig(**defaults), workload)
    cluster.start()
    return cluster


class TestComputeRecoverySteps:
    def test_four_steps_in_order(self):
        cluster = make_cluster()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.040)
        record = cluster.recovery.records[0]
        assert record.kind == "compute"
        assert (
            record.detected_at
            <= record.fenced_at
            <= record.log_recovered_at
            <= record.notified_at
            <= record.finished_at
        )

    def test_links_revoked_before_log_recovery(self):
        cluster = make_cluster()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.040)
        for memory in cluster.memory_nodes.values():
            assert memory.is_revoked(0)

    def test_failed_ids_delivered_to_live_nodes(self):
        cluster = make_cluster()
        failed_ids = set(cluster.compute_nodes[0].coordinator_ids())
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.040)
        survivor = cluster.compute_nodes[1]
        assert failed_ids.issubset(set(survivor.failed_ids))

    def test_log_regions_truncated(self):
        cluster = make_cluster()
        coord_ids = cluster.compute_nodes[0].coordinator_ids()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.040)
        for coord_id in coord_ids:
            for node_id in cluster.catalog.log_nodes(coord_id):
                region = cluster.memory_nodes[node_id].log_regions.get(coord_id)
                if region is not None:
                    assert region.valid_records() == []

    def test_recovery_latency_is_milliseconds(self):
        """Table 2's headline: log recovery completes in ms, not s."""
        cluster = make_cluster()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.060)
        record = cluster.recovery.records[0]
        assert record.log_recovery_latency < 10e-3

    def test_survivors_never_pause_under_pill(self):
        """Non-blocking recovery: live nodes keep committing through
        the entire recovery window."""
        cluster = make_cluster()
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.040)
        record = cluster.recovery.records[0]
        during = cluster.timeline.rate_between(
            record.detected_at, record.finished_at + 1e-3
        )
        assert during > 0
        assert not cluster.compute_nodes[1].paused


class TestRollForwardCriterion:
    """Cor2/Cor3: roll forward iff every replica of every write is
    updated; otherwise roll back from the undo images."""

    def _plant_log(self, cluster, coord_id, entries, txn_id=7777):
        for node_id in cluster.catalog.log_nodes(coord_id):
            cluster.memory_nodes[node_id]._op_write_log(
                0, (LogRecord(coord_id=coord_id, txn_id=txn_id, entries=entries),)
            )

    def _slot_entry(self, cluster, key):
        catalog = cluster.catalog
        slot = catalog.slot_for(0, key)
        return slot, catalog.replicas(0, slot)

    def test_fully_applied_txn_rolls_forward(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        coord = cluster.compute_nodes[0].coordinators[0]
        slot, replicas = self._slot_entry(cluster, 350)
        # Apply the "new" version everywhere and leave the lock held.
        base = cluster.memory_nodes[replicas[0]].slot(0, slot).version
        for node_id in replicas:
            entry = cluster.memory_nodes[node_id].slot(0, slot)
            entry.version = base + 1
            entry.value = "new-value"
        primary = cluster.catalog.primary(0, slot)
        cluster.memory_nodes[primary].slot(0, slot).lock = encode_lock(coord.coord_id)
        self._plant_log(
            cluster,
            coord.coord_id,
            ((0, slot, 350, base, base + 1, "old-value", "new-value", True, True),),
        )
        cluster.crash_compute(0)
        cluster.run(until=0.040)
        record = cluster.recovery.records[0]
        assert record.rolled_forward >= 1
        # The update survives and the stray lock is released.
        entry = cluster.memory_nodes[primary].slot(0, slot)
        assert entry.value == "new-value"
        assert not is_locked(entry.lock)

    def test_partially_applied_txn_rolls_back(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        coord = cluster.compute_nodes[0].coordinators[0]
        slot, replicas = self._slot_entry(cluster, 350)
        base = cluster.memory_nodes[replicas[0]].slot(0, slot).version
        # Apply the new version on the primary ONLY (partial commit).
        primary = cluster.catalog.primary(0, slot)
        entry = cluster.memory_nodes[primary].slot(0, slot)
        entry.version = base + 1
        entry.value = "new-value"
        entry.lock = encode_lock(coord.coord_id)
        self._plant_log(
            cluster,
            coord.coord_id,
            ((0, slot, 350, base, base + 1, "old-value", "new-value", True, True),),
        )
        cluster.crash_compute(0)
        cluster.run(until=0.040)
        record = cluster.recovery.records[0]
        assert record.rolled_back >= 1
        # The undo image is restored on the updated replica.
        entry = cluster.memory_nodes[primary].slot(0, slot)
        assert entry.value == "old-value"
        assert entry.version == base
        assert not is_locked(entry.lock)

    def test_multi_object_partial_rolls_back_all(self):
        cluster = make_cluster()
        cluster.run(until=0.002)
        coord = cluster.compute_nodes[0].coordinators[0]
        slot_a, replicas_a = self._slot_entry(cluster, 351)
        slot_b, _replicas_b = self._slot_entry(cluster, 352)
        base_a = cluster.memory_nodes[replicas_a[0]].slot(0, slot_a).version
        base_b = cluster.memory_nodes[
            cluster.catalog.primary(0, slot_b)
        ].slot(0, slot_b).version
        # A fully applied, B untouched -> the whole txn must roll back.
        for node_id in replicas_a:
            entry = cluster.memory_nodes[node_id].slot(0, slot_a)
            entry.version = base_a + 1
            entry.value = "A-new"
        self._plant_log(
            cluster,
            coord.coord_id,
            (
                (0, slot_a, 351, base_a, base_a + 1, "A-old", "A-new", True, True),
                (0, slot_b, 352, base_b, base_b + 1, "B-old", "B-new", True, True),
            ),
        )
        cluster.crash_compute(0)
        cluster.run(until=0.040)
        for node_id in replicas_a:
            assert cluster.memory_nodes[node_id].slot(0, slot_a).value == "A-old"


class TestIdempotentRecovery:
    def test_log_recovery_reexecution_is_safe(self):
        """§3.2.3: any recovery step can be re-executed."""
        cluster = make_cluster()
        cluster.run(until=0.002)
        coord = cluster.compute_nodes[0].coordinators[0]
        catalog = cluster.catalog
        slot = catalog.slot_for(0, 350)
        primary = catalog.primary(0, slot)
        base = cluster.memory_nodes[primary].slot(0, slot).version
        entry = cluster.memory_nodes[primary].slot(0, slot)
        entry.version = base + 1
        entry.value = "new-value"
        entry.lock = encode_lock(coord.coord_id)
        for node_id in catalog.log_nodes(coord.coord_id):
            cluster.memory_nodes[node_id]._op_write_log(
                0,
                (
                    LogRecord(
                        coord_id=coord.coord_id,
                        txn_id=1,
                        entries=(
                            (0, slot, 350, base, base + 1, "old", "new-value", True, True),
                        ),
                    ),
                ),
            )
        cluster.crash_compute(0)
        cluster.run(until=0.040)
        value_after_first = cluster.memory_nodes[primary].slot(0, slot).value

        # Re-run the whole compute recovery once more.
        cluster.recovery._in_progress.discard(("compute", 0))
        cluster.recovery.handle_compute_failure(cluster.compute_nodes[0])
        cluster.run(until=0.080)
        assert cluster.memory_nodes[primary].slot(0, slot).value == value_after_first
        assert len(cluster.recovery.records) == 2


class TestScanRecovery:
    def test_baseline_pauses_survivors(self):
        cluster = make_cluster(protocol="baseline", drain_delay=1e-3)
        paused_seen = {}

        def probe():
            while True:
                if cluster.compute_nodes[1].paused:
                    paused_seen["yes"] = cluster.sim.now
                yield cluster.sim.timeout(0.2e-3)

        cluster.sim.process(probe())
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.080)
        assert "yes" in paused_seen  # stop-the-world happened
        assert not cluster.compute_nodes[1].paused  # and was lifted

    def test_scan_releases_stray_locks(self):
        cluster = make_cluster(protocol="baseline")
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.120)
        record = cluster.recovery.records[0]
        assert record.scanned_slots > 0
        # After the scan no lock survives anywhere.
        total_locked = sum(
            len(memory.locked_slots(table_id))
            for memory in cluster.memory_nodes.values()
            for table_id in memory.tables
        )
        # Live coordinators may hold fresh locks mid-txn; quiesce first.
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=cluster.sim.now + 2e-3)
        total_locked = sum(
            len(memory.locked_slots(table_id))
            for memory in cluster.memory_nodes.values()
            for table_id in memory.tables
        )
        assert total_locked == 0

    def test_scan_recovery_is_orders_of_magnitude_slower(self):
        pill = make_cluster(protocol="pandora")
        scan = make_cluster(protocol="baseline")
        for cluster in (pill, scan):
            cluster.crash_compute(0, at=0.010)
            cluster.run(until=0.200)
        pill_latency = pill.recovery.records[0].log_recovery_latency
        scan_latency = scan.recovery.records[0].log_recovery_latency
        assert scan_latency > 10 * pill_latency


class TestMemoryFailure:
    def test_memory_failure_promotes_new_primaries(self):
        cluster = make_cluster(memory_nodes=3, replication_degree=2)
        victim = 0
        cluster.crash_memory(victim, at=0.010)
        cluster.run(until=0.060)
        assert victim in cluster.placement.down_nodes
        # Every slot still has a live primary.
        for key in range(400):
            slot = cluster.catalog.slot_for(0, key)
            assert cluster.catalog.primary(0, slot) != victim

    def test_throughput_recovers_after_memory_failure(self):
        cluster = make_cluster(memory_nodes=3, replication_degree=2)
        cluster.crash_memory(0, at=0.020)
        cluster.run(until=0.080)
        post = cluster.timeline.rate_between(0.050, 0.080)
        assert post > 0

    def test_compute_side_decision_rule(self):
        """In-flight txns at the moment of a memory failure either
        commit (all live replicas updated) or roll back — afterwards
        all live replicas agree."""
        cluster = make_cluster(memory_nodes=3, replication_degree=3)
        cluster.crash_memory(0, at=0.020)
        cluster.run(until=0.070)
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.072)
        catalog = cluster.catalog
        for key in range(400):
            slot = catalog.slot_for(0, key)
            values = {
                cluster.memory_nodes[node_id].slot(0, slot).version
                for node_id in catalog.replicas(0, slot)
                if cluster.memory_nodes[node_id].alive
            }
            assert len(values) == 1, f"replica divergence at key {key}"
