"""Tests for coordinator-id allocation and recycling (§3.1.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.locks import ANONYMOUS_OWNER, MAX_COORD_ID
from repro.recovery.idalloc import IdAllocator


class TestAllocation:
    def test_ids_are_unique_and_serial(self):
        allocator = IdAllocator()
        ids = [allocator.allocate() for _ in range(100)]
        assert ids == list(range(100))

    def test_exhaustion_raises(self):
        allocator = IdAllocator(capacity=4)
        for _ in range(4):
            allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_anonymous_owner_reserved(self):
        allocator = IdAllocator()
        with pytest.raises(ValueError):
            allocator.mark_failed(ANONYMOUS_OWNER)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            IdAllocator(capacity=0)


class TestFirstId:
    """The boundary knob: start serving ids partway up the space."""

    def test_serves_from_first_id(self):
        allocator = IdAllocator(first_id=MAX_COORD_ID - 2)
        assert [allocator.allocate() for _ in range(3)] == [
            MAX_COORD_ID - 2,
            MAX_COORD_ID - 1,
            MAX_COORD_ID,
        ]

    def test_never_mints_the_sentinel(self):
        # The very last legal id is MAX_COORD_ID = 0xFFFE; the next
        # allocation must exhaust, never hand out ANONYMOUS_OWNER.
        allocator = IdAllocator(first_id=MAX_COORD_ID)
        assert allocator.allocate() == MAX_COORD_ID
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_first_id_counts_as_consumed(self):
        allocator = IdAllocator(capacity=100, first_id=96)
        assert allocator.needs_recycling

    def test_invalid_first_id(self):
        with pytest.raises(ValueError):
            IdAllocator(first_id=-1)
        with pytest.raises(ValueError):
            IdAllocator(capacity=8, first_id=8)


class TestFailedIds:
    def test_mark_failed_tracks(self):
        allocator = IdAllocator()
        first = allocator.allocate()
        allocator.mark_failed(first)
        assert first in allocator.failed
        assert allocator.failed_ids() == [first]

    def test_recycling_threshold(self):
        allocator = IdAllocator(capacity=100, recycle_threshold=0.95)
        for _ in range(94):
            allocator.allocate()
        assert not allocator.needs_recycling
        allocator.allocate()
        assert allocator.needs_recycling


class TestRecycling:
    def test_recycled_ids_are_reused(self):
        allocator = IdAllocator(capacity=4)
        ids = [allocator.allocate() for _ in range(4)]
        allocator.mark_failed(ids[1])
        assert allocator.recycle([ids[1]]) == 1
        assert allocator.allocate() == ids[1]

    def test_only_failed_ids_recycle(self):
        allocator = IdAllocator()
        live = allocator.allocate()
        assert allocator.recycle([live]) == 0  # never marked failed

    def test_recycle_clears_failed_set(self):
        allocator = IdAllocator()
        coord = allocator.allocate()
        allocator.mark_failed(coord)
        allocator.recycle([coord])
        assert coord not in allocator.failed


@given(st.lists(st.sampled_from(["alloc", "fail", "recycle"]), max_size=300))
@settings(max_examples=50)
def test_never_hands_out_failed_unrecycled_id(operations):
    """Property: an id in the failed set is never re-allocated until
    it has gone through recycling — the invariant that keeps stray
    locks attributable (§3.1.2)."""
    allocator = IdAllocator(capacity=64)
    live = []
    failed = []
    for op in operations:
        if op == "alloc":
            try:
                coord = allocator.allocate()
            except RuntimeError:
                continue
            assert coord not in allocator.failed
            assert coord not in live
            live.append(coord)
        elif op == "fail" and live:
            coord = live.pop(0)
            allocator.mark_failed(coord)
            failed.append(coord)
        elif op == "recycle" and failed:
            coord = failed.pop(0)
            assert allocator.recycle([coord]) == 1
