"""Property tests for the vote1pc recovery decision (logless 1PC).

Mirror of ``test_rollforward_criterion.py`` for the zoo's logless
member: an interrupted vote1pc transaction leaves no log record — its
undo images and write-set manifest live only in the per-slot vote
shadows carried by each replica update. Recovery must re-derive the
decision from replica state alone: roll forward iff every manifest
address reached its new version on every live replica (only then could
the client have been acked), otherwise restore every updated replica
from its own shadow. Either way the post state must be all-new or
all-old on every replica, with every stray lock released and the
primary's shadow cleared.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, ClusterConfig
from repro.protocol.locks import encode_lock
from repro.workloads import MicroBenchmark

KEYS = 40
TXN_ID = 4242


def build_cluster(seed=71):
    cluster = Cluster(
        ClusterConfig(
            memory_nodes=3,
            replication_degree=2,
            compute_nodes=2,
            coordinators_per_node=1,
            protocol="vote1pc",
            seed=seed,
            fd_timeout=1e-3,
            fd_heartbeat_interval=0.3e-3,
            fd_check_interval=0.15e-3,
        ),
        MicroBenchmark(num_keys=KEYS, write_ratio=1.0),
    )
    cluster.start(run_coordinators=False)
    return cluster


@given(
    write_set_size=st.integers(1, 4),
    # Per object: which replicas the vote write reached before the
    # crash. Vote writes land primary-first, so "backup only" cannot
    # occur; "primary" models a crash between the two posts.
    applied_pattern=st.lists(
        st.sampled_from(["none", "primary", "all"]), min_size=4, max_size=4
    ),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_vote_recovery_leaves_all_or_nothing(write_set_size, applied_pattern, seed):
    cluster = build_cluster(seed=71)
    sim = cluster.sim
    sim.run(until=1e-3)
    coord = cluster.compute_nodes[0].coordinators[0]
    catalog = cluster.catalog
    rng = random.Random(seed)

    keys = rng.sample(range(KEYS), write_set_size)
    plan = []
    fully_applied = True
    any_shadow = False
    for index, key in enumerate(keys):
        slot = catalog.slot_for(0, key)
        replicas = list(catalog.replicas(0, slot))
        primary = catalog.primary(0, slot)
        base = cluster.memory_nodes[replicas[0]].slot(0, slot).version
        pattern = applied_pattern[index % len(applied_pattern)]
        if pattern == "none":
            applied = []
        elif pattern == "primary":
            applied = [primary]
        else:
            applied = replicas
        if set(applied) != set(replicas):
            fully_applied = False
        if applied:
            any_shadow = True
        plan.append((index, key, slot, base, applied, replicas, primary))

    # Every shadow carries the whole transaction's manifest.
    manifest = tuple((0, slot, base + 1) for _i, _k, slot, base, *_ in plan)
    for index, key, slot, base, applied, _replicas, primary in plan:
        shadow = (coord.coord_id, TXN_ID, base, ("old", key), True, manifest)
        for node_id in applied:
            cluster.memory_nodes[node_id]._op_vote_write(
                0, (0, slot, base + 1, ("new", key), True, shadow)
            )
        # The (about to fail) coordinator still holds the primary lock.
        cluster.memory_nodes[primary].slot(0, slot).lock = encode_lock(
            coord.coord_id, tag=index + 1
        )

    cluster.compute_nodes[0].crash()
    sim.run(until=sim.now + 20e-3)
    record = [r for r in cluster.recovery.records if r.kind == "compute"][0]

    # Decision matches the criterion: forward iff all replicas voted.
    if fully_applied:
        assert record.rolled_forward == 1 and record.rolled_back == 0
    elif any_shadow:
        assert record.rolled_back == 1 and record.rolled_forward == 0
    else:
        # Lock-phase only: nothing was applied anywhere, so there is
        # no transaction to decide — just locks to release.
        assert record.rolled_forward == 0 and record.rolled_back == 0

    # Atomicity: every replica of every object agrees, the state is
    # all-new or all-old, stray locks are gone, shadows are cleared.
    states = set()
    for _index, key, slot, _base, _applied, replicas, primary in plan:
        for node_id in replicas:
            entry = cluster.memory_nodes[node_id].slot(0, slot)
            states.add(entry.value[0] if isinstance(entry.value, tuple) else "old")
            assert entry.lock == 0
        assert cluster.memory_nodes[primary]._vote_shadows.get((0, slot)) is None
    assert len(states) == 1, f"mixed outcome: {states}"
    assert ("new" in states) == fully_applied
