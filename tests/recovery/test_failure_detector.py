"""Tests for the heartbeat failure detectors."""

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


def make_cluster(distributed=False, **overrides):
    config = ClusterConfig(
        coordinators_per_node=2,
        seed=21,
        distributed_fd=distributed,
        **overrides,
    )
    workload = MicroBenchmark(num_keys=200, write_ratio=1.0)
    cluster = Cluster(config, workload)
    cluster.start()
    return cluster


class TestStandaloneDetection:
    def test_detects_compute_crash_within_timeout_window(self):
        cluster = make_cluster(fd_timeout=5e-3)
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.030)
        detections = [d for d in cluster.fd.detections if d[1] == "compute"]
        assert len(detections) == 1
        detect_time = detections[0][0]
        # Timeout counts from the *last heartbeat*, which lands up to
        # one heartbeat interval before the crash.
        assert 0.010 + 5e-3 - 1.5e-3 <= detect_time <= 0.010 + 5e-3 + 3e-3

    def test_no_false_positives_without_failures(self):
        cluster = make_cluster()
        cluster.run(until=0.05)
        assert cluster.fd.detections == []

    def test_detects_memory_crash(self):
        cluster = make_cluster()
        cluster.crash_memory(0, at=0.010)
        cluster.run(until=0.030)
        kinds = [d[1] for d in cluster.fd.detections]
        assert "memory" in kinds

    def test_restarted_node_not_redetected(self):
        cluster = make_cluster(restart_failed_after=2e-3)
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.060)
        detections = [d for d in cluster.fd.detections if d[1] == "compute"]
        assert len(detections) == 1
        assert cluster.compute_nodes[0].alive


class TestDistributedDetection:
    def test_quorum_detection_adds_agreement_delay(self):
        standalone = make_cluster(fd_timeout=5e-3)
        quorum = make_cluster(
            distributed=True, fd_timeout=5e-3, fd_agreement_delay=2e-3
        )
        for cluster in (standalone, quorum):
            cluster.crash_compute(0, at=0.010)
            cluster.run(until=0.040)
        t_standalone = standalone.fd.detections[0][0]
        t_quorum = quorum.fd.detections[0][0]
        assert t_quorum > t_standalone

    def test_quorum_recovers_end_to_end_under_20ms(self):
        """§6.4: even with three FD replicas, recovery < 20 ms."""
        cluster = make_cluster(
            distributed=True, fd_timeout=5e-3, fd_agreement_delay=2e-3
        )
        cluster.crash_compute(0, at=0.010)
        cluster.run(until=0.060)
        record = cluster.recovery.records[0]
        assert record.finished_at - 0.010 < 20e-3

    def test_invalid_replica_count(self):
        from repro.recovery.distributed_fd import DistributedFailureDetector
        from repro.sim import Simulator

        with pytest.raises(ValueError):
            DistributedFailureDetector(Simulator(), replicas=2)

    def test_replica_sinks_are_independent(self):
        from repro.recovery.distributed_fd import DistributedFailureDetector
        from repro.sim import Simulator

        fd = DistributedFailureDetector(Simulator(), replicas=3)
        sinks = fd.heartbeat_sinks()
        assert len(sinks) == 3
        assert len({id(sink) for sink in sinks}) == 3


class TestFencing:
    def test_falsely_suspected_node_is_fenced(self):
        """Cor1: after active-link termination the suspected node's
        verbs fail, and it stops issuing transactions."""
        cluster = make_cluster(fd_timeout=5e-3)
        node = cluster.compute_nodes[0]
        # Simulate a network partition of heartbeats only: stop the
        # heartbeat process but keep the coordinators running.
        node._heartbeat_process.kill()
        node._heartbeat_process = None
        cluster.run(until=0.040)
        # The detector declared it failed and revoked its links...
        assert any(d[2] == 0 for d in cluster.fd.detections)
        assert all(
            memory.is_revoked(0) for memory in cluster.memory_nodes.values()
        )
        # ...and the node self-fenced rather than split-braining.
        assert node.fenced


class TestRedetection:
    """A dead node whose recovery itself died must be re-declared."""

    def _crash_and_kill_recovery(self, cluster, until=0.060):
        """Crash node 0 at 10ms and kill its recovery just after the
        fence step, mid-flight."""
        sim = cluster.sim
        recovery = cluster.recovery
        cluster.crash_compute(0, at=0.010)

        def assassin():
            while ("compute", 0) not in recovery._in_progress:
                yield sim.timeout(5e-6)
            yield sim.timeout(5e-6)
            assert recovery.kill_recovery("compute", 0)

        sim.process(assassin(), name="test-rc-assassin")
        cluster.run(until=until)

    def test_killed_recovery_heals_with_redetect(self):
        cluster = make_cluster(
            fd_timeout=5e-3, fd_redetect_interval=2e-3, restart_failed_after=2e-3
        )
        self._crash_and_kill_recovery(cluster)
        finished = [r for r in cluster.recovery.records if r.finished_at > 0]
        assert finished, "re-detection never restarted the killed recovery"
        # The full recovery marked every id failed and restarted the node.
        assert cluster.compute_nodes[0].alive
        redeclared = [d for d in cluster.fd.detections if d[1:] == ("compute", 0)]
        assert len(redeclared) >= 2

    def test_killed_recovery_stays_dead_without_redetect(self):
        cluster = make_cluster(
            fd_timeout=5e-3, fd_redetect_interval=None, restart_failed_after=2e-3
        )
        self._crash_and_kill_recovery(cluster)
        finished = [r for r in cluster.recovery.records if r.finished_at > 0]
        assert finished == []
        assert not cluster.compute_nodes[0].alive

    def test_redetect_is_rate_limited(self):
        """While a recovery is being re-run, no duplicate declarations
        pile up: re-declarations are spaced by the interval."""
        cluster = make_cluster(
            fd_timeout=5e-3, fd_redetect_interval=2e-3, restart_failed_after=2e-3
        )
        self._crash_and_kill_recovery(cluster)
        declared = sorted(
            d[0] for d in cluster.fd.detections if d[1:] == ("compute", 0)
        )
        assert all(b - a >= 2e-3 - 1e-9 for a, b in zip(declared, declared[1:]))

    def test_redetect_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            make_cluster(fd_redetect_interval=-1.0)

    def test_redetections_counted_separately(self):
        """Re-declarations land in fd.redetections (the first,
        ordinary declaration does not) so reports can surface them."""
        cluster = make_cluster(
            fd_timeout=5e-3, fd_redetect_interval=2e-3, restart_failed_after=2e-3
        )
        self._crash_and_kill_recovery(cluster)
        redetected = [
            r for r in cluster.fd.redetections if r[1:] == ("compute", 0)
        ]
        declared = [
            d for d in cluster.fd.detections if d[1:] == ("compute", 0)
        ]
        assert redetected
        assert len(declared) == len(redetected) + 1

    def test_redetections_surface_in_report(self):
        """The "redetect" tracer instant feeds the evaluation report's
        re-detection table."""
        from repro.obs import Obs
        from repro.obs.report import from_obs, redetection_counts

        config = ClusterConfig(
            coordinators_per_node=2,
            seed=21,
            fd_timeout=5e-3,
            fd_redetect_interval=2e-3,
            restart_failed_after=2e-3,
        )
        obs = Obs(trace=True)
        cluster = Cluster(
            config, MicroBenchmark(num_keys=200, write_ratio=1.0), obs=obs
        )
        cluster.start()
        self._crash_and_kill_recovery(cluster)
        rows = redetection_counts(from_obs(cluster.obs))
        assert rows, "no redetect instants reached the report"
        node_id, kind, count = rows[0]
        assert (node_id, kind) == (0, "compute")
        assert count == len(cluster.fd.redetections)

    def test_distributed_fd_redetects_too(self):
        cluster = make_cluster(
            distributed=True,
            fd_timeout=5e-3,
            fd_agreement_delay=1e-3,
            fd_redetect_interval=2e-3,
            restart_failed_after=2e-3,
        )
        self._crash_and_kill_recovery(cluster, until=0.080)
        finished = [r for r in cluster.recovery.records if r.finished_at > 0]
        assert finished
        assert cluster.compute_nodes[0].alive
