"""Property tests for the roll-forward/roll-back decision (Cor2/Cor3).

For an arbitrary partially-applied Logged-Stray-Tx, recovery must
either complete it on every replica or erase it from every replica —
never leave a mixed state — and the choice must be roll-forward iff
every replica of every written object was updated (only then could a
commit-ack have reached the client).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, ClusterConfig
from repro.memory.node import LogRecord
from repro.protocol.locks import encode_lock
from repro.workloads import MicroBenchmark

KEYS = 40


def build_cluster(seed=71):
    cluster = Cluster(
        ClusterConfig(
            memory_nodes=3,
            replication_degree=2,
            compute_nodes=2,
            coordinators_per_node=1,
            seed=seed,
            fd_timeout=1e-3,
            fd_heartbeat_interval=0.3e-3,
            fd_check_interval=0.15e-3,
        ),
        MicroBenchmark(num_keys=KEYS, write_ratio=1.0),
    )
    cluster.start(run_coordinators=False)
    return cluster


@given(
    write_set_size=st.integers(1, 4),
    # For each object: a bitmask of which replicas took the update.
    applied_pattern=st.lists(st.integers(0, 3), min_size=4, max_size=4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=30, deadline=None)
def test_recovery_leaves_all_or_nothing(write_set_size, applied_pattern, seed):
    cluster = build_cluster(seed=71)
    sim = cluster.sim
    sim.run(until=1e-3)
    coord = cluster.compute_nodes[0].coordinators[0]
    catalog = cluster.catalog
    rng = random.Random(seed)

    keys = rng.sample(range(KEYS), write_set_size)
    entries = []
    fully_applied = True
    for index, key in enumerate(keys):
        slot = catalog.slot_for(0, key)
        replicas = catalog.replicas(0, slot)
        base = cluster.memory_nodes[replicas[0]].slot(0, slot).version
        mask = applied_pattern[index % len(applied_pattern)]
        applied_any = False
        for bit, node_id in enumerate(replicas):
            if mask & (1 << bit):
                entry = cluster.memory_nodes[node_id].slot(0, slot)
                entry.version = base + 1
                entry.value = ("new", key)
                applied_any = True
            else:
                fully_applied = False
        # The primary lock is held by the (about to fail) coordinator.
        primary = catalog.primary(0, slot)
        cluster.memory_nodes[primary].slot(0, slot).lock = encode_lock(
            coord.coord_id, tag=index + 1
        )
        entries.append(
            (0, slot, key, base, base + 1, ("old", key), ("new", key), True, True)
        )

    record_entries = tuple(entries)
    for node_id in catalog.log_nodes(coord.coord_id):
        cluster.memory_nodes[node_id]._op_write_log(
            0,
            (
                LogRecord(
                    coord_id=coord.coord_id, txn_id=4242, entries=record_entries
                ),
            ),
        )

    cluster.compute_nodes[0].crash()
    sim.run(until=sim.now + 20e-3)
    record = [r for r in cluster.recovery.records if r.kind == "compute"][0]

    # Decision matches the criterion.
    if fully_applied:
        assert record.rolled_forward == 1 and record.rolled_back == 0
    else:
        assert record.rolled_back == 1 and record.rolled_forward == 0

    # Atomicity: afterwards every replica of every object agrees, and
    # the state is either all-new or all-old.
    states = set()
    for key in keys:
        slot = catalog.slot_for(0, key)
        for node_id in catalog.replicas(0, slot):
            entry = cluster.memory_nodes[node_id].slot(0, slot)
            states.add(entry.value[0] if isinstance(entry.value, tuple) else "old")
            assert entry.lock == 0  # stray locks released
    assert len(states) == 1, f"mixed outcome: {states}"
    assert ("new" in states) == fully_applied
