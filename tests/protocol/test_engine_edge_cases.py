"""Edge cases of the engine: interrupts, error paths, optimizations."""


from repro.protocol.types import AbortReason


class TestValidationOptimization:
    def test_single_read_skips_validation(self, rig_factory):
        """A lone read with no writes commits in one round trip."""
        rig = rig_factory(protocol="pandora")

        def single(tx):
            value = yield from tx.read("kv", 1)
            return value

        outcome = rig.run_txn(rig.coordinators[0], single)
        # One read RTT (~3.4us) only; validation would add another.
        assert outcome.latency < 5e-6

    def test_two_reads_validate(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def double(tx):
            a = yield from tx.read("kv", 1)
            b = yield from tx.read("kv", 2)
            return (a, b)

        outcome = rig.run_txn(rig.coordinators[0], double)
        assert outcome.latency > 5e-6  # extra validation round trip

    def test_read_plus_write_validates_read(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def mixed(tx):
            a = yield from tx.read("kv", 1)
            tx.write("kv", 2, (a or 0) + 1)
            return None

        outcome = rig.run_txn(rig.coordinators[0], mixed)
        assert outcome.committed


class TestReadForUpdateCaching:
    def test_second_read_for_update_uses_held_lock(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def logic(tx):
            first = yield from tx.read_for_update("kv", 3)
            second = yield from tx.read_for_update("kv", 3)
            tx.write("kv", 3, (second or 0) + 1)
            return (first, second)

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.committed
        assert outcome.value[0] == outcome.value[1]

    def test_write_after_read_for_update_no_new_lock(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        node = rig.placement.primary(0, rig.catalog.slot_for(0, 3))
        before = rig.memory[node].verb_counts.get("cas_lock", 0)

        def logic(tx):
            value = yield from tx.read_for_update("kv", 3)
            tx.write("kv", 3, (value or 0) + 1)
            return None

        rig.run_txn(rig.coordinators[0], logic)
        after = rig.memory[node].verb_counts.get("cas_lock", 0)
        assert after - before == 1  # exactly one lock CAS


class TestInterruptHandling:
    def test_interrupt_before_apply_rolls_back(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        sim = rig.sim

        def slow(tx):
            value = yield from tx.read_for_update("kv", 3)
            yield sim.timeout(100e-6)
            tx.write("kv", 3, 777)
            return None

        process = rig.submit(coordinator, slow)
        coordinator.process = process
        sim.run(until=20e-6)
        # Memory reconfiguration interrupt mid-execution.
        process.interrupt(coordinator.engine.current_tx)
        sim.run()
        outcome = process.value
        assert not outcome.committed
        assert outcome.reason == AbortReason.MEMORY_RECONFIG
        assert rig.value_at(3) == 0  # write never applied
        assert rig.slot_state(3).lock == 0  # lock released

    def test_interrupt_after_apply_commits(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        sim = rig.sim
        engine = coordinator.engine

        committed_marker = {}

        def writer(tx):
            tx.write("kv", 3, 555)
            return None

        # Interrupt precisely after the apply wave by polling
        # apply_done (bounded: the window can be missed entirely).
        def sniper():
            for _ in range(5000):
                tx = engine.current_tx
                if tx is not None and tx.apply_done:
                    coordinator.process.interrupt(tx)
                    committed_marker["fired"] = True
                    return
                yield sim.timeout(0.2e-6)

        process = rig.submit(coordinator, writer)
        coordinator.process = process
        sim.process(sniper())
        sim.run(until=5e-3)
        if committed_marker.get("fired") and process.triggered:
            outcome = process.value
            assert outcome.committed
            assert rig.value_at(3) == 555


class TestAppErrorReleasesLocks:
    """Regression for the PROTO001 leak protolint found in run_attempt.

    An unmodeled exception from application logic used to escape the
    engine with the write-set's eagerly-acquired locks still set under
    a live coordinator id — unstealable by PILL forever. run_attempt
    now routes generic exceptions through the abort path before
    re-raising.
    """

    def test_app_exception_releases_held_locks(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]

        def buggy(tx):
            # read_for_update acquires the write lock synchronously, so
            # the lock is definitely held when the bug fires.
            yield from tx.read_for_update("kv", 5)
            raise ValueError("application bug")

        caught = []

        def driver():
            try:
                yield from coordinator.engine.run_attempt(
                    buggy, coordinator.next_txn_id()
                )
            except ValueError as error:
                caught.append(error)

        rig.sim.process(driver(), name="driver")
        rig.sim.run()
        assert caught, "the application error must still propagate"
        assert rig.slot_state(5).lock == 0  # lock released by abort path

    def test_app_exception_mid_writes_releases_all(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]

        def buggy(tx):
            yield from tx.read_for_update("kv", 7)
            yield from tx.read_for_update("kv", 8)
            raise KeyError("missing application state")

        caught = []

        def driver():
            try:
                yield from coordinator.engine.run_attempt(
                    buggy, coordinator.next_txn_id()
                )
            except KeyError as error:
                caught.append(error)

        rig.sim.process(driver(), name="driver")
        rig.sim.run()
        assert caught
        assert rig.slot_state(7).lock == 0
        assert rig.slot_state(8).lock == 0


class TestMemoryNodeLossDuringTxn:
    def test_txn_aborts_cleanly_when_replica_dies(self, rig_factory):
        rig = rig_factory(protocol="pandora", memory_nodes=2, replication=2)
        sim = rig.sim
        coordinator = rig.coordinators[0]

        def slow_writer(tx):
            value = yield from tx.read_for_update("kv", 3)
            yield sim.timeout(50e-6)
            tx.write("kv", 3, (value or 0) + 1)
            return None

        process = rig.submit(coordinator, slow_writer)
        sim.run(until=20e-6)
        # Kill a replica of key 3 mid-transaction; commit writes to it
        # will fail with RemoteNodeDownError.
        slot = rig.catalog.slot_for(0, 3)
        victim = rig.placement.replicas(0, slot)[1]
        rig.memory[victim].crash()
        sim.run()
        outcome = process.value
        # Aborted via §3.2.5 self-decision (no placement update in the
        # bare rig, so the txn cannot commit) — and nothing hangs.
        assert process.triggered
        assert not outcome.committed


class TestLateUpgradeCheck:
    def test_ford_aborts_at_validation_not_lock_time(self, rig_factory):
        """FORD's deferred re-check still prevents lost updates."""
        rig = rig_factory(protocol="ford-fixed", compute_nodes=2)
        sim = rig.sim

        def read_then_write(tx):
            value = yield from tx.read("kv", 1)
            yield sim.timeout(200e-6)
            tx.write("kv", 1, (value or 0) + 1)
            return None

        def blind(tx):
            tx.write("kv", 1, 50)
            return None

        slow = rig.submit(rig.coordinators[0], read_then_write)
        sim.run(until=50e-6)
        fast = rig.submit(rig.coordinators[1], blind)
        sim.run()
        assert fast.value.committed
        assert not slow.value.committed
        assert slow.value.reason == AbortReason.UPGRADE_VERSION
        assert rig.value_at(1) == 50  # no lost update
