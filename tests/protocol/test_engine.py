"""Behavioural tests of the shared OCC engine (commit/abort paths)."""

import pytest

from repro.protocol.types import AbortReason


def write_txn(key, value):
    def logic(tx):
        tx.write("kv", key, value)
        return value

    return logic


def rmw_txn(key, delta=1):
    def logic(tx):
        value = yield from tx.read_for_update("kv", key)
        tx.write("kv", key, (value or 0) + delta)
        return (value or 0) + delta

    return logic


def read_txn(*keys):
    def logic(tx):
        values = []
        for key in keys:
            value = yield from tx.read("kv", key)
            values.append(value)
        return values

    return logic


@pytest.mark.parametrize("protocol", ["pandora", "ford-fixed", "tradlog"])
class TestCommitPath:
    def test_blind_write_commits(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)
        outcome = rig.run_txn(rig.coordinators[0], write_txn(3, 42))
        assert outcome.committed
        assert rig.value_at(3) == 42

    def test_commit_updates_all_replicas(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol, replication=2)
        rig.run_txn(rig.coordinators[0], write_txn(7, 99))
        assert rig.replica_values(7) == [99, 99]

    def test_commit_bumps_version(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)
        before = rig.slot_state(5).version
        rig.run_txn(rig.coordinators[0], write_txn(5, 1))
        assert rig.slot_state(5).version == before + 1

    def test_commit_releases_locks(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)
        rig.run_txn(rig.coordinators[0], write_txn(5, 1))
        assert rig.slot_state(5).lock == 0

    def test_rmw_reads_own_lockset(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)
        rig.run_txn(rig.coordinators[0], rmw_txn(4))
        outcome = rig.run_txn(rig.coordinators[0], rmw_txn(4))
        assert outcome.committed
        assert rig.value_at(4) == 2

    def test_read_only_txn(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)
        rig.run_txn(rig.coordinators[0], write_txn(2, 5))
        outcome = rig.run_txn(rig.coordinators[0], read_txn(2, 3))
        assert outcome.committed
        assert outcome.value == [5, 0]

    def test_read_your_writes(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def logic(tx):
            tx.write("kv", 9, 123)
            value = yield from tx.read("kv", 9)
            return value

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.value == 123

    def test_multi_write_txn_atomic(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def logic(tx):
            tx.write("kv", 10, 1)
            tx.write("kv", 11, 1)
            return None

        assert rig.run_txn(rig.coordinators[0], logic).committed
        assert rig.value_at(10) == 1 and rig.value_at(11) == 1


@pytest.mark.parametrize("protocol", ["pandora", "ford-fixed", "tradlog"])
class TestInsertDelete:
    def test_insert_then_read(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol, keys=64)

        def insert(tx):
            tx.insert("kv", "new-key", 77)
            return None

        assert rig.run_txn(rig.coordinators[0], insert).committed
        outcome = rig.run_txn(rig.coordinators[0], read_txn("new-key"))
        assert outcome.value == [77]

    def test_duplicate_insert_aborts(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def insert(tx):
            tx.insert("kv", 3, 1)  # key 3 is pre-loaded
            return None

        outcome = rig.run_txn(rig.coordinators[0], insert)
        assert not outcome.committed
        assert outcome.reason == AbortReason.DUPLICATE_KEY

    def test_delete_then_read_none(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def delete(tx):
            tx.delete("kv", 6)
            return None

        assert rig.run_txn(rig.coordinators[0], delete).committed
        outcome = rig.run_txn(rig.coordinators[0], read_txn(6))
        assert outcome.value == [None]

    def test_delete_absent_aborts(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol, keys=64)

        def delete(tx):
            tx.delete("kv", "never-inserted")
            return None

        outcome = rig.run_txn(rig.coordinators[0], delete)
        assert not outcome.committed
        assert outcome.reason == AbortReason.NOT_FOUND

    def test_write_after_delete_resurrects(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def logic(tx):
            tx.delete("kv", 7)
            tx.write("kv", 7, 42)
            return None

        assert rig.run_txn(rig.coordinators[0], logic).committed
        outcome = rig.run_txn(rig.coordinators[0], read_txn(7))
        assert outcome.value == [42]

    def test_delete_then_insert_same_txn(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def logic(tx):
            tx.delete("kv", 7)
            tx.insert("kv", 7, 43)
            return None

        assert rig.run_txn(rig.coordinators[0], logic).committed
        outcome = rig.run_txn(rig.coordinators[0], read_txn(7))
        assert outcome.value == [43]

    def test_reinsert_after_delete(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol)

        def delete(tx):
            tx.delete("kv", 8)
            return None

        def insert(tx):
            tx.insert("kv", 8, 500)
            return None

        assert rig.run_txn(rig.coordinators[0], delete).committed
        assert rig.run_txn(rig.coordinators[0], insert).committed
        assert rig.run_txn(rig.coordinators[0], read_txn(8)).value == [500]


@pytest.mark.parametrize("protocol", ["pandora", "ford-fixed", "tradlog"])
class TestConflicts:
    def test_lock_conflict_aborts_one(self, rig_factory, protocol):
        rig = rig_factory(protocol=protocol, compute_nodes=2)
        first = rig.submit(rig.coordinators[0], rmw_txn(5))
        second = rig.submit(rig.coordinators[1], rmw_txn(5))
        rig.sim.run()
        outcomes = [first.value, second.value]
        committed = [outcome for outcome in outcomes if outcome.committed]
        # At least one commits; both committing must never double-apply.
        assert len(committed) >= 1
        assert rig.value_at(5) == len(committed)

    def test_abort_releases_only_own_locks(self, rig_factory, protocol):
        """After any mix of conflicting txns, no lock leaks."""
        rig = rig_factory(protocol=protocol, compute_nodes=2)
        processes = [
            rig.submit(rig.coordinators[index % 2], rmw_txn(5))
            for index in range(6)
        ]
        rig.sim.run()
        assert all(process.triggered for process in processes)
        assert rig.slot_state(5).lock == 0

    def test_validation_catches_intervening_write(self, rig_factory, protocol):
        """Read-set validation: a write between read and validation
        aborts the reader (version check)."""
        rig = rig_factory(protocol=protocol, compute_nodes=2)
        sim = rig.sim
        coordinator_a, coordinator_b = rig.coordinators[:2]

        def slow_reader(tx):
            _x = yield from tx.read("kv", 1)
            # Stall long enough for the writer to commit, then read a
            # second key so validation has a multi-read read-set.
            yield sim.timeout(200e-6)
            _y = yield from tx.read("kv", 2)
            return None

        reader = rig.submit(coordinator_a, slow_reader)
        sim.run(until=50e-6)
        writer = rig.submit(coordinator_b, write_txn(1, 777))
        sim.run()
        assert writer.value.committed
        assert not reader.value.committed
        assert reader.value.reason == AbortReason.VALIDATION_VERSION

    def test_upgrade_version_conflict(self, rig_factory, protocol):
        """Read-then-write: lock acquisition re-checks the version."""
        rig = rig_factory(protocol=protocol, compute_nodes=2)
        sim = rig.sim

        def read_then_write(tx):
            value = yield from tx.read("kv", 1)
            yield sim.timeout(200e-6)  # let the other writer slip in
            tx.write("kv", 1, (value or 0) + 1)
            return None

        slow = rig.submit(rig.coordinators[0], read_then_write)
        sim.run(until=50e-6)
        fast = rig.submit(rig.coordinators[1], write_txn(1, 100))
        sim.run()
        assert fast.value.committed
        assert not slow.value.committed
        # The lost-update anomaly must not occur.
        assert rig.value_at(1) == 100


class TestPandoraSpecifics:
    def test_lock_word_carries_coordinator_id(self, rig_factory):
        from repro.protocol.locks import is_locked, owner_of

        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        seen = {}

        def logic(tx):
            value = yield from tx.read_for_update("kv", 3)
            seen["word"] = rig.slot_state(3).lock
            tx.write("kv", 3, 1)
            return value

        rig.run_txn(coordinator, logic)
        assert is_locked(seen["word"])
        assert owner_of(seen["word"]) == coordinator.coord_id

    def test_stray_lock_stolen(self, rig_factory):
        """PILL: a lock owned by a failed coordinator is stolen."""
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        dead_coord = rig.coordinators[0]
        live_coord = rig.coordinators[1]
        # Plant a stray lock owned by the "failed" coordinator.
        rig.slot_state(4).lock = encode_lock(dead_coord.coord_id, tag=1)
        live_coord.node.add_failed_ids([dead_coord.coord_id])

        outcome = rig.run_txn(live_coord, write_txn(4, 55))
        assert outcome.committed
        assert live_coord.stats.locks_stolen == 1
        assert rig.value_at(4) == 55

    def test_live_lock_not_stolen(self, rig_factory):
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        other = rig.coordinators[0]
        live = rig.coordinators[1]
        rig.slot_state(4).lock = encode_lock(other.coord_id, tag=1)
        # other.coord_id is NOT in failed-ids.
        outcome = rig.run_txn(live, write_txn(4, 55))
        assert not outcome.committed
        assert outcome.reason == AbortReason.LOCK_CONFLICT
        assert live.stats.locks_stolen == 0

    def test_read_passes_stray_lock(self, rig_factory):
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        dead = rig.coordinators[0]
        live = rig.coordinators[1]
        rig.slot_state(4).lock = encode_lock(dead.coord_id, tag=1)
        live.node.add_failed_ids([dead.coord_id])
        outcome = rig.run_txn(live, read_txn(4))
        assert outcome.committed

    def test_read_aborts_on_live_lock(self, rig_factory):
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        other = rig.coordinators[0]
        live = rig.coordinators[1]
        rig.slot_state(4).lock = encode_lock(other.coord_id, tag=1)
        outcome = rig.run_txn(live, read_txn(4))
        assert not outcome.committed
        assert outcome.reason == AbortReason.READ_LOCKED

    def test_coalesced_log_written_to_f_plus_one_nodes(self, rig_factory):
        rig = rig_factory(protocol="pandora", replication=2)
        coordinator = rig.coordinators[0]
        log_nodes = rig.catalog.log_nodes(coordinator.coord_id)
        assert len(log_nodes) == 2

        writes_before = {
            node_id: rig.memory[node_id].verb_counts.get("write_log", 0)
            for node_id in rig.memory
        }

        def logic(tx):
            tx.write("kv", 1, 1)
            tx.write("kv", 2, 2)
            tx.write("kv", 3, 3)
            return None

        rig.run_txn(coordinator, logic)
        # Exactly one coalesced record per log node, regardless of the
        # write-set size (§3.1.4: f+1 writes total, not per object).
        for node_id in rig.memory:
            delta = rig.memory[node_id].verb_counts.get("write_log", 0) - writes_before[
                node_id
            ]
            assert delta == (1 if node_id in log_nodes else 0)

    def test_commit_invalidates_log_records(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        rig.run_txn(coordinator, write_txn(1, 5))
        rig.sim.run()  # drain unsignaled invalidations
        for node_id in rig.catalog.log_nodes(coordinator.coord_id):
            region = rig.memory[node_id].log_regions.get(coordinator.coord_id)
            assert region is not None
            assert region.valid_records() == []

    def test_abort_truncates_log_before_unlock(self, rig_factory):
        """§3.1.5: an aborting logged txn invalidates its records."""
        rig = rig_factory(protocol="pandora", compute_nodes=2)
        sim = rig.sim

        def read_then_write(tx):
            value = yield from tx.read("kv", 1)
            yield sim.timeout(200e-6)
            tx.write("kv", 1, (value or 0) + 1)
            tx.write("kv", 2, 1)
            return None

        slow = rig.submit(rig.coordinators[0], read_then_write)
        sim.run(until=50e-6)
        rig.submit(rig.coordinators[1], write_txn(1, 9))
        sim.run()
        assert not slow.value.committed
        for node_id in rig.catalog.log_nodes(rig.coordinators[0].coord_id):
            region = rig.memory[node_id].log_regions.get(
                rig.coordinators[0].coord_id
            )
            if region is not None:
                assert region.valid_records() == []


class TestFordSpecifics:
    def test_per_object_logging_to_object_replicas(self, rig_factory):
        rig = rig_factory(protocol="ford-fixed", replication=2)
        coordinator = rig.coordinators[0]

        def logic(tx):
            tx.write("kv", 1, 1)
            return None

        rig.run_txn(coordinator, logic)
        slot = rig.catalog.slot_for(0, 1)
        replicas = rig.placement.replicas(0, slot)
        for node_id in replicas:
            region = rig.memory[node_id].log_regions.get(coordinator.coord_id)
            assert region is not None  # a log copy landed there

    def test_anonymous_locks(self, rig_factory):
        from repro.protocol.locks import ANONYMOUS_OWNER, owner_of

        rig = rig_factory(protocol="ford-fixed")
        seen = {}

        def logic(tx):
            value = yield from tx.read_for_update("kv", 3)
            seen["word"] = rig.slot_state(3).lock
            tx.write("kv", 3, 1)
            return value

        rig.run_txn(rig.coordinators[0], logic)
        assert owner_of(seen["word"]) == ANONYMOUS_OWNER


class TestTradLogSpecifics:
    def test_lock_intent_logged_before_lock(self, rig_factory):
        rig = rig_factory(protocol="tradlog")
        coordinator = rig.coordinators[0]
        rig.run_txn(coordinator, write_txn(1, 5))
        # Lock-intent records (txn_id == -1) were written then
        # invalidated at unlock; the region must exist on log nodes.
        for node_id in rig.catalog.log_nodes(coordinator.coord_id):
            assert coordinator.coord_id in rig.memory[node_id].log_regions

    def test_extra_round_trip_slows_writes(self, rig_factory):
        fast = rig_factory(protocol="pandora")
        slow = rig_factory(protocol="tradlog")
        fast_outcome = fast.run_txn(fast.coordinators[0], write_txn(1, 5))
        slow_outcome = slow.run_txn(slow.coordinators[0], write_txn(1, 5))
        assert slow_outcome.latency > fast_outcome.latency
