"""Tests for the FORD-style address cache (cold vs warm)."""

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


def run(warm: bool, keys=100, until=6e-3):
    cluster = Cluster(
        ClusterConfig(
            coordinators_per_node=1,
            compute_nodes=1,
            seed=17,
            warm_address_cache=warm,
        ),
        MicroBenchmark(num_keys=keys, write_ratio=1.0),
    )
    cluster.start()
    cluster.run(until=until)
    return cluster


class TestAddressCache:
    def test_cold_cache_costs_extra_probes(self):
        warm = run(True)
        cold = run(False)

        def probes(cluster):
            return sum(
                memory.verb_counts.get("read_header", 0)
                for memory in cluster.memory_nodes.values()
            )

        # Warm: zero index probes on a write-only workload.
        assert probes(warm) == 0
        assert probes(cold) > 0

    def test_probe_paid_once_per_object(self):
        cold = run(False, keys=20, until=20e-3)
        probes = sum(
            memory.verb_counts.get("read_header", 0)
            for memory in cold.memory_nodes.values()
        )
        # At most one probe per (coordinator, object) pair — the cache
        # retains resolved addresses across transactions.
        assert probes <= 20 * 2  # 2 keys touched per txn, 20 objects

    def test_cold_and_warm_converge(self):
        """Once all addresses are cached, throughput matches warm."""
        warm = run(True, keys=20, until=20e-3)
        cold = run(False, keys=20, until=20e-3)
        warm_rate = warm.timeline.rate_between(10e-3, 20e-3)
        cold_rate = cold.timeline.rate_between(10e-3, 20e-3)
        assert cold_rate == pytest.approx(warm_rate, rel=0.1)

    def test_cold_cache_still_correct(self):
        cold = run(False, keys=50)
        stats = cold.aggregate_stats()
        assert stats.commits > 50
