"""Unit tests for the pluggable lock strategies and their lock words.

The steal-retry tests drive the acquisition generator directly with
scripted CAS responses — a deterministic re-enactment of the
two-stealers-one-dead-owner race that a cluster-level test could only
hit probabilistically. Both the strategy-layer flow and the frozen
legacy engine's inline flow are driven through the same script: the
stray-to-stray retry is a bugfix that ships in both, so they must agree
step for step.
"""

import pytest

from repro.protocol.coordinator import CoordinatorStats
from repro.protocol.locks import (
    ANONYMOUS_OWNER,
    MAX_COORD_ID,
    encode_lock,
    encode_ticket_word,
    is_locked,
    is_ticket_word,
    next_ticket_of,
    owner_of,
    serving_of,
)
from repro.protocol.types import OP_UPDATE, AbortReason, WriteIntent


class TestTicketWord:
    def test_roundtrip(self):
        word = encode_ticket_word(17, serving=3, next_ticket=9)
        assert is_ticket_word(word)
        assert is_locked(word)
        assert owner_of(word) == 17
        assert serving_of(word) == 3
        assert next_ticket_of(word) == 9

    def test_plain_pill_word_is_not_ticket(self):
        assert not is_ticket_word(encode_lock(17, tag=3))
        assert not is_ticket_word(0)

    def test_anonymous_holder_allowed_transiently(self):
        # A queue between grants may carry the sentinel as holder.
        word = encode_ticket_word(ANONYMOUS_OWNER, serving=1, next_ticket=1)
        assert owner_of(word) == ANONYMOUS_OWNER

    def test_out_of_range_holder_rejected(self):
        with pytest.raises(ValueError):
            encode_ticket_word(ANONYMOUS_OWNER + 1, serving=0, next_ticket=1)


class TestSentinelRejection:
    """encode_lock must never mint a word owned by ANONYMOUS_OWNER.

    Before the fix, coordinator id 0xFFFF produced a word that FORD-style
    readers treat as anonymous: its stray locks could never be attributed
    (or stolen) and PILL recovery would skip them forever.
    """

    def test_max_coord_id_is_one_below_the_sentinel(self):
        assert MAX_COORD_ID == ANONYMOUS_OWNER - 1 == 0xFFFE

    def test_sentinel_coord_id_rejected(self):
        with pytest.raises(ValueError):
            encode_lock(ANONYMOUS_OWNER)

    def test_config_rejects_id_spaces_reaching_the_sentinel(self):
        from repro.cluster.config import ClusterConfig

        # 4 * 16384 = 65536 initial ids: id 0xFFFF would be handed out.
        config = ClusterConfig(compute_nodes=4, coordinators_per_node=16384)
        with pytest.raises(ValueError):
            config.validate()

    def test_config_accepts_the_full_legal_id_space(self):
        from repro.cluster.config import ClusterConfig

        # 3 * 21845 = 65535 = MAX_COORD_ID + 1 ids: 0 .. 0xFFFE only.
        ClusterConfig(compute_nodes=3, coordinators_per_node=21845).validate()


# ---------------------------------------------------------------------------
# Deterministic steal-retry re-enactment
# ---------------------------------------------------------------------------


class _Token:
    """Stands in for a posted verb event; the driver answers it."""

    def __init__(self, kind, args):
        self.kind = kind
        self.args = args


class _StubVerbs:
    def cas_lock(self, node, table_id, slot, expected, desired):
        return _Token("cas_lock", (node, table_id, slot, expected, desired))

    def read_object(self, node, table_id, slot):
        return _Token("read_object", (node, table_id, slot))

    def read_header(self, node, table_id, slot):
        return _Token("read_header", (node, table_id, slot))


class _StubTrace:
    def __init__(self):
        self.lock_events = []

    def focus(self, phase):
        pass

    def lock_event(self, kind, table_id, slot, now):
        self.lock_events.append(kind)


class _StubTx:
    def __init__(self):
        self.trace = _StubTrace()


class _StubEngine:
    """The minimal engine surface the CAS acquisition flow touches."""

    coord_id = 3

    def __init__(self, failed_ids):
        from types import SimpleNamespace

        self.verbs = _StubVerbs()
        self.placement = SimpleNamespace(primary=lambda table_id, slot: 0)
        self.sim = SimpleNamespace(now=0.0)
        self.coordinator = SimpleNamespace(
            stats=CoordinatorStats(),
            node=SimpleNamespace(failed_ids=failed_ids),
        )
        self.commit = SimpleNamespace(late_upgrade=False)
        self.log = SimpleNamespace(
            pre_lock=lambda tx, intent, word: iter(()),
            post_speculative=lambda tx, intent: False,
            post_locked=lambda tx, intent, speculative: None,
        )
        # Legacy-engine flow flags (ignored by the strategy flow).
        self.pre_lock_logging = False
        self.per_object_logging = False
        self.late_upgrade_check = False
        self.bugs = SimpleNamespace(
            log_without_lock=False, missing_insert_log=False
        )

    def _resolve_address(self, table_id, slot, node):
        return iter(())

    def _cp(self, name):
        return None

    def _lock_word(self):
        return encode_lock(self.coord_id, tag=7)

    def _is_stray(self, word):
        return (
            is_locked(word)
            and owner_of(word) != ANONYMOUS_OWNER
            and owner_of(word) in self.coordinator.node.failed_ids
        )


def _drive(flow, responses):
    """Run the generator, answering each yielded verb from the script."""
    responses = list(responses)
    try:
        event = next(flow)
        while True:
            assert responses, f"flow yielded more than scripted: {event.kind}"
            expected_kind, answer = responses.pop(0)
            assert event.kind == expected_kind, (event.kind, expected_kind)
            event = flow.send(answer)
    except StopIteration:
        pass
    assert not responses, f"{len(responses)} scripted response(s) unconsumed"


def _make_flow(variant, engine, tx, intent):
    if variant == "strategy":
        from repro.protocol.strategies import PillCasLockStrategy

        return PillCasLockStrategy(engine)._acquire_flow(tx, intent)
    from repro.protocol.legacy import LegacyProtocolEngine

    return LegacyProtocolEngine._acquire_inner(engine, tx, intent)


def _intent():
    return WriteIntent(table_id=0, key=5, slot=5, kind=OP_UPDATE, new_value=1)


DEAD_A, DEAD_B = 100, 101
LIVE_STEALER = 9

STRAY_A = encode_lock(DEAD_A, tag=1)
STRAY_B = encode_lock(DEAD_B, tag=2)
LIVE_WORD = encode_lock(LIVE_STEALER, tag=3)


@pytest.mark.parametrize("variant", ["strategy", "legacy"])
class TestStealRetry:
    def test_stray_to_stray_race_retries_and_wins(self, variant):
        """Two stealers, one dead owner: the loser's second CAS observes
        *another* dead coordinator's word (mass failover) and must retry
        against it instead of aborting — aborting would strand the lock
        until some unrelated transaction wanders by."""
        engine = _StubEngine(failed_ids={DEAD_A, DEAD_B})
        tx, intent = _StubTx(), _intent()
        _drive(
            _make_flow(variant, engine, tx, intent),
            [
                ("cas_lock", STRAY_A),           # acquire CAS loses to stray A
                ("read_object", (STRAY_A, 1, True, 10)),
                ("cas_lock", STRAY_B),           # steal CAS loses to stray B
                ("cas_lock", STRAY_B),           # retry against B: wins
                ("read_object", (engine._lock_word(), 1, True, 10)),
            ],
        )
        assert intent.lock_result == (True, "")
        assert intent.locked
        assert engine.coordinator.stats.steal_retries == 1
        assert engine.coordinator.stats.locks_stolen == 1
        assert tx.trace.lock_events == ["steal", "steal_retry", "acquired"]

    def test_losing_to_a_live_stealer_aborts_without_retry(self, variant):
        """The other stealer won and is alive: its word is not stray, so
        retrying would spin on a healthy lock — convert to a conflict."""
        engine = _StubEngine(failed_ids={DEAD_A})
        tx, intent = _StubTx(), _intent()
        _drive(
            _make_flow(variant, engine, tx, intent),
            [
                ("cas_lock", STRAY_A),
                ("read_object", (STRAY_A, 1, True, 10)),
                ("cas_lock", LIVE_WORD),         # lost to a live winner
            ],
        )
        assert intent.lock_result == (False, AbortReason.LOCK_CONFLICT)
        assert not intent.locked
        assert engine.coordinator.stats.steal_retries == 0
        assert engine.coordinator.stats.locks_stolen == 0
        assert tx.trace.lock_events == ["steal", "steal_lost"]

    def test_retry_budget_is_bounded(self, variant):
        """A pathological stray-churn sequence must stop at the limit."""
        from repro.protocol.strategies import STEAL_RETRY_LIMIT

        dead = list(range(200, 200 + STEAL_RETRY_LIMIT + 2))
        words = [encode_lock(coord, tag=coord) for coord in dead]
        engine = _StubEngine(failed_ids=set(dead))
        tx, intent = _StubTx(), _intent()
        script = [
            ("cas_lock", words[0]),
            ("read_object", (words[0], 1, True, 10)),
        ]
        # Steal CAS + every bounded retry each lose to the next stray.
        for word in words[1 : STEAL_RETRY_LIMIT + 2]:
            script.append(("cas_lock", word))
        _drive(_make_flow(variant, engine, tx, intent), script)
        assert intent.lock_result == (False, AbortReason.LOCK_CONFLICT)
        assert engine.coordinator.stats.steal_retries == STEAL_RETRY_LIMIT
        assert engine.coordinator.stats.locks_stolen == 0
