"""Tests for the coordinator worker loop: retries, stats, policies."""


from repro.protocol.coordinator import CoordinatorConfig, CoordinatorStats
from repro.protocol.types import AbortReason


class TestCoordinatorConfig:
    def test_defaults(self):
        config = CoordinatorConfig()
        assert config.max_attempts == 64
        assert not config.abandon_on_conflict


class TestStatsMerge:
    def test_merge_counts(self):
        left, right = CoordinatorStats(), CoordinatorStats()
        left.commits, right.commits = 3, 4
        left.abort_reasons["x"] = 1
        right.abort_reasons["x"] = 2
        left.merge(right)
        assert left.commits == 7
        assert left.abort_reasons["x"] == 3

    def test_merge_latency_histograms(self):
        left, right = CoordinatorStats(), CoordinatorStats()
        left.latency.add(1e-5)
        right.latency.add(2e-5)
        left.merge(right)
        assert left.latency.count == 2


class TestRetryPolicy:
    def test_conflict_retried_until_commit(self, rig_factory):
        """A lock conflict resolves once the holder finishes."""
        from repro.protocol.coordinator import CoordinatorConfig

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        holder, contender = rig.coordinators[:2]
        contender.config = CoordinatorConfig(max_attempts=32)
        sim = rig.sim

        def hold_then_write(tx):
            value = yield from tx.read_for_update("kv", 3)
            yield sim.timeout(50e-6)
            tx.write("kv", 3, (value or 0) + 1)
            return None

        def increment(tx):
            value = yield from tx.read_for_update("kv", 3)
            tx.write("kv", 3, (value or 0) + 1)
            return None

        slow = rig.submit(holder, hold_then_write)
        sim.run(until=5e-6)
        fast = rig.submit(contender, increment)
        sim.run()
        assert slow.value.committed
        assert fast.value.committed
        assert fast.value.attempts > 1
        assert rig.value_at(3) == 2

    def test_user_abort_not_retried(self, rig_factory):
        from repro.protocol.coordinator import CoordinatorConfig

        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        coordinator.config = CoordinatorConfig(max_attempts=32)
        attempts = {"count": 0}

        def always_abort(tx):
            attempts["count"] += 1
            value = yield from tx.read("kv", 1)
            tx.abort("business rule")
            return value

        outcome = rig.run_txn(coordinator, always_abort)
        assert not outcome.committed
        assert outcome.reason == AbortReason.USER
        assert attempts["count"] == 1

    def test_abandon_on_conflict(self, rig_factory):
        from repro.protocol.coordinator import CoordinatorConfig
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        coordinator = rig.coordinators[1]
        coordinator.config = CoordinatorConfig(abandon_on_conflict=True)
        # Permanently locked by a live (never-failing) coordinator.
        rig.slot_state(4).lock = encode_lock(rig.coordinators[0].coord_id)

        def write(tx):
            tx.write("kv", 4, 9)
            return None

        outcome = rig.run_txn(coordinator, write)
        assert not outcome.committed
        assert outcome.attempts == 1

    def test_attempts_bounded(self, rig_factory):
        from repro.protocol.coordinator import CoordinatorConfig
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        coordinator = rig.coordinators[1]
        coordinator.config = CoordinatorConfig(max_attempts=5)
        rig.slot_state(4).lock = encode_lock(rig.coordinators[0].coord_id)

        def write(tx):
            tx.write("kv", 4, 9)
            return None

        outcome = rig.run_txn(coordinator, write)
        assert not outcome.committed
        assert outcome.attempts == 5

    def test_txn_ids_unique_and_tagged(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]
        ids = {coordinator.next_txn_id() for _ in range(100)}
        assert len(ids) == 100
        assert all((txn_id >> 32) == coordinator.coord_id for txn_id in ids)

    def test_latency_recorded_on_commit(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        coordinator = rig.coordinators[0]

        def write(tx):
            tx.write("kv", 1, 1)
            return None

        rig.run_txn(coordinator, write)
        assert coordinator.stats.latency.count == 1
        assert coordinator.stats.latency.percentile(50) > 0
