"""Tests for the PILL lock-word encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocol.locks import (
    ANONYMOUS_OWNER,
    LOCKED_FLAG,
    MAX_COORD_ID,
    encode_anonymous_lock,
    encode_lock,
    is_locked,
    owner_of,
    tag_of,
)


class TestLockWord:
    def test_zero_is_unlocked(self):
        assert not is_locked(0)

    def test_encode_sets_locked_flag(self):
        assert is_locked(encode_lock(5))

    def test_owner_extraction(self):
        assert owner_of(encode_lock(1234, tag=99)) == 1234

    def test_tag_extraction(self):
        assert tag_of(encode_lock(1234, tag=99)) == 99

    def test_anonymous_lock_has_sentinel_owner(self):
        word = encode_anonymous_lock(tag=5)
        assert is_locked(word)
        assert owner_of(word) == ANONYMOUS_OWNER

    def test_max_coord_id_fits(self):
        assert owner_of(encode_lock(MAX_COORD_ID)) == MAX_COORD_ID

    def test_out_of_range_coord_id(self):
        with pytest.raises(ValueError):
            encode_lock(MAX_COORD_ID + 1)
        with pytest.raises(ValueError):
            encode_lock(-1)

    def test_out_of_range_tag(self):
        with pytest.raises(ValueError):
            encode_lock(1, tag=1 << 32)

    def test_word_fits_in_64_bits(self):
        word = encode_lock(MAX_COORD_ID, tag=0xFFFFFFFF)
        assert word < (1 << 64)
        assert word & LOCKED_FLAG


@given(
    coord_id=st.integers(0, MAX_COORD_ID),
    tag=st.integers(0, 0xFFFFFFFF),
)
def test_lock_word_roundtrip(coord_id, tag):
    """Property: encode/decode is lossless for any owner/tag pair."""
    word = encode_lock(coord_id, tag)
    assert is_locked(word)
    assert owner_of(word) == coord_id
    assert tag_of(word) == tag


@given(
    a=st.tuples(st.integers(0, MAX_COORD_ID), st.integers(0, 0xFFFFFFFF)),
    b=st.tuples(st.integers(0, MAX_COORD_ID), st.integers(0, 0xFFFFFFFF)),
)
def test_lock_words_injective(a, b):
    """Distinct (owner, tag) pairs produce distinct words."""
    if a != b:
        assert encode_lock(*a) != encode_lock(*b)
