"""Quantitative message-cost claims (§3.1.4).

"The total cost of logging in our technique is always f+1 RDMA Writes
as opposed to FORD's f+1 RDMA Writes per object in the write-set."
"""

import pytest


def multi_write_txn(n_keys):
    def logic(tx):
        for key in range(n_keys):
            tx.write("kv", key, key + 100)
        return None

    return logic


def total_log_writes(rig):
    return sum(
        memory.verb_counts.get("write_log", 0) for memory in rig.memory.values()
    )


class TestLoggingCost:
    @pytest.mark.parametrize("write_set_size", [1, 2, 4, 8])
    def test_pandora_logs_f_plus_one_writes_total(self, rig_factory, write_set_size):
        rig = rig_factory(protocol="pandora", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(write_set_size))
        # f+1 = 2, independent of the write-set size.
        assert total_log_writes(rig) == 2

    @pytest.mark.parametrize("write_set_size", [1, 2, 4])
    def test_ford_logs_f_plus_one_per_object(self, rig_factory, write_set_size):
        rig = rig_factory(protocol="ford-fixed", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(write_set_size))
        assert total_log_writes(rig) == 2 * write_set_size

    def test_tradlog_adds_lock_intent_writes(self, rig_factory):
        """Traditional scheme: f+1 lock-intent writes per lock on top
        of the coalesced undo record."""
        rig = rig_factory(protocol="tradlog", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(3))
        # 3 locks x 2 intent writes + 2 coalesced undo writes.
        assert total_log_writes(rig) == 3 * 2 + 2


class TestLockCost:
    def test_one_cas_per_write_object(self, rig_factory):
        rig = rig_factory(protocol="pandora", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(4))
        cas_total = sum(
            memory.verb_counts.get("cas_lock", 0) for memory in rig.memory.values()
        )
        assert cas_total == 4  # uncontended: exactly one CAS per object

    def test_steal_costs_one_extra_cas(self, rig_factory):
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        dead = rig.coordinators[0]
        live = rig.coordinators[1]
        rig.slot_state(2).lock = encode_lock(dead.coord_id)
        live.node.add_failed_ids([dead.coord_id])

        def write(tx):
            tx.write("kv", 2, 9)
            return None

        before = sum(
            memory.verb_counts.get("cas_lock", 0) for memory in rig.memory.values()
        )
        rig.run_txn(live, write)
        after = sum(
            memory.verb_counts.get("cas_lock", 0) for memory in rig.memory.values()
        )
        assert after - before == 2  # failed CAS + steal CAS


class TestCommitCost:
    def test_apply_writes_every_replica_once(self, rig_factory):
        rig = rig_factory(protocol="pandora", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(3))
        applies = sum(
            memory.verb_counts.get("write_object", 0)
            for memory in rig.memory.values()
        )
        assert applies == 3 * 2  # objects x replicas

    def test_unlock_only_primaries(self, rig_factory):
        rig = rig_factory(protocol="pandora", replication=2)
        rig.run_txn(rig.coordinators[0], multi_write_txn(3))
        rig.sim.run()  # drain unsignaled unlocks
        unlocks = sum(
            memory.verb_counts.get("write_lock", 0)
            for memory in rig.memory.values()
        )
        assert unlocks == 3  # one per object, primary only
