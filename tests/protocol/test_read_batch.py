"""Tests for batched multi-reads and ReadRange (§2.1 API)."""

import pytest

from repro.protocol.types import AbortReason


def seed_values(rig, pairs):
    for key, value in pairs:
        slot = rig.catalog.slot_for(0, key)
        for node in rig.placement.replicas(0, slot):
            rig.memory[node].load_slot(0, slot, value, version=2)


class TestReadMany:
    def test_returns_values_in_key_order(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        seed_values(rig, [(1, "a"), (2, "b"), (3, "c")])

        def logic(tx):
            values = yield from tx.read_many("kv", [3, 1, 2])
            return values

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.value == ["c", "a", "b"]

    def test_batch_costs_one_round_trip(self, rig_factory):
        """All reads of a batch overlap: latency is ~1 RTT, not N."""
        rig_batch = rig_factory(protocol="pandora")
        rig_serial = rig_factory(protocol="pandora")
        keys = list(range(8))

        def batched(tx):
            values = yield from tx.read_many("kv", keys)
            return values

        def serial(tx):
            values = []
            for key in keys:
                value = yield from tx.read("kv", key)
                values.append(value)
            return values

        fast = rig_batch.run_txn(rig_batch.coordinators[0], batched)
        slow = rig_serial.run_txn(rig_serial.coordinators[0], serial)
        assert fast.latency < slow.latency / 2

    def test_serves_buffered_writes(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def logic(tx):
            tx.write("kv", 5, 99)
            values = yield from tx.read_many("kv", [4, 5])
            return values

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.value[1] == 99

    def test_serves_pending_delete_as_none(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def logic(tx):
            tx.delete("kv", 5)
            values = yield from tx.read_many("kv", [5])
            return values

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.value == [None]

    def test_aborts_on_live_locked_member(self, rig_factory):
        from repro.protocol.locks import encode_lock

        rig = rig_factory(protocol="pandora", compute_nodes=2)
        other = rig.coordinators[0]
        rig.slot_state(2).lock = encode_lock(other.coord_id)

        def logic(tx):
            values = yield from tx.read_many("kv", [1, 2, 3])
            return values

        outcome = rig.run_txn(rig.coordinators[1], logic)
        assert not outcome.committed
        assert outcome.reason == AbortReason.READ_LOCKED

    def test_batch_populates_read_set_for_validation(self, rig_factory):
        """Batched reads participate in validation like plain reads."""
        rig = rig_factory(protocol="pandora", compute_nodes=2)
        sim = rig.sim

        def slow_batch_reader(tx):
            values = yield from tx.read_many("kv", [1, 2])
            yield sim.timeout(200e-6)
            extra = yield from tx.read("kv", 3)
            return values + [extra]

        def writer(tx):
            tx.write("kv", 1, 123)
            return None

        reader = rig.submit(rig.coordinators[0], slow_batch_reader)
        sim.run(until=50e-6)
        rig.submit(rig.coordinators[1], writer)
        sim.run()
        assert not reader.value.committed
        assert reader.value.reason == AbortReason.VALIDATION_VERSION


class TestReadRange:
    def test_range_reads_consecutive_keys(self, rig_factory):
        rig = rig_factory(protocol="pandora")
        seed_values(rig, [(10, "x"), (11, "y"), (12, "z")])

        def logic(tx):
            values = yield from tx.read_range("kv", 10, 3)
            return values

        outcome = rig.run_txn(rig.coordinators[0], logic)
        assert outcome.value == ["x", "y", "z"]

    def test_invalid_count(self, rig_factory):
        rig = rig_factory(protocol="pandora")

        def logic(tx):
            values = yield from tx.read_range("kv", 0, 0)
            return values

        process = rig.submit(rig.coordinators[0], logic)
        rig.sim.run()
        with pytest.raises(ValueError):
            _ = process.value
