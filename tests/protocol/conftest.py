"""A small hand-wired rig for protocol-level tests.

Unlike the full :class:`~repro.cluster.Cluster`, the rig has no failure
detector or workload loop — tests drive individual transactions through
coordinators directly, which makes interleavings explicit.
"""

from __future__ import annotations

import random
from typing import Optional

import pytest

from repro.cluster.node import ComputeNode
from repro.kvs.catalog import Catalog, TableSpec
from repro.kvs.placement import Placement
from repro.memory.node import MemoryNode
from repro.protocol.coordinator import Coordinator, CoordinatorConfig
from repro.protocol.ford import ford_factory
from repro.protocol.pandora import pandora_factory
from repro.protocol.tradlog import tradlog_factory
from repro.protocol.types import BugFlags
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.verbs import Verbs
from repro.sim import Simulator


class _NoWorkload:
    """Placeholder workload; rig tests submit transactions directly."""

    def next_transaction(self, rng):  # pragma: no cover - never called
        raise RuntimeError("rig coordinators are driven manually")


class ProtocolRig:
    """Sim + memory nodes + catalog + N compute nodes with coordinators."""

    def __init__(
        self,
        protocol: str = "pandora",
        bugs: Optional[BugFlags] = None,
        memory_nodes: int = 2,
        compute_nodes: int = 2,
        replication: int = 2,
        keys: int = 64,
        coordinators_per_node: int = 1,
        jitter: float = 0.0,
    ) -> None:
        self.sim = Simulator()
        self.network = Network(NetworkConfig(jitter=jitter), random.Random(11))
        self.memory = {i: MemoryNode(i) for i in range(memory_nodes)}
        self.placement = Placement(
            list(self.memory), replication_degree=replication, partitions=16
        )
        self.catalog = Catalog(self.placement)
        # Headroom beyond the loaded keys so inserts have free slots.
        self.catalog.add_table(TableSpec(0, "kv", max_keys=keys + 16, value_size=8))
        self.catalog.provision(self.memory.values())
        self.catalog.load(self.memory, 0, ((k, 0) for k in range(keys)))

        if protocol == "pandora":
            factory = pandora_factory(bugs)
        elif protocol == "ford":
            factory = ford_factory(bugs if bugs is not None else BugFlags.published())
        elif protocol == "ford-fixed":
            factory = ford_factory(bugs if bugs is not None else BugFlags.fixed())
        elif protocol == "tradlog":
            factory = tradlog_factory(bugs)
        else:
            raise ValueError(protocol)

        self.nodes = []
        self.coordinators = []
        next_coord_id = 0
        for node_id in range(compute_nodes):
            verbs = Verbs(self.sim, node_id, self.network, self.memory)
            node = ComputeNode(self.sim, node_id, verbs, self.catalog)
            self.nodes.append(node)
            for _ in range(coordinators_per_node):
                coordinator = Coordinator(
                    node,
                    next_coord_id,
                    factory,
                    _NoWorkload(),
                    random.Random(1000 + next_coord_id),
                    CoordinatorConfig(max_attempts=1),
                )
                next_coord_id += 1
                node.add_coordinator(coordinator)
                self.coordinators.append(coordinator)

    # -- helpers ----------------------------------------------------------------

    def submit(self, coordinator, logic):
        """Start one transaction; returns its Process (an Event)."""
        return self.sim.process(
            coordinator.run_transaction(logic),
            name=f"txn-c{coordinator.coord_id}",
        )

    def run_txn(self, coordinator, logic):
        """Run one transaction to completion; returns the outcome."""
        process = self.submit(coordinator, logic)
        self.sim.run()
        return process.value

    def value_at(self, key: int, memory_node: Optional[int] = None):
        slot = self.catalog.slot_for(0, key)
        node_id = (
            memory_node
            if memory_node is not None
            else self.placement.primary(0, slot)
        )
        return self.memory[node_id].slot(0, slot).value

    def slot_state(self, key: int, memory_node: Optional[int] = None):
        slot = self.catalog.slot_for(0, key)
        node_id = (
            memory_node
            if memory_node is not None
            else self.placement.primary(0, slot)
        )
        return self.memory[node_id].slot(0, slot)

    def replica_values(self, key: int):
        slot = self.catalog.slot_for(0, key)
        return [
            self.memory[node].slot(0, slot).value
            for node in self.placement.replicas(0, slot)
        ]


@pytest.fixture
def rig_factory():
    return ProtocolRig
