"""Tests for the §7 NVM persistence mode (selective one-sided flush)."""

import pytest

from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


def run(persistence: str, seed=81):
    cluster = Cluster(
        ClusterConfig(
            coordinators_per_node=2,
            seed=seed,
            persistence=persistence,
        ),
        MicroBenchmark(num_keys=300, write_ratio=1.0),
    )
    cluster.start()
    cluster.run(until=0.01)
    return cluster


class TestPersistenceMode:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(persistence="optane").validate()

    def test_default_is_dram(self):
        assert ClusterConfig().persistence == "dram"

    def test_flush_mode_still_commits(self):
        cluster = run("nvm-flush")
        assert cluster.aggregate_stats().commits > 100

    def test_flush_adds_commit_latency(self):
        dram = run("dram")
        nvm = run("nvm-flush")
        p50_dram = dram.aggregate_stats().latency.percentile(50)
        p50_nvm = nvm.aggregate_stats().latency.percentile(50)
        # One extra round trip before the client ack.
        assert p50_nvm > p50_dram

    def test_flush_issues_extra_reads(self):
        dram = run("dram")
        nvm = run("nvm-flush")

        def header_reads(cluster):
            return sum(
                memory.verb_counts.get("read_header", 0)
                for memory in cluster.memory_nodes.values()
            )

        # The write-only workload performs no data-path header reads in
        # DRAM mode; the flush mode chases every commit with them.
        assert header_reads(nvm) > header_reads(dram) + 100
