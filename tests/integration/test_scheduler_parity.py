"""Old-vs-new scheduler parity: the ring kernel must be bit-identical.

PR 9 split the kernel's single heapq into a now-ring + timer heap,
batched same-arrival QP completions, and moved slot storage to columnar
arrays — all pure speed work that must not change virtual-time
behaviour at all. ``ClusterConfig.legacy_kernel=True`` rebuilds the
pre-ring scheduler (every entry through one heap, one kernel entry per
delivery), so both builds can run in one process and be diffed on:

* end-state fingerprints (every slot's lock/version/present/value on
  every memory node),
* ``Simulator.processed_events`` (batched deliveries are compensated),
* per-node verb counts (what the flight report aggregates),
* litmus outcome counts and chaos committed/crash counts.
"""

import pytest

from repro.chaos import ChaosRunner, generate_schedule
from repro.litmus import LitmusRunner, litmus1_direct_write, litmus3_indirect_write

CHAOS_SEEDS = list(range(10))


def cluster_fingerprint(cluster):
    """Stable digest of all object state + verb counts on live nodes."""
    state = 0
    mask = (1 << 64) - 1
    for spec in sorted(cluster.catalog.tables.values(), key=lambda s: s.table_id):
        slot_count = cluster.catalog.key_count(spec.table_id)
        for slot in range(slot_count):
            for node_id in sorted(cluster.memory_nodes):
                memory = cluster.memory_nodes[node_id]
                if not memory.alive:
                    continue
                table = memory.tables[spec.table_id]
                value = table.values[slot]
                if not isinstance(value, int):
                    value = len(repr(value))
                for folded in (
                    node_id,
                    table.locks[slot],
                    table.versions[slot],
                    int(table.present[slot]),
                    value,
                ):
                    state = (state * 1000003 + folded) & mask
    return state


def verb_totals(cluster):
    return {
        node_id: dict(node.verb_counts)
        for node_id, node in sorted(cluster.memory_nodes.items())
    }


class TestLitmusParity:
    def _run(self, legacy, sanitize=False, crash_probability=0.0, spec=None):
        runner = LitmusRunner(
            spec if spec is not None else litmus1_direct_write(),
            protocol="pandora",
            rounds=12,
            seed=7,
            crash_probability=crash_probability,
            legacy_kernel=legacy,
            sanitize=sanitize,
        )
        report = runner.run()
        return report, runner.cluster

    def assert_identical(self, old, new):
        old_report, old_cluster = old
        new_report, new_cluster = new
        assert new_report.commits == old_report.commits
        assert new_report.aborts == old_report.aborts
        assert new_report.unknown == old_report.unknown
        assert new_report.crashes_injected == old_report.crashes_injected
        assert [str(v) for v in new_report.violations] == [
            str(v) for v in old_report.violations
        ]
        assert new_cluster.sim.processed_events == old_cluster.sim.processed_events
        assert cluster_fingerprint(new_cluster) == cluster_fingerprint(old_cluster)
        assert verb_totals(new_cluster) == verb_totals(old_cluster)

    def test_clean_run_parity(self):
        self.assert_identical(self._run(legacy=True), self._run(legacy=False))

    def test_crashing_run_parity(self):
        # Crashes exercise the recovery path (incl. the parallel log
        # recovery) on both builds.
        self.assert_identical(
            self._run(legacy=True, crash_probability=0.3),
            self._run(legacy=False, crash_probability=0.3),
        )

    def test_sanitized_run_parity(self):
        # The sanitizer disables the QP/memory fast paths; the
        # instrumented twins must schedule identically too.
        self.assert_identical(
            self._run(legacy=True, sanitize=True),
            self._run(legacy=False, sanitize=True),
        )

    def test_sanitized_matches_unsanitized_on_new_kernel(self):
        # Fast path vs instrumented path on the *same* (new) scheduler:
        # hooks must not leak into virtual time.
        plain_report, plain_cluster = self._run(legacy=False)
        san_report, san_cluster = self._run(legacy=False, sanitize=True)
        assert san_report.commits == plain_report.commits
        assert san_cluster.sim.processed_events == plain_cluster.sim.processed_events
        assert cluster_fingerprint(san_cluster) == cluster_fingerprint(plain_cluster)

    def test_indirect_write_spec_parity(self):
        spec = litmus3_indirect_write()
        self.assert_identical(
            self._run(legacy=True, spec=spec), self._run(legacy=False, spec=spec)
        )


class TestChaosBankParity:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seed_parity(self, seed):
        schedule = generate_schedule(seed)
        old = ChaosRunner(schedule, legacy_kernel=True)
        old_result = old.run()
        new = ChaosRunner(generate_schedule(seed), legacy_kernel=False)
        new_result = new.run()
        assert new_result.fingerprint == old_result.fingerprint
        assert new_result.committed == old_result.committed
        assert new_result.crashes == old_result.crashes
        assert new_result.recovery_kills == old_result.recovery_kills
        assert [str(v) for v in new_result.violations] == [
            str(v) for v in old_result.violations
        ]
        assert (
            new.cluster.sim.processed_events == old.cluster.sim.processed_events
        )
        assert verb_totals(new.cluster) == verb_totals(old.cluster)


class TestProfilerParity:
    def test_profiled_run_is_bit_identical(self):
        from repro.bench.kernelperf import FleetSpec, run_fleet
        from repro.obs.profile import KernelProfiler

        spec = FleetSpec("parity", compute_nodes=2, coordinators_per_node=4,
                         keys=500, duration=2e-3)
        plain = run_fleet(spec, repeats=1, seed=5)
        profiled = run_fleet(spec, repeats=1, seed=5, profiler=KernelProfiler())
        assert profiled.steps == plain.steps
