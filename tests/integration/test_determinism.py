"""Determinism: identical seeds must reproduce identical histories.

This is the property that makes litmus failures replayable and the
benchmarks stable; any accidental use of global randomness or
dict-order dependence would break it.
"""


from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


def run_once(seed, crash=False, protocol="pandora"):
    cluster = Cluster(
        ClusterConfig(
            protocol=protocol,
            coordinators_per_node=3,
            seed=seed,
            fd_timeout=2e-3,
            fd_heartbeat_interval=0.5e-3,
        ),
        MicroBenchmark(num_keys=300, write_ratio=0.8, rmw=True, hot_keys=50),
    )
    cluster.start()
    if crash:
        cluster.crash_compute(0, at=0.006)
    cluster.run(until=0.015)
    stats = cluster.aggregate_stats()
    fingerprint = [stats.commits, stats.aborts, stats.locks_stolen]
    # Fold in final memory state.
    state = 0
    for memory in cluster.memory_nodes.values():
        for table in memory.tables.values():
            for slot in table:
                state = (state * 1000003 + hash((slot.version, slot.value))) & (
                    (1 << 61) - 1
                )
    fingerprint.append(state)
    return fingerprint


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert run_once(123) == run_once(123)

    def test_identical_seeds_identical_runs_with_crash(self):
        assert run_once(77, crash=True) == run_once(77, crash=True)

    def test_different_seeds_differ(self):
        assert run_once(1) != run_once(2)

    def test_determinism_for_baseline_protocol(self):
        assert run_once(9, protocol="baseline") == run_once(9, protocol="baseline")
