"""False-positive suspicion (Cor1): fencing keeps memory safe.

A compute node whose heartbeats are lost — but which is still alive
and issuing transactions — gets declared failed. Active-link
termination must fence it before log recovery touches its state, so
that nothing it sends afterwards lands, and the store stays
consistent.
"""


from repro import Cluster, ClusterConfig
from repro.workloads import SmallBank
from repro.workloads.smallbank import INITIAL_BALANCE

ACCOUNTS = 400


def run_false_positive():
    workload = SmallBank(accounts=ACCOUNTS, conserving_only=True)
    cluster = Cluster(
        ClusterConfig(
            protocol="pandora",
            coordinators_per_node=4,
            seed=91,
            fd_timeout=2e-3,
            fd_heartbeat_interval=0.5e-3,
            fd_check_interval=0.25e-3,
        ),
        workload,
    )
    cluster.start()
    cluster.run(until=0.008)
    victim = cluster.compute_nodes[0]
    # Partition heartbeats only: the node itself keeps running.
    victim._heartbeat_process.kill()
    victim._heartbeat_process = None
    cluster.run(until=0.040)
    return workload, cluster, victim


class TestFalsePositive:
    def test_victim_is_fenced_not_split_brained(self):
        _workload, cluster, victim = run_false_positive()
        assert victim.fenced
        assert all(m.is_revoked(0) for m in cluster.memory_nodes.values())

    def test_money_conserved_despite_false_positive(self):
        workload, cluster, _victim = run_false_positive()
        for node in cluster.compute_nodes.values():
            node.pause()
        cluster.run(until=0.042)
        total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
        assert total == 2 * ACCOUNTS * INITIAL_BALANCE

    def test_survivor_keeps_committing(self):
        _workload, cluster, _victim = run_false_positive()
        post = cluster.timeline.rate_between(0.030, 0.040)
        assert post > 0

    def test_recovery_record_exists(self):
        _workload, cluster, _victim = run_false_positive()
        records = [r for r in cluster.recovery.records if r.kind == "compute"]
        assert len(records) == 1
        assert records[0].node_id == 0
