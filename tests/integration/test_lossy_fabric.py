"""Protocol correctness on a lossy, jittery fabric.

The fabric's loss model charges geometric retransmission delay — loss
never drops a reliable-connection verb, it only makes it (much) later.
Correctness must therefore be completely insensitive to loss and
jitter; these tests run the litmus suite and the history fuzzer under
an aggressive fabric and expect exactly the clean results of a quiet
one, with the PILL sanitizer shadowing the lock table throughout.
"""

import pytest

from repro.litmus import LITMUS_SUITE, LitmusRunner
from repro.litmus.fuzzer import HistoryFuzzer

LOSS = 0.2
JITTER = 2e-6


class TestLitmusUnderLoss:
    @pytest.mark.parametrize(
        "spec",
        [s for s in LITMUS_SUITE() if s.name in ("litmus-1", "litmus-2", "litmus-3")],
        ids=lambda s: s.name,
    )
    def test_litmus_clean_on_lossy_fabric(self, spec):
        runner = LitmusRunner(
            spec,
            protocol="pandora",
            rounds=12,
            crash_probability=0.3,
            seed=23,
            loss_probability=LOSS,
            jitter=JITTER,
            sanitize=True,
        )
        report = runner.run()
        assert report.passed, [v.description for v in report.violations]
        sanitizer = runner.cluster.sanitizer
        assert sanitizer is not None and not sanitizer.violations


class TestFuzzerUnderLoss:
    def test_fuzz_serializable_on_lossy_fabric(self):
        fuzzer = HistoryFuzzer(
            protocol="pandora",
            duration=10e-3,
            crash_probability_per_ms=0.3,
            seed=31,
            loss_probability=LOSS,
            jitter=JITTER,
            sanitize=True,
        )
        report = fuzzer.run()
        assert report.serializable, report.cycle
        assert report.committed > 0
        sanitizer = fuzzer.cluster.sanitizer
        assert sanitizer is not None and not sanitizer.violations

    def test_lossy_run_is_deterministic_per_seed(self):
        """Loss and jitter draw from the seeded RNG: same seed, same
        committed history — the property chaos replay relies on."""

        def run(seed):
            fuzzer = HistoryFuzzer(
                protocol="pandora",
                duration=8e-3,
                crash_probability_per_ms=0.3,
                seed=seed,
                loss_probability=LOSS,
                jitter=JITTER,
            )
            fuzzer.run()
            return fuzzer.history

        first, second = run(17), run(17)
        assert first == second
        assert run(18) != first

    def test_loss_slows_but_does_not_stop_progress(self):
        quiet = HistoryFuzzer(protocol="pandora", duration=8e-3, seed=5)
        lossy = HistoryFuzzer(
            protocol="pandora",
            duration=8e-3,
            seed=5,
            loss_probability=0.4,
            jitter=JITTER,
        )
        quiet_report = quiet.run()
        lossy_report = lossy.run()
        assert lossy_report.committed > 0
        assert lossy_report.committed < quiet_report.committed
