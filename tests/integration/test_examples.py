"""Smoke test: the quickstart example must stay runnable end to end."""

import os
import subprocess
import sys


REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


class TestExamples:
    def test_quickstart_runs_clean(self):
        result = subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "examples", "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "log-recovery latency" in result.stdout
        assert "stray locks stolen" in result.stdout

    def test_example_files_present(self):
        examples = os.listdir(os.path.join(REPO_ROOT, "examples"))
        expected = {
            "quickstart.py",
            "bank_failover.py",
            "litmus_validation.py",
            "custom_workload.py",
            "failover_timeline.py",
        }
        assert expected.issubset(set(examples))
