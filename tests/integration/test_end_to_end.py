"""Cross-module integration: full cluster runs under fault schedules.

These are the heaviest tests in the suite: they run every protocol
variant through crashes and verify global invariants on the final
memory state, exactly the way an operator would audit the store.
"""

import pytest

from repro import Cluster, ClusterConfig
from repro.protocol.locks import is_locked, owner_of
from repro.workloads import MicroBenchmark, SmallBank
from repro.workloads.smallbank import INITIAL_BALANCE


def quiesce(cluster, extra=2e-3):
    for node in cluster.compute_nodes.values():
        node.pause()
    cluster.run(until=cluster.sim.now + extra)


def replica_divergences(cluster):
    divergences = 0
    catalog = cluster.catalog
    for spec in catalog.tables.values():
        for slot in range(catalog.key_count(spec.table_id)):
            states = {
                (
                    cluster.memory_nodes[node].slot(spec.table_id, slot).version,
                    cluster.memory_nodes[node].slot(spec.table_id, slot).present,
                )
                for node in catalog.replicas(spec.table_id, slot)
                if cluster.memory_nodes[node].alive
            }
            if len(states) > 1:
                divergences += 1
    return divergences


@pytest.mark.parametrize("protocol", ["pandora", "baseline", "tradlog"])
class TestCrashConsistency:
    def test_replicas_converge_after_compute_crash(self, protocol):
        cluster = Cluster(
            ClusterConfig(
                protocol=protocol,
                coordinators_per_node=4,
                seed=51,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
            ),
            MicroBenchmark(num_keys=300, write_ratio=1.0, hot_keys=60),
        )
        cluster.start()
        cluster.crash_compute(0, at=0.008)
        horizon = 0.15 if protocol == "baseline" else 0.04
        cluster.run(until=horizon)
        quiesce(cluster)
        assert replica_divergences(cluster) == 0

    def test_no_foreign_locks_leak(self, protocol):
        """After recovery + quiesce, any remaining lock belongs to a
        *live* coordinator (Pandora) or nobody (scan/locklog modes
        clean everything)."""
        cluster = Cluster(
            ClusterConfig(
                protocol=protocol,
                coordinators_per_node=4,
                seed=52,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
            ),
            MicroBenchmark(num_keys=300, write_ratio=1.0, hot_keys=60),
        )
        cluster.start()
        cluster.crash_compute(0, at=0.008)
        horizon = 0.15 if protocol == "baseline" else 0.04
        cluster.run(until=horizon)
        quiesce(cluster)
        failed = set(cluster.id_allocator.failed_ids())
        for memory in cluster.memory_nodes.values():
            for table_id in memory.tables:
                for slot in memory.locked_slots(table_id):
                    word = memory.slot(table_id, slot).lock
                    if protocol == "pandora":
                        # Stray locks are allowed to linger (PILL
                        # steals on demand) but only if attributable
                        # to a failed coordinator.
                        assert is_locked(word)
                        assert owner_of(word) in failed
                    else:
                        pytest.fail(
                            f"{protocol}: leaked lock {word:#x} at "
                            f"table {table_id} slot {slot}"
                        )


class TestRepeatedFailures:
    def test_three_sequential_compute_crashes(self):
        """Crash-restart-crash cycles: ids stay unique, stray locks
        from each generation remain attributable, money conserved."""
        workload = SmallBank(accounts=400, conserving_only=True)
        cluster = Cluster(
            ClusterConfig(
                protocol="pandora",
                coordinators_per_node=4,
                seed=53,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
                restart_failed_after=3e-3,
            ),
            workload,
        )
        cluster.start()
        for crash_time in (0.008, 0.025, 0.042):
            cluster.crash_compute(0, at=crash_time)
        cluster.run(until=0.070)
        compute_recoveries = [
            r for r in cluster.recovery.records if r.kind == "compute"
        ]
        assert len(compute_recoveries) == 3
        quiesce(cluster)
        total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
        assert total == 2 * 400 * INITIAL_BALANCE

    def test_compute_and_memory_failures_together(self):
        """§3.2.5: 'In the case where memory and compute servers fail
        together, we execute both protocols independently.'"""
        workload = SmallBank(accounts=400, conserving_only=True)
        cluster = Cluster(
            ClusterConfig(
                protocol="pandora",
                memory_nodes=3,
                replication_degree=2,
                coordinators_per_node=4,
                seed=54,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
            ),
            workload,
        )
        cluster.start()
        cluster.crash_compute(0, at=0.010)
        cluster.crash_memory(0, at=0.011)
        cluster.run(until=0.060)
        kinds = {record.kind for record in cluster.recovery.records}
        assert kinds == {"compute", "memory"}
        quiesce(cluster)
        # Audit on live replicas only.
        total = 0
        catalog = cluster.catalog
        for table_id in (0, 1):
            for account in range(400):
                slot = catalog.slot_for(table_id, account)
                primary = catalog.primary(table_id, slot)
                entry = cluster.memory_nodes[primary].slot(table_id, slot)
                if entry.present:
                    total += entry.value
        assert total == 2 * 400 * INITIAL_BALANCE


class TestSerializabilityUnderCrashes:
    def test_committed_history_is_serializable_across_a_crash(self):
        from repro.litmus.checker import check_history

        cluster = Cluster(
            ClusterConfig(
                protocol="pandora",
                coordinators_per_node=4,
                seed=55,
                fd_timeout=2e-3,
                fd_heartbeat_interval=0.5e-3,
            ),
            MicroBenchmark(num_keys=200, write_ratio=0.7, rmw=True, hot_keys=40),
        )
        history = []
        for coordinator in cluster.all_coordinators():
            coordinator.history_sink = history
        cluster.start()
        cluster.crash_compute(0, at=0.008)
        cluster.run(until=0.030)
        assert len(history) > 200
        assert check_history(history)
