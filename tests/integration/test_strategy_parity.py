"""Old-vs-new engine parity: the strategy refactor must be bit-identical.

PR 10 split the protocol engine's flag-branched lock/log/commit logic
into pluggable strategy objects (``repro.protocol.strategies``) and
re-expressed pandora/ford/tradlog as strategy triples. That is pure
structure work: ``ClusterConfig.legacy_engine=True`` rebuilds the
frozen pre-refactor engine (``repro.protocol.legacy``), so both builds
run in one process and are diffed on the same axes as the PR 9
scheduler parity suite:

* end-state fingerprints (every slot's lock/version/present/value on
  every memory node),
* ``Simulator.processed_events``,
* per-node verb counts,
* litmus outcome counts and chaos committed/crash counts.

The two *new* protocols (lotus, vote1pc) have no legacy twin — their
coverage lives in the litmus/chaos zoo tests instead.
"""

import pytest

from repro.chaos import ChaosRunner, generate_schedule
from repro.litmus import LitmusRunner, litmus1_direct_write, litmus3_indirect_write

from tests.integration.test_scheduler_parity import cluster_fingerprint, verb_totals

LEGACY_PROTOCOLS = ("pandora", "ford", "tradlog")

#: One chaos seed per fault family for the flagship; spot checks for
#: the other two triples (each run builds a full cluster).
CHAOS_PARITY = [("pandora", seed) for seed in range(5)] + [
    ("ford", 0),
    ("ford", 3),
    ("tradlog", 1),
    ("tradlog", 4),
]


def run_litmus(protocol, legacy, crash_probability=0.0, sanitize=False, spec=None):
    runner = LitmusRunner(
        spec if spec is not None else litmus1_direct_write(),
        protocol=protocol,
        rounds=12,
        seed=7,
        crash_probability=crash_probability,
        legacy_engine=legacy,
        sanitize=sanitize,
    )
    report = runner.run()
    return report, runner.cluster


def assert_identical(old, new):
    old_report, old_cluster = old
    new_report, new_cluster = new
    assert new_report.commits == old_report.commits
    assert new_report.aborts == old_report.aborts
    assert new_report.unknown == old_report.unknown
    assert new_report.crashes_injected == old_report.crashes_injected
    assert [str(v) for v in new_report.violations] == [
        str(v) for v in old_report.violations
    ]
    assert new_cluster.sim.processed_events == old_cluster.sim.processed_events
    assert cluster_fingerprint(new_cluster) == cluster_fingerprint(old_cluster)
    assert verb_totals(new_cluster) == verb_totals(old_cluster)


@pytest.mark.parametrize("protocol", LEGACY_PROTOCOLS)
class TestLitmusStrategyParity:
    def test_clean_run_parity(self, protocol):
        assert_identical(
            run_litmus(protocol, legacy=True),
            run_litmus(protocol, legacy=False),
        )

    def test_crashing_run_parity(self, protocol):
        # Crashes exercise recovery, stray stealing, and the undo path
        # on both builds.
        assert_identical(
            run_litmus(protocol, legacy=True, crash_probability=0.3),
            run_litmus(protocol, legacy=False, crash_probability=0.3),
        )

    def test_sanitized_run_parity(self, protocol):
        # The sanitizer watches every verb; the instrumented twins must
        # still schedule identically.
        assert_identical(
            run_litmus(protocol, legacy=True, sanitize=True),
            run_litmus(protocol, legacy=False, sanitize=True),
        )

    def test_indirect_write_spec_parity(self, protocol):
        spec = litmus3_indirect_write()
        assert_identical(
            run_litmus(protocol, legacy=True, spec=spec),
            run_litmus(protocol, legacy=False, spec=spec),
        )


class TestChaosStrategyParity:
    @pytest.mark.parametrize("protocol,seed", CHAOS_PARITY)
    def test_seed_parity(self, protocol, seed):
        old = ChaosRunner(
            generate_schedule(seed, protocol=protocol), legacy_engine=True
        )
        old_result = old.run()
        new = ChaosRunner(
            generate_schedule(seed, protocol=protocol), legacy_engine=False
        )
        new_result = new.run()
        assert new_result.fingerprint == old_result.fingerprint
        assert new_result.committed == old_result.committed
        assert new_result.crashes == old_result.crashes
        assert new_result.recovery_kills == old_result.recovery_kills
        assert [str(v) for v in new_result.violations] == [
            str(v) for v in old_result.violations
        ]
        assert (
            new.cluster.sim.processed_events == old.cluster.sim.processed_events
        )
        assert verb_totals(new.cluster) == verb_totals(old.cluster)
