"""§6.4 "Distributed FD" — recovery with a quorum-replicated detector.

Paper: replicating the failure detector across three ZooKeeper-managed
replicas adds a quorum-agreement delay, yet Pandora still recovers in
under 20 ms end to end — orders of magnitude faster than the Baseline.
"""

import pytest

from conftest import micro_factory
from repro.bench.harness import default_config
from repro.bench.report import format_table, write_report
from repro.cluster.builder import Cluster

CRASH_AT = 10e-3


def _run(distributed: bool):
    config = default_config(
        protocol="pandora",
        coordinators_per_node=8,
        distributed_fd=distributed,
        fd_replicas=3,
        fd_agreement_delay=2e-3,
    )
    cluster = Cluster(config, micro_factory(write_ratio=1.0)())
    cluster.start()
    cluster.crash_compute(0, at=CRASH_AT)
    cluster.run(until=60e-3)
    record = cluster.recovery.records[0]
    return {
        "detect": record.detected_at - CRASH_AT,
        "end_to_end": record.finished_at - CRASH_AT,
        "log_recovery": record.log_recovery_latency,
    }


@pytest.mark.benchmark(group="fd")
def test_distributed_fd_recovery(benchmark):
    results = benchmark.pedantic(
        lambda: (_run(False), _run(True)), rounds=1, iterations=1
    )
    standalone, quorum = results
    rows = [
        ("standalone", f"{standalone['detect'] * 1e3:6.2f}",
         f"{standalone['end_to_end'] * 1e3:6.2f}"),
        ("3-replica quorum", f"{quorum['detect'] * 1e3:6.2f}",
         f"{quorum['end_to_end'] * 1e3:6.2f}"),
    ]
    text = format_table(
        "Distributed failure detector: crash-to-recovered latency (ms)",
        ["detector", "detection (ms)", "end-to-end recovery (ms)"],
        rows,
        note="Paper: even with three FD replicas, recovery < 20 ms.",
    )
    write_report("distributed_fd", text)
    assert quorum["end_to_end"] < 20e-3
    assert quorum["detect"] >= standalone["detect"]
