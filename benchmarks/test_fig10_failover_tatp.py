"""Fig 10 — TATP fail-over throughput (compute & memory crashes)."""

import pytest

from conftest import tatp_factory
from failover_common import check_failover_shapes, run_failover_figure


@pytest.mark.benchmark(group="fig10")
def test_fig10_failover_tatp(benchmark):
    reuse, no_reuse, memory = benchmark.pedantic(
        lambda: run_failover_figure(
            "fig10_failover_tatp",
            "Fig 10: TATP",
            tatp_factory(),
        ),
        rounds=1,
        iterations=1,
    )
    check_failover_shapes(reuse, no_reuse, memory)
