"""Hot-key contention gate: the protocol zoo under Zipf-skewed RMW load.

Produces ``benchmarks/results/BENCH_CONTENTION.json`` (the committed
baseline CI gates against) and ``benchmarks/results/contention.txt``.
The sweep drives the paper's 1 000-key RMW microbenchmark at three Zipf
skews across all five protocols on a fixed two-point offered grid, so
the baseline pins down each lock strategy's abort-rate and queueing
behaviour on both sides of the knee.

Four guards per (protocol, theta, offered) point, mirroring the
kernel-perf and load gates: achieved throughput has a tolerance floor,
CO-corrected p99 and abort rate tolerance ceilings, and the commit
count must reproduce exactly — seeded virtual time means commit drift
is a behaviour change that needs a deliberate re-baseline (delete the
JSON and rerun), not a shrug.
"""

import json
import pathlib

import pytest

from repro.bench.report import write_bench_snapshot, write_report
from repro.load import (
    CONTENTION_PROTOCOLS,
    CONTENTION_THETAS,
    compare_contention_to_baseline,
    contention_payload,
    format_contention,
    run_contention_sweep,
)

BASELINE = pathlib.Path(__file__).parent / "results" / "BENCH_CONTENTION.json"

#: One point the cluster keeps up with, one past the saturation knee.
GRID = (150_000.0, 600_000.0)
DURATION = 5e-3
USERS = 64


@pytest.fixture(scope="module")
def curves():
    return run_contention_sweep(grid=GRID, duration=DURATION, users=USERS)


def test_contention_vs_committed_baseline(curves):
    payload = contention_payload(curves)
    write_report("contention", format_contention(curves))
    if not BASELINE.exists():
        # First run on a fresh checkout: establish the baseline.
        write_bench_snapshot("CONTENTION", payload)
        return
    baseline = json.loads(BASELINE.read_text())
    failures = compare_contention_to_baseline(payload, baseline)
    assert not failures, "contention regression vs committed baseline:\n" + (
        "\n".join(f"  {failure}" for failure in failures)
    )


def test_every_zoo_protocol_and_skew_is_covered(curves):
    seen = {(curve.protocol, curve.theta) for curve in curves}
    expected = {
        (protocol, theta)
        for protocol in CONTENTION_PROTOCOLS
        for theta in CONTENTION_THETAS
    }
    assert seen == expected


def test_sub_saturation_point_keeps_up(curves):
    for curve in curves:
        low = curve.points[0]
        assert low.achieved_tps > 0.6 * low.offered, curve.label
        assert low.backlog_end <= 2, curve.label


def test_skew_inflates_the_tail(curves):
    # Per protocol, the hottest skew must show a worse saturated p99
    # than the YCSB-standard skew — if it does not, the workload knob
    # is not actually concentrating traffic and the sweep is vacuous.
    by_protocol = {}
    for curve in curves:
        by_protocol.setdefault(curve.protocol, {})[curve.theta] = curve
    for protocol, thetas in by_protocol.items():
        mild = thetas[min(thetas)].points[-1]
        hot = thetas[max(thetas)].points[-1]
        assert hot.co.percentile(99) > mild.co.percentile(99), protocol


def test_contention_produces_conflicts(curves):
    # At the hottest skew past the knee, at least one protocol must
    # record real aborts — zero everywhere means the RMW transactions
    # never collide and the sweep measures nothing.
    hottest = [curve for curve in curves if curve.theta == max(CONTENTION_THETAS)]
    assert any(curve.points[-1].aborts > 0 for curve in hottest)
