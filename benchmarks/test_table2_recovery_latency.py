"""Table 2 — Pandora's recovery latency vs coordinators per node.

Paper (CloudLab r650, 100 Gbps):

    Bench \\ Coord./node      1      8     64    128    256    512
    TPC-C                  8us   22us  158us  272us  563us  4951us
    SmallBank              8us  139us  232us  424us  876us  5272us
    TATP                   9us   20us  131us  513us 1039us  2236us
    MicroBench            10us   21us  119us  474us 1001us  2043us

We sweep 1..64 coordinators per node (the simulator's per-run budget)
and reproduce the two shape claims: (a) latency sits in the
microsecond-to-millisecond range, orders of magnitude below the
Baseline's seconds, and (b) it grows with the number of outstanding
coordinators.
"""

import pytest

from conftest import WORKLOAD_FACTORIES
from repro.bench.harness import run_recovery_latency
from repro.bench.report import format_table, write_report

COORDINATOR_SWEEP = [1, 8, 32, 64]
# The paper sweeps to 512; we extend the cheapest workload to 128 to
# show the trend continues.
EXTENDED_SWEEP = {"microbench": [1, 8, 32, 64, 128]}

PAPER_US = {
    "tpcc": {1: 8, 8: 22, 64: 158},
    "smallbank": {1: 8, 8: 139, 64: 232},
    "tatp": {1: 9, 8: 20, 64: 131},
    "microbench": {1: 10, 8: 21, 64: 119, 128: 474},
}


def _sweep():
    rows = []
    measured = {}
    for workload_name, factory in WORKLOAD_FACTORIES.items():
        for coordinators in EXTENDED_SWEEP.get(workload_name, COORDINATOR_SWEEP):
            result = run_recovery_latency(
                factory,
                coordinators_per_node=coordinators,
                protocol="pandora",
                crash_at=6e-3,
            )
            measured[(workload_name, coordinators)] = result.latency
            paper = PAPER_US.get(workload_name, {}).get(coordinators)
            rows.append(
                (
                    workload_name,
                    coordinators,
                    f"{result.latency * 1e6:9.1f}",
                    f"{paper:9.0f}" if paper is not None else "      n/a",
                )
            )
    return rows, measured


@pytest.mark.benchmark(group="table2")
def test_table2_recovery_latency(benchmark):
    rows, measured = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    text = format_table(
        "Table 2: Pandora log-recovery latency vs coordinators per node",
        ["workload", "coordinators", "measured (us)", "paper (us)"],
        rows,
        note=(
            "Shape claims: milliseconds at worst (vs the Baseline's "
            "seconds), growing with outstanding coordinators."
        ),
    )
    write_report("table2_recovery_latency", text)

    for workload_name in WORKLOAD_FACTORIES:
        low = measured[(workload_name, 1)]
        high = measured[(workload_name, COORDINATOR_SWEEP[-1])]
        # (a) always in the sub-10ms range.
        assert high < 10e-3, f"{workload_name}: {high}"
        # (b) grows with coordinator count.
        assert high > low, f"{workload_name}: {low} !< {high}"


# -- sequential vs parallel RC log recovery (PR 9) -------------------------

# The paper's RC fetches all f+1 log regions "with large parallel
# reads" (§4); RecoveryManager.parallel_log_recovery reproduces that by
# posting every dead coordinator's region reads in one burst. The delta
# is what Table 2's growth curve is made of: with one crashed node
# hosting N coordinators, sequential recovery pays ~N round trips of
# region reads while parallel recovery pipelines them on the QPs.
PARALLELISM_SWEEP = [64, 256]


def _recovery_mode_sweep():
    rows = []
    measured = {}
    factory = WORKLOAD_FACTORIES["microbench"]
    for coordinators in PARALLELISM_SWEEP:
        for parallel in (False, True):
            result = run_recovery_latency(
                factory,
                coordinators_per_node=coordinators,
                protocol="pandora",
                crash_at=6e-3,
                parallel_log_recovery=parallel,
            )
            measured[(coordinators, parallel)] = result.latency
        sequential = measured[(coordinators, False)]
        parallel_lat = measured[(coordinators, True)]
        rows.append(
            (
                coordinators,
                f"{sequential * 1e6:9.1f}",
                f"{parallel_lat * 1e6:9.1f}",
                f"{sequential / parallel_lat:6.2f}x",
            )
        )
    return rows, measured


@pytest.mark.benchmark(group="table2")
def test_table2_parallel_log_recovery_delta(benchmark):
    rows, measured = benchmark.pedantic(_recovery_mode_sweep, rounds=1, iterations=1)
    text = format_table(
        "Table 2 addendum: sequential vs parallel RC log recovery (microbench)",
        ["coordinators/node", "sequential (us)", "parallel (us)", "speedup"],
        rows,
        note=(
            "Parallel = all dead coordinators' f+1 region reads posted "
            "in one burst (paper §4); sequential = one coordinator per "
            "round trip (pre-PR 9 behaviour)."
        ),
    )
    write_report("table2_parallel_recovery", text)

    for coordinators in PARALLELISM_SWEEP:
        sequential = measured[(coordinators, False)]
        parallel_lat = measured[(coordinators, True)]
        # Parallel recovery must not be slower, and at fleet scale the
        # pipelining win should be clearly visible.
        assert parallel_lat <= sequential, (
            f"{coordinators} coords: parallel {parallel_lat} > "
            f"sequential {sequential}"
        )
    assert measured[(256, False)] / measured[(256, True)] > 1.5, (
        "expected a clear pipelining win at 256 coordinators/node"
    )
