"""Fig 12 — SmallBank fail-over with half the coordinators.

Paper (§6.4): when the system is not bandwidth-oversubscribed (half
the coordinators), reusing the failed coordinators' resources restores
the post-failure throughput to the pre-failure level — the
"paradoxical" above-pre-failure throughput of the oversubscribed runs
disappears.
"""

import pytest

from conftest import (
    FAILOVER_CRASH_AT,
    FAILOVER_DURATION,
    series_rate,
    smallbank_factory,
)
from repro.bench.harness import run_failover
from repro.bench.report import format_series, format_table, write_report


def _run():
    return run_failover(
        smallbank_factory(),
        protocol="pandora",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=FAILOVER_DURATION,
        reuse_resources=True,
        coordinators_per_node=8,  # half of the other figures' 16
    )


@pytest.mark.benchmark(group="fig12")
def test_fig12_failover_low_contention(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    post = series_rate(result.series, FAILOVER_DURATION - 15e-3, FAILOVER_DURATION)
    ratio = post / result.pre_rate if result.pre_rate else 0.0
    text = format_table(
        "Fig 12: SmallBank fail-over with half the coordinators (reuse)",
        ["pre (Mtps)", "post (Mtps)", "post/pre"],
        [(f"{result.pre_rate / 1e6:.3f}", f"{post / 1e6:.3f}", f"{ratio:.2f}")],
        note=(
            "Paper: with the lower load, Pandora restores post-failure "
            "throughput to its pre-failure level."
        ),
    ) + "\n" + format_series(
        "Fig 12 timeline",
        result.series,
        markers=[(FAILOVER_CRASH_AT, "crash")],
    )
    write_report("fig12_failover_lowcontention", text)
    assert 0.8 <= ratio <= 1.25
