"""Observability overhead guard.

The obs layer promises (a) a run with no obs argument is **identical**
to the pre-obs code path — the NOOP_OBS singleton's no-op hooks must
not change any outcome — and (b) enabling full tracing+metrics costs a
bounded wall-clock factor and never changes simulated results. This
file enforces both and records the measured factor in
``benchmarks/results/obs_overhead.txt``.
"""

import time

from conftest import STEADY_WARMUP, smallbank_factory
from repro.bench.harness import run_steady_state
from repro.bench.report import format_table, write_report
from repro.obs import Obs

DURATION = 12e-3
FACTORY = smallbank_factory()

# Enabled tracing does real work (one histogram sample + span per
# phase, counters per verb); allow a generous factor before flagging a
# hot-path regression. Measured ~1.5-1.9x.
MAX_ENABLED_OVERHEAD = 2.5

# The flight recorder adds one list append per posted verb and two
# in-place writes per completion on top of tracing. Measured ~1.1-1.2x
# over the traced run.
MAX_FLIGHT_OVERHEAD = 1.5


def _timed_run(obs):
    started = time.perf_counter()
    result = run_steady_state(
        FACTORY, "pandora", duration=DURATION, warmup=STEADY_WARMUP, obs=obs
    )
    return result, time.perf_counter() - started


def test_obs_overhead():
    baseline, baseline_wall = _timed_run(None)
    disabled, disabled_wall = _timed_run(None)  # second run: warm caches
    traced, traced_wall = _timed_run(Obs(trace=True))
    flown, flown_wall = _timed_run(Obs(trace=True, flight=True))
    unflown, _unflown_wall = _timed_run(Obs(trace=True, flight=False))

    # (a) Simulated outcomes are identical in every configuration —
    # including with the flight recorder on (attribution is passive)
    # and explicitly off (the NULL_FLIGHT path).
    assert disabled == baseline
    assert traced == baseline
    assert flown == baseline
    assert unflown == baseline

    ratio = traced_wall / disabled_wall
    flight_ratio = flown_wall / traced_wall
    rows = [
        ("no obs (baseline)", f"{baseline_wall:.3f}", "-"),
        ("no obs (warm)", f"{disabled_wall:.3f}", "1.00"),
        ("Obs(trace=True)", f"{traced_wall:.3f}", f"{ratio:.2f}"),
        ("Obs(trace=True, flight=True)", f"{flown_wall:.3f}",
         f"{flown_wall / disabled_wall:.2f}"),
    ]
    write_report(
        "obs_overhead",
        format_table(
            f"observability overhead (smallbank, {baseline.commits} commits)",
            ["configuration", "wall (s)", "vs disabled"],
            rows,
        ),
    )

    # (b) Enabled tracing stays within a bounded wall-clock factor,
    # and the flight recorder stays within its own factor over tracing.
    assert ratio < MAX_ENABLED_OVERHEAD, (
        f"tracing overhead {ratio:.2f}x exceeds {MAX_ENABLED_OVERHEAD}x"
    )
    assert flight_ratio < MAX_FLIGHT_OVERHEAD, (
        f"flight-recorder overhead {flight_ratio:.2f}x over tracing "
        f"exceeds {MAX_FLIGHT_OVERHEAD}x"
    )
