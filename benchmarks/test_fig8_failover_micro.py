"""Fig 8 — microbenchmark fail-over throughput (compute & memory).

Paper: on a compute crash Pandora's throughput "does not drop to zero,
but drops to about two-thirds of the original throughput"; with the
failed resources reused, the post-recovery throughput matches the
pre-failure level (restart < 10 ms after the fault). A memory crash
briefly stops the whole KVS for reconfiguration, then recovers.
"""

import pytest

from conftest import micro_factory
from failover_common import check_failover_shapes, run_failover_figure


@pytest.mark.benchmark(group="fig8")
def test_fig8_failover_microbench(benchmark):
    reuse, no_reuse, memory = benchmark.pedantic(
        lambda: run_failover_figure(
            "fig8_failover_micro",
            "Fig 8: microbenchmark",
            micro_factory(write_ratio=1.0),
        ),
        rounds=1,
        iterations=1,
    )
    check_failover_shapes(reuse, no_reuse, memory)
