"""Shared driver for the fail-over figures (Figs 8-12).

Each figure plots throughput over time for three curves:

* compute crash, failed resources reused (blue)   — dips to ~2/3,
  returns to the pre-failure level once the node restarts;
* compute crash, resources not reused (red)       — dips and stays at
  the surviving node's capacity;
* memory crash (yellow)                            — drops to ~zero
  during the stop-the-world reconfiguration, then rapidly recovers.
"""

from __future__ import annotations

from conftest import FAILOVER_CRASH_AT, FAILOVER_DURATION, series_rate
from repro.bench.harness import run_failover
from repro.bench.report import format_series, format_table, write_report

__all__ = ["run_failover_figure"]


def run_failover_figure(name: str, title: str, workload_factory, coordinators=16):
    """Run the three curves and emit the figure's report + checks."""
    reuse = run_failover(
        workload_factory,
        protocol="pandora",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=FAILOVER_DURATION,
        reuse_resources=True,
        coordinators_per_node=coordinators,
    )
    no_reuse = run_failover(
        workload_factory,
        protocol="pandora",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=FAILOVER_DURATION,
        reuse_resources=False,
        coordinators_per_node=coordinators,
    )
    memory = run_failover(
        workload_factory,
        protocol="pandora",
        crash_kind="memory",
        crash_at=FAILOVER_CRASH_AT,
        duration=FAILOVER_DURATION,
        coordinators_per_node=coordinators,
    )

    sections = []
    rows = []
    for label, result in (
        ("compute crash, reuse", reuse),
        ("compute crash, no reuse", no_reuse),
        ("memory crash", memory),
    ):
        # Detection takes ~5 ms; probe the window after it.
        dip = series_rate(result.series, FAILOVER_CRASH_AT + 6e-3, FAILOVER_CRASH_AT + 12e-3)
        post = series_rate(result.series, FAILOVER_DURATION - 15e-3, FAILOVER_DURATION)
        rows.append(
            (
                label,
                f"{result.pre_rate / 1e6:.3f}",
                f"{dip / 1e6:.3f}",
                f"{post / 1e6:.3f}",
                f"{dip / result.pre_rate:.2f}" if result.pre_rate else "n/a",
                f"{post / result.pre_rate:.2f}" if result.pre_rate else "n/a",
            )
        )
        sections.append(
            format_series(
                f"{title} — {label}",
                result.series,
                markers=[
                    (FAILOVER_CRASH_AT, "crash"),
                    (FAILOVER_CRASH_AT + 5e-3, "detected (5ms FD timeout)"),
                ],
            )
        )

    table = format_table(
        f"{title}: fail-over throughput (Mtps)",
        ["curve", "pre", "post-crash dip", "final", "dip/pre", "final/pre"],
        rows,
        note=(
            "Paper shapes: compute crash dips to roughly the surviving "
            "capacity and never to zero; reuse restores the pre-failure "
            "level; a memory crash briefly stops the whole KVS, then "
            "recovers."
        ),
    )
    write_report(name, table + "\n" + "\n".join(sections))
    return reuse, no_reuse, memory


def check_failover_shapes(reuse, no_reuse, memory):
    """The figure's qualitative claims, as assertions."""
    crash = FAILOVER_CRASH_AT
    for result in (reuse, no_reuse):
        dip = series_rate(result.series, crash + 6e-3, crash + 12e-3)
        # Non-blocking: the survivors keep committing (never zero),
        # at roughly the surviving node's share of capacity.
        assert dip > 0.2 * result.pre_rate
        assert dip < 0.95 * result.pre_rate

    post_reuse = series_rate(reuse.series, FAILOVER_DURATION - 15e-3, FAILOVER_DURATION)
    post_no_reuse = series_rate(
        no_reuse.series, FAILOVER_DURATION - 15e-3, FAILOVER_DURATION
    )
    # Reusing the freed resources restores (most of) the lost capacity.
    assert post_reuse > post_no_reuse

    # Memory crash: between the instant verb failures and the
    # stop-the-world reconfiguration, throughput hits (near) zero...
    reconfig_dip = min(
        rate
        for when, rate in memory.series
        if crash + 1e-3 <= when <= crash + 12e-3
    )
    assert reconfig_dip < 0.2 * memory.pre_rate
    # ...and throughput comes back afterwards.
    post_memory = series_rate(memory.series, FAILOVER_DURATION - 15e-3, FAILOVER_DURATION)
    assert post_memory > 0.5 * memory.pre_rate
