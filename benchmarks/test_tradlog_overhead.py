"""§6.1/§6.2.1 — the traditional lock-logging scheme.

Paper: adding an explicit pre-lock logging round trip makes locks
recoverable without PILL, but (a) recovery is up to ~2x slower than
Pandora's, and (b) steady-state throughput drops by 35% on SmallBank,
14% on TPC-C, 2% on TATP and 21% on the 100%-write microbenchmark —
overhead grows with the write ratio.
"""

import pytest

from conftest import (
    STEADY_DURATION,
    STEADY_WARMUP,
    micro_factory,
    smallbank_factory,
    tatp_factory,
    tpcc_factory,
)
from repro.bench.harness import run_recovery_latency, run_steady_state
from repro.bench.report import format_table, write_report

PAPER_OVERHEAD = {
    "smallbank": 35.0,
    "tpcc": 14.0,
    "tatp": 2.0,
    "microbench": 21.0,
}

FACTORIES = {
    "smallbank": smallbank_factory(),
    "tpcc": tpcc_factory(),
    "tatp": tatp_factory(),
    "microbench": micro_factory(write_ratio=1.0),
}


def _steady_sweep():
    measurements = {}
    for name, factory in FACTORIES.items():
        pandora = run_steady_state(
            factory, "pandora", duration=STEADY_DURATION, warmup=STEADY_WARMUP
        )
        tradlog = run_steady_state(
            factory, "tradlog", duration=STEADY_DURATION, warmup=STEADY_WARMUP
        )
        overhead = 100 * (1 - tradlog.throughput / pandora.throughput)
        measurements[name] = (pandora.throughput, tradlog.throughput, overhead)
    return measurements


@pytest.mark.benchmark(group="tradlog")
def test_tradlog_steady_state_overhead(benchmark):
    measurements = benchmark.pedantic(_steady_sweep, rounds=1, iterations=1)
    rows = []
    for name, (pandora_tps, tradlog_tps, overhead) in measurements.items():
        rows.append(
            (
                name,
                f"{pandora_tps / 1e6:.3f}",
                f"{tradlog_tps / 1e6:.3f}",
                f"{overhead:5.1f}",
                f"{PAPER_OVERHEAD[name]:5.1f}",
            )
        )
    text = format_table(
        "Traditional lock-logging: steady-state overhead vs Pandora",
        ["workload", "pandora (Mtps)", "tradlog (Mtps)", "overhead %", "paper %"],
        rows,
        note=(
            "Paper: overhead generally grows with the write ratio "
            "(SmallBank 35% > micro 21% > TPC-C 14% > TATP 2%)."
        ),
    )
    write_report("tradlog_steady_overhead", text)

    # Shape claims: the extra round trip costs real throughput on
    # write-heavy workloads, and the mostly-read TATP barely notices.
    assert measurements["smallbank"][2] > 5.0
    assert measurements["microbench"][2] > 5.0
    assert measurements["tatp"][2] < measurements["smallbank"][2]


def _recovery_compare():
    micro = micro_factory(write_ratio=1.0)
    pandora = run_recovery_latency(
        micro, coordinators_per_node=32, protocol="pandora", crash_at=6e-3
    )
    tradlog = run_recovery_latency(
        micro, coordinators_per_node=32, protocol="tradlog", crash_at=6e-3
    )
    return pandora, tradlog


@pytest.mark.benchmark(group="tradlog")
def test_tradlog_recovery_latency(benchmark):
    pandora, tradlog = benchmark.pedantic(_recovery_compare, rounds=1, iterations=1)
    text = format_table(
        "Traditional lock-logging: recovery latency vs Pandora (32 coords/node)",
        ["protocol", "log-recovery latency (us)"],
        [
            ("pandora", f"{pandora.latency * 1e6:9.1f}"),
            ("tradlog", f"{tradlog.latency * 1e6:9.1f}"),
        ],
        note="Paper: the traditional scheme recovers up to ~2x slower "
        "than Pandora (it must also replay the per-lock intent logs).",
    )
    write_report("tradlog_recovery_latency", text)
    # Still milliseconds (not the Baseline's seconds), but slower than
    # Pandora.
    assert tradlog.latency < 20e-3
    assert tradlog.latency > pandora.latency
