"""Flight-recorder accounting benchmark: the §4 logging-cost claim.

Runs the microbenchmark under Pandora, FORD, and the traditional
logging scheme with the flight recorder on, machine-checks that every
committed transaction's ``write_log`` count matches the protocol's
formula (Pandora: f+1 per transaction; tradlog: (f+1) x (writes+1);
FORD: R x writes), and snapshots the per-protocol accounting into
``benchmarks/results/BENCH_flight_<protocol>.json`` plus a combined
text report.
"""

from conftest import STEADY_WARMUP, micro_factory
from repro.bench.harness import run_steady_state
from repro.bench.report import (
    bench_snapshot_payload,
    format_table,
    write_bench_snapshot,
    write_report,
)
from repro.obs import Obs
from repro.obs.report import check_log_write_claim, from_obs

DURATION = 12e-3
PROTOCOLS = ("pandora", "ford", "tradlog")


def test_flight_accounting_claim():
    factory = micro_factory(write_ratio=0.5)
    rows = []
    claims = {}
    for protocol in PROTOCOLS:
        obs = Obs(trace=False, flight=True)
        result = run_steady_state(
            factory, protocol, duration=DURATION, warmup=STEADY_WARMUP, obs=obs
        )
        run = from_obs(obs)
        (claim,) = check_log_write_claim(run)
        claims[protocol] = claim
        rows.append(
            (
                protocol,
                claim["formula"],
                claim["checked"],
                f"{claim['mean_writes']:.2f}",
                f"{claim['mean_log_writes']:.2f}",
                claim["violations"],
                "OK" if claim["ok"] else "FAIL",
            )
        )
        write_bench_snapshot(
            f"flight_{protocol}", bench_snapshot_payload(result, obs)
        )

    write_report(
        "flight_accounting",
        format_table(
            "log-write accounting per committed txn (micro, 50% writes)",
            ["protocol", "expected", "txns", "mean writes", "mean log writes",
             "violations", "status"],
            rows,
            note="§4: Pandora's logging cost is per *transaction* (f+1); "
                 "FORD and tradlog pay per written *object*.",
        ),
    )

    # Every committed attempt matches its protocol's formula exactly.
    for protocol in PROTOCOLS:
        assert claims[protocol]["ok"], claims[protocol]["detail"]
        assert claims[protocol]["checked"] > 0

    # And the ordering the paper argues: constant < per-object costs.
    assert (
        claims["pandora"]["mean_log_writes"]
        < claims["ford"]["mean_log_writes"]
        < claims["tradlog"]["mean_log_writes"]
    )
