"""Fig 9 — SmallBank fail-over throughput (compute & memory crashes)."""

import pytest

from conftest import smallbank_factory
from failover_common import check_failover_shapes, run_failover_figure


@pytest.mark.benchmark(group="fig9")
def test_fig9_failover_smallbank(benchmark):
    reuse, no_reuse, memory = benchmark.pedantic(
        lambda: run_failover_figure(
            "fig9_failover_smallbank",
            "Fig 9: SmallBank",
            smallbank_factory(),
        ),
        rounds=1,
        iterations=1,
    )
    check_failover_shapes(reuse, no_reuse, memory)
