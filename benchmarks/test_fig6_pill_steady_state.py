"""Fig 6 — steady-state throughput: non-recoverable FORD vs Pandora.

Paper: with 128 coordinators on the microbenchmark, throughput over
10-30 s is 0.919 MTps without PILL and 0.912 MTps with PILL — PILL's
failed-ids check and owner-id CAS add *negligible* overhead because
the failed-ids list is empty during failure-free runs.

We compare the FORD engine (anonymous locks, no recovery state) with
Pandora (PILL + coalesced logging) and assert the same shape: within
a few percent of each other.
"""

import pytest

from conftest import STEADY_DURATION, STEADY_WARMUP, micro_factory
from repro.bench.harness import run_steady_state
from repro.bench.report import format_table, write_report


def _run():
    factory = micro_factory(write_ratio=1.0)
    ford = run_steady_state(
        factory, "baseline", duration=STEADY_DURATION, warmup=STEADY_WARMUP
    )
    pandora = run_steady_state(
        factory, "pandora", duration=STEADY_DURATION, warmup=STEADY_WARMUP
    )
    return ford, pandora


@pytest.mark.benchmark(group="fig6")
def test_fig6_pill_steady_state(benchmark):
    ford, pandora = benchmark.pedantic(_run, rounds=1, iterations=1)
    ratio = pandora.throughput / ford.throughput
    text = format_table(
        "Fig 6: steady-state throughput, FORD (no PILL) vs Pandora (PILL)",
        ["protocol", "throughput (Mtps)", "commits", "abort %"],
        [
            ("FORD (no PILL)", f"{ford.throughput / 1e6:.3f}", ford.commits,
             f"{100 * ford.abort_rate:.1f}"),
            ("Pandora (PILL)", f"{pandora.throughput / 1e6:.3f}", pandora.commits,
             f"{100 * pandora.abort_rate:.1f}"),
        ],
        note=(
            f"Pandora/FORD ratio = {ratio:.3f}. "
            "Paper: 0.912 vs 0.919 MTps (ratio 0.992) — PILL overhead "
            "is negligible in failure-free runs."
        ),
    )
    write_report("fig6_pill_steady_state", text)
    # PILL must cost at most a few percent (and may even win, since
    # coalesced logging posts fewer log writes than per-object FORD).
    assert ratio > 0.9
