"""Kernel raw-speed benchmark: events/sec sweep + regression gate.

Produces ``benchmarks/results/BENCH_KERNEL.json`` (the committed
baseline CI gates against — see docs/OBSERVABILITY.md for the schema)
and ``benchmarks/results/kernel_perf.txt``. Two guards:

* **speed**: events/sec per fleet must stay within the committed
  baseline's tolerance (default 25%); a drop beyond it means the
  dispatch loop or a subsystem hot path regressed.
* **overhead**: a fully-profiled run must stay within a bounded
  wall-clock factor of the unprofiled run (the profiler's frame
  push/pop is ~10 dict operations per instrumented boundary).
  Measured ~2.7x against the ring kernel's fast path (the fast path
  cut the unprofiled denominator; absolute profiled speed is
  unchanged); mirrors ``test_obs_overhead.py``'s slack.
"""

import json
import pathlib

from repro.bench.kernelperf import (
    DEFAULT_FLEETS,
    SMOKE_FLEET,
    run_fleet,
    run_suite,
    suite_payload,
    compare_to_baseline,
    format_suite,
)
from repro.bench.report import write_bench_snapshot, write_report
from repro.obs.profile import KernelProfiler

BASELINE = pathlib.Path(__file__).parent / "results" / "BENCH_KERNEL.json"

# Measured ~2.7x on the ring kernel: the PR 9 fast path shrank the
# *unprofiled* denominator ~2.6x while the profiled twin still pays
# the same per-boundary frame push/pop, so the ratio rose even though
# absolute profiled wall-us/event is unchanged. 4x still catches a
# profiler hot-path regression (which moves the ratio, not the
# denominator).
MAX_PROFILED_OVERHEAD = 4.0


def test_kernel_events_per_sec():
    results = run_suite(repeats=3)
    payload = suite_payload(results)
    write_report("kernel_perf", format_suite(results))
    if not BASELINE.exists():
        # First run on a fresh checkout: establish the baseline.
        write_bench_snapshot("KERNEL", payload)
        return
    baseline = json.loads(BASELINE.read_text())
    failures = compare_to_baseline(payload, baseline)
    assert not failures, "kernel-perf regression vs committed baseline:\n" + (
        "\n".join(f"  {failure}" for failure in failures)
    )


def test_smoke_fleet_1024_coordinators():
    """100x-scale smoke: 1024 coordinators must run and reproduce steps.

    Steps-only by design — no wall-clock gate. The point is that the
    ring kernel survives a fleet two orders of magnitude beyond the
    committed sweep's smallest point without blowing up (queue growth,
    recursion, quadratic scans), and that its virtual behaviour is
    still seed-deterministic at that scale.
    """
    first = run_fleet(SMOKE_FLEET, repeats=1, seed=42)
    assert first.steps > 0
    again = run_fleet(SMOKE_FLEET, repeats=1, seed=42)
    assert again.steps == first.steps


def test_profiled_overhead_bounded():
    spec = DEFAULT_FLEETS[0]
    plain = run_fleet(spec, repeats=2, seed=42)
    profiler = KernelProfiler()
    profiled = run_fleet(spec, repeats=1, seed=42, profiler=profiler)
    # Same seed, same fleet: the virtual run must be bit-identical.
    assert profiled.steps == plain.steps
    assert profiler.steps == plain.steps
    ratio = profiled.wall_seconds / plain.wall_seconds
    assert ratio < MAX_PROFILED_OVERHEAD, (
        f"profiled run {ratio:.2f}x slower than unprofiled "
        f"(bound {MAX_PROFILED_OVERHEAD}x)"
    )
