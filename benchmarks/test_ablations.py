"""Ablations of Pandora's design choices (DESIGN.md §5).

Each row removes or replaces one mechanism and measures what it costs:

* **locks without owner ids** (= the Baseline) — recovery degenerates
  to the blocking scan (covered in depth by
  ``test_baseline_scan_recovery.py``; summarized here);
* **per-object logging** (= FORD's C2) instead of the coalesced f+1
  record — more log writes per transaction;
* **pre-lock lock-logging** (= the traditional scheme) — an extra
  blocking round trip per lock;
* **NVM flush** (§7) — persistence's price on commit latency.
"""

import pytest

from conftest import STEADY_DURATION, STEADY_WARMUP, micro_factory
from repro.bench.harness import default_config, run_recovery_latency, run_steady_state
from repro.bench.report import format_table, write_report


def _run_all():
    factory = micro_factory(write_ratio=1.0)
    results = {}
    for label, protocol, extra in [
        ("pandora (full design)", "pandora", {}),
        ("per-object logging (FORD C2)", "baseline", {}),
        ("pre-lock lock-logging", "tradlog", {}),
        ("pandora + NVM flush", "pandora", {"persistence": "nvm-flush"}),
    ]:
        config = default_config(protocol=protocol, **extra)
        results[label] = run_steady_state(
            factory,
            protocol,
            duration=STEADY_DURATION,
            warmup=STEADY_WARMUP,
            config=config,
        )
    recovery = {
        "pandora (full design)": run_recovery_latency(
            factory, coordinators_per_node=16, protocol="pandora", crash_at=6e-3
        ).latency,
        "per-object logging (FORD C2)": run_recovery_latency(
            factory, coordinators_per_node=16, protocol="baseline", crash_at=6e-3
        ).latency,
        "pre-lock lock-logging": run_recovery_latency(
            factory, coordinators_per_node=16, protocol="tradlog", crash_at=6e-3
        ).latency,
    }
    return results, recovery


@pytest.mark.benchmark(group="ablations")
def test_design_ablations(benchmark):
    results, recovery = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    base = results["pandora (full design)"].throughput
    rows = []
    for label, result in results.items():
        recovered = recovery.get(label)
        rows.append(
            (
                label,
                f"{result.throughput / 1e6:.3f}",
                f"{result.throughput / base:.3f}",
                f"{result.p50_latency * 1e6:6.1f}",
                f"{recovered * 1e6:9.1f}" if recovered is not None else "      n/a",
            )
        )
    text = format_table(
        "Ablations: cost of replacing each Pandora mechanism (100%-write micro)",
        ["variant", "Mtps", "vs pandora", "p50 (us)", "recovery (us)"],
        rows,
        note=(
            "PILL + coalesced logging keeps both the fastest steady state "
            "and the fastest recovery; anonymous locks push recovery into "
            "the scan regime (seconds at scale)."
        ),
    )
    write_report("ablations", text)

    assert results["pre-lock lock-logging"].throughput < base
    nvm = results["pandora + NVM flush"]
    assert nvm.p50_latency > results["pandora (full design)"].p50_latency
    # Scan recovery is orders of magnitude slower than log recovery.
    assert recovery["per-object logging (FORD C2)"] > 20 * recovery["pandora (full design)"]
