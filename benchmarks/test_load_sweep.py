"""Open-loop load gate: a short two-point sweep per protocol.

Produces ``benchmarks/results/BENCH_LOAD.json`` (the committed baseline
CI gates against — see docs/OBSERVABILITY.md for the schema) and
``benchmarks/results/load_curves.txt``. The grid is fixed rather than
capacity-derived so the baseline is stable: one point the cluster keeps
up with and one far past the saturation knee, which pins down both
sides of every latency-vs-offered-load curve.

Three guards per (protocol, offered) point, mirroring the kernel-perf
gate: achieved throughput has a tolerance floor, CO-corrected p99 a
tolerance ceiling, and the commit count must reproduce exactly — the
sweep is seeded virtual time, so commit drift means simulated behaviour
changed and the baseline must be regenerated deliberately (delete the
JSON and rerun), not shrugged past.
"""

import json
import pathlib

import pytest

from repro.bench.report import write_bench_snapshot, write_report
from repro.load import compare_to_baseline, format_curves, run_sweep, sweep_payload
from repro.workloads import SmallBank

BASELINE = pathlib.Path(__file__).parent / "results" / "BENCH_LOAD.json"

#: One point the cluster keeps up with, one far past the knee.
GRID = [300_000.0, 1_200_000.0]
DURATION = 6e-3
USERS = 64
PROTOCOLS = ("pandora", "ford", "tradlog")


def _smallbank():
    return SmallBank(accounts=2_000, hot_accounts=500)


@pytest.fixture(scope="module")
def curves():
    return run_sweep(
        _smallbank,
        protocols=PROTOCOLS,
        grid=GRID,
        duration=DURATION,
        users=USERS,
    )


def test_load_curves_vs_committed_baseline(curves):
    payload = sweep_payload(curves)
    write_report("load_curves", format_curves(curves))
    if not BASELINE.exists():
        # First run on a fresh checkout: establish the baseline.
        write_bench_snapshot("LOAD", payload)
        return
    baseline = json.loads(BASELINE.read_text())
    failures = compare_to_baseline(payload, baseline)
    assert not failures, "load regression vs committed baseline:\n" + (
        "\n".join(f"  {failure}" for failure in failures)
    )


def test_saturation_knee_is_visible(curves):
    # Past-capacity offered load must visibly saturate every protocol;
    # a knee that never appears means the driver is secretly closed-loop.
    for curve in curves:
        assert curve.knee_offered_tps is not None, curve.protocol
        high = curve.points[-1]
        assert high.achieved_tps < 0.9 * high.offered, curve.protocol


def test_sub_saturation_point_keeps_up(curves):
    for curve in curves:
        low = curve.points[0]
        assert low.achieved_tps > 0.6 * low.offered, curve.protocol
        assert low.backlog_end <= 2, curve.protocol


def test_co_correction_inflates_the_saturated_tail(curves):
    # Under saturation the CO-corrected p99 (from intended arrival)
    # must dominate the pure service-time p99 — the gap is the queueing
    # delay a closed-loop driver would silently omit.
    for curve in curves:
        high = curve.points[-1]
        assert high.co.percentile(99) > high.service.percentile(99), curve.protocol
        # The 6ms window builds a deep queue (the drain grace then
        # empties it, so backlog/censored may legitimately be zero).
        assert high.queue_depth_peak > 100, curve.protocol


def test_accounting_is_exact_at_every_point(curves):
    for curve in curves:
        for point in curve.points:
            assert point.intended == (
                point.completed + point.unknown + point.censored
            ), (curve.protocol, point.offered)
