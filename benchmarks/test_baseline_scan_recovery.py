"""§6.1 — the Baseline's scan-based recovery takes seconds.

Paper: FORD's anonymous locks force recovery to scan the entire store
with one-sided reads from a single recovery thread: "around 5 seconds
for 1 million keys", growing linearly with the key count, while the
whole KVS is stopped. This is the ablation of PILL — remove the owner
id from the lock word and this scan is what recovery degenerates to.
"""

import pytest

from conftest import micro_factory
from repro.bench.harness import run_recovery_latency
from repro.bench.report import format_table, write_report

KEY_SWEEP = [5_000, 20_000, 50_000]


def _sweep():
    rows = []
    latencies = {}
    for keys in KEY_SWEEP:
        baseline = run_recovery_latency(
            micro_factory(write_ratio=1.0, keys=keys),
            coordinators_per_node=8,
            protocol="baseline",
            crash_at=6e-3,
        )
        latencies[keys] = baseline.latency
        per_million = baseline.latency * (1_000_000 / keys)
        rows.append(
            (
                keys,
                f"{baseline.latency * 1e3:9.2f}",
                f"{per_million:6.2f}",
            )
        )
    pandora = run_recovery_latency(
        micro_factory(write_ratio=1.0, keys=KEY_SWEEP[-1]),
        coordinators_per_node=8,
        protocol="pandora",
        crash_at=6e-3,
    )
    return rows, latencies, pandora


@pytest.mark.benchmark(group="scan")
def test_baseline_scan_recovery(benchmark):
    rows, latencies, pandora = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows.append(("(pandora, 50k keys)", f"{pandora.latency * 1e3:9.2f}", "-"))
    text = format_table(
        "Baseline (FORD) scan recovery latency vs store size",
        ["keys", "recovery (ms)", "extrapolated s per 1M keys"],
        rows,
        note=(
            "Paper: ~5 s per million keys, single recovery thread, whole "
            "KVS blocked. Pandora's log recovery is shown for contrast."
        ),
    )
    write_report("baseline_scan_recovery", text)

    # Linear growth in the key count (ratio tracks the key ratio).
    ratio = latencies[KEY_SWEEP[-1]] / latencies[KEY_SWEEP[0]]
    key_ratio = KEY_SWEEP[-1] / KEY_SWEEP[0]
    assert 0.5 * key_ratio <= ratio <= 1.5 * key_ratio

    # Extrapolated per-million-keys cost lands in "multiple seconds".
    per_million = latencies[KEY_SWEEP[-1]] * (1_000_000 / KEY_SWEEP[-1])
    assert per_million > 1.0

    # Orders of magnitude slower than Pandora on the same store.
    assert latencies[KEY_SWEEP[-1]] > 100 * pandora.latency
