"""Fig 7 — Pandora steady-state throughput vs mean time to failure.

Paper: with no failures / MTTF=10s / 2s / 1s the 10-30 s throughput is
0.911 / 0.912 / 0.901 / 0.911 MTps — lock stealing under failures adds
insignificant overhead because only a few stray locks actually need
stealing and the cost is amortized over the run.

Simulated time is compressed ~1000x, so the MTTF sweep is scaled the
same way (no failures, 20 ms, 8 ms, 4 ms) with a 1 ms repair time.
"""

import pytest

from conftest import micro_factory
from repro.bench.harness import run_mttf
from repro.bench.report import format_table, write_report

SWEEP = [None, 20e-3, 8e-3, 4e-3]
DURATION = 50e-3


def _run():
    factory = micro_factory(write_ratio=1.0)
    results = []
    for mttf in SWEEP:
        results.append(
            run_mttf(
                factory,
                mttf,
                protocol="pandora",
                duration=DURATION,
                # Repair strictly after detection (~0.7 ms) + recovery,
                # as in the paper (restore <10 ms after the fault).
                repair_time=1.5e-3,
                fd_timeout=0.5e-3,
                fd_heartbeat_interval=0.1e-3,
                fd_check_interval=0.05e-3,
            )
        )
    return results


@pytest.mark.benchmark(group="fig7")
def test_fig7_mttf_sensitivity(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    baseline = results[0].throughput
    rows = []
    for mttf, result in zip(SWEEP, results):
        label = "no failures" if mttf is None else f"{mttf * 1e3:.0f} ms"
        rows.append(
            (
                label,
                f"{result.throughput / 1e6:.3f}",
                f"{result.throughput / baseline:.3f}",
                result.locks_stolen,
            )
        )
    text = format_table(
        "Fig 7: Pandora throughput vs MTTF (crash/restore half the coordinators)",
        ["MTTF", "throughput (Mtps)", "vs no-failure", "locks stolen"],
        rows,
        note=(
            "Paper: 0.911 / 0.912 / 0.901 / 0.911 MTps for inf/10s/2s/1s — "
            "PILL keeps the overhead insignificant even at absurd MTTF. "
            "(Our crashed node is down ~1 ms per failure, so a small "
            "capacity dip at the lowest MTTF is expected.)"
        ),
    )
    write_report("fig7_mttf", text)
    for mttf, result in zip(SWEEP[1:], results[1:]):
        # Throughput loss stays within the capacity actually offline
        # (downtime/MTTF x half the coordinators) plus a small margin —
        # i.e. PILL itself adds no contention collapse.
        downtime = 2.5e-3  # detection + recovery + restart
        expected_floor = 1.0 - 0.5 * min(1.0, downtime / mttf) - 0.25
        assert result.throughput > expected_floor * baseline, (
            f"MTTF={mttf}: {result.throughput / baseline:.2f} < {expected_floor:.2f}"
        )
