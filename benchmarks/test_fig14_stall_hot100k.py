"""Fig 14 — sensitivity to stalls, low contention (100 000 hot keys).

Paper (§6.4): with a large hot set, conflicts are rare, so even under
slow recovery the non-conflicting transactions keep executing — a
gradual decline rather than an immediate drop to zero — while fast
recovery keeps throughput steady (modulo the lost coordinators).

The Baseline here still pauses the world for its scan, but the scan
of the small store is brief; the discriminating claim vs Fig 13 is
that the *conflicting* work no longer dominates: Pandora's dip is
shallower than under the small hot set, and the Baseline recovers
(the paper notes its throughput "recovers but after seconds").
"""

import pytest

from conftest import FAILOVER_CRASH_AT, micro_factory, series_rate
from repro.bench.harness import run_failover
from repro.bench.report import format_series, format_table, write_report

DURATION = 120e-3
HOT_KEYS = 20_000


def _run():
    factory = micro_factory(write_ratio=1.0, hot_keys=HOT_KEYS, keys=20_000)
    fast = run_failover(
        factory,
        protocol="pandora",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=DURATION,
        coordinators_per_node=16,
    )
    slow = run_failover(
        factory,
        protocol="baseline",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=DURATION,
        coordinators_per_node=16,
    )
    return fast, slow


@pytest.mark.benchmark(group="fig14")
def test_fig14_stall_low_contention(benchmark):
    fast, slow = benchmark.pedantic(_run, rounds=1, iterations=1)
    during = (FAILOVER_CRASH_AT + 7e-3, FAILOVER_CRASH_AT + 30e-3)
    fast_during = series_rate(fast.series, *during)
    slow_post = series_rate(slow.series, DURATION - 20e-3, DURATION)
    text = format_table(
        f"Fig 14: fail-over under low contention ({HOT_KEYS} hot keys)",
        ["protocol", "pre (Mtps)", "during (Mtps)", "final (Mtps)"],
        [
            ("pandora", f"{fast.pre_rate / 1e6:.3f}", f"{fast_during / 1e6:.3f}",
             f"{series_rate(fast.series, DURATION - 20e-3, DURATION) / 1e6:.3f}"),
            ("baseline", f"{slow.pre_rate / 1e6:.3f}",
             f"{series_rate(slow.series, *during) / 1e6:.3f}",
             f"{slow_post / 1e6:.3f}"),
        ],
        note=(
            "Paper: with few conflicts, fast recovery keeps throughput "
            "steady (minus the failed coordinators); baseline throughput "
            "recovers, but only after its blocking scan completes."
        ),
    )
    text += "\n" + format_series(
        "Fig 14 — Pandora", fast.series, markers=[(FAILOVER_CRASH_AT, "crash")]
    )
    text += "\n" + format_series(
        "Fig 14 — Baseline", slow.series, markers=[(FAILOVER_CRASH_AT, "crash")]
    )
    write_report("fig14_stall_hot_large", text)

    # Pandora under low contention: dip is just the lost capacity.
    assert fast_during > 0.35 * fast.pre_rate
    fast_post = series_rate(fast.series, DURATION - 20e-3, DURATION)
    assert fast_post > 0.35 * fast.pre_rate  # steady thereafter
    # Baseline: still inside its blocking scan at the end of the
    # plotted window — the paper's Fig 14 caption notes its throughput
    # "recovers but after seconds (not shown in the plot)".
    scan_records = [r for r in slow.recovery_records if r.kind == "compute"]
    assert scan_records, "baseline recovery never started"
    assert slow_post < 0.25 * slow.pre_rate
