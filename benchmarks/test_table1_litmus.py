"""Table 1 — the six FORD bugs exposed by the litmus framework (§5.1).

The harness runs the full litmus suite against Pandora (which must
pass, with and without crash injection) and then replays each Table 1
bug: the racy online (C1) bugs through randomized campaigns, the
recovery-path (C2) bugs through directed deterministic scenarios.
"""

import pytest

from repro.bench.report import format_table, write_report
from repro.litmus import LITMUS_SUITE, LitmusRunner
from repro.litmus.scenarios import (
    run_complicit_abort_scenario,
    run_log_without_lock_scenario,
    run_lost_decision_scenario,
    run_missing_insert_log_scenario,
)
from repro.litmus.specs import litmus2_read_write, litmus3_indirect_write
from repro.protocol.types import BugFlags


def _campaign(spec, protocol, bugs, rounds, copies, seed, crash=0.0):
    return LitmusRunner(
        spec,
        protocol=protocol,
        bugs=bugs,
        rounds=rounds,
        copies=copies,
        seed=seed,
        crash_probability=crash,
    ).run()


def _run_everything():
    rows = []

    # Pandora must pass the full suite, failure-free and under crashes.
    pandora_reports = []
    for spec in LITMUS_SUITE():
        report = _campaign(spec, "pandora", None, rounds=25, copies=2, seed=11)
        pandora_reports.append(report)
        rows.append((spec.name, "pandora (fixed)", "none", "-", report.summary().split()[-1]))
    for spec in LITMUS_SUITE():
        report = _campaign(
            spec, "pandora", None, rounds=25, copies=2, seed=11, crash=0.5
        )
        pandora_reports.append(report)
        rows.append(
            (spec.name, "pandora (fixed)", "none", "crashes", report.summary().split()[-1])
        )

    # Table 1 bugs.
    bug_results = {}

    report = _campaign(
        litmus3_indirect_write(),
        "pandora",
        BugFlags(complicit_abort=True),
        rounds=100,
        copies=3,
        seed=3,
    )
    scenario = run_complicit_abort_scenario("pandora", BugFlags(complicit_abort=True))
    bug_results["complicit_abort"] = (not report.passed) or (not scenario.consistent)
    rows.append(
        ("litmus-1/3", "C1 complicit aborts", "seeded", "campaign+scenario",
         "CAUGHT" if bug_results["complicit_abort"] else "missed")
    )

    scenario = run_missing_insert_log_scenario(
        "baseline", BugFlags(missing_insert_log=True)
    )
    bug_results["missing_insert_log"] = not scenario.consistent
    rows.append(
        ("litmus-1 (insert)", "C2 missing actions", "seeded", "scenario",
         "CAUGHT" if bug_results["missing_insert_log"] else "missed")
    )

    report = _campaign(
        litmus2_read_write(),
        "pandora",
        BugFlags(covert_locks=True),
        rounds=40,
        copies=2,
        seed=2,
    )
    bug_results["covert_locks"] = not report.passed
    rows.append(
        ("litmus-2", "C1 covert locks", "seeded", "campaign",
         "CAUGHT" if bug_results["covert_locks"] else "missed")
    )

    report = _campaign(
        litmus2_read_write(),
        "pandora",
        BugFlags(relaxed_locks=True),
        rounds=100,
        copies=1,
        seed=1,
    )
    bug_results["relaxed_locks"] = not report.passed
    rows.append(
        ("litmus-2", "C1 relaxed locks", "seeded", "campaign",
         "CAUGHT" if bug_results["relaxed_locks"] else "missed")
    )

    scenario = run_lost_decision_scenario("baseline", BugFlags(lost_decision=True))
    bug_results["lost_decision"] = not scenario.consistent
    rows.append(
        ("litmus-3", "C2 lost decision", "seeded", "scenario",
         "CAUGHT" if bug_results["lost_decision"] else "missed")
    )

    scenario = run_log_without_lock_scenario(
        "baseline", BugFlags(log_without_lock=True)
    )
    bug_results["log_without_lock"] = not scenario.consistent
    rows.append(
        ("litmus-3", "C2 logging w/o locking", "seeded", "scenario",
         "CAUGHT" if bug_results["log_without_lock"] else "missed")
    )

    return rows, pandora_reports, bug_results


@pytest.mark.benchmark(group="table1")
def test_table1_litmus_validation(benchmark):
    rows, pandora_reports, bug_results = benchmark.pedantic(
        _run_everything, rounds=1, iterations=1
    )
    text = format_table(
        "Table 1: litmus validation — Pandora passes, all six FORD bugs caught",
        ["litmus", "bug (category)", "bug state", "method", "result"],
        rows,
        note="Paper: six bugs across C1/C2 found via litmus 1-3; all fixed in Pandora.",
    )
    write_report("table1_litmus", text)

    for report in pandora_reports:
        assert report.passed, f"Pandora violated {report.spec_name}"
    for bug, caught in bug_results.items():
        assert caught, f"bug {bug} was not caught"
