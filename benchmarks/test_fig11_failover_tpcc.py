"""Fig 11 — TPC-C fail-over throughput (compute & memory crashes)."""

import pytest

from conftest import tpcc_factory
from failover_common import check_failover_shapes, run_failover_figure


@pytest.mark.benchmark(group="fig11")
def test_fig11_failover_tpcc(benchmark):
    reuse, no_reuse, memory = benchmark.pedantic(
        lambda: run_failover_figure(
            "fig11_failover_tpcc",
            "Fig 11: TPC-C",
            tpcc_factory(),
        ),
        rounds=1,
        iterations=1,
    )
    check_failover_shapes(reuse, no_reuse, memory)
