"""Fig 13 — sensitivity to stalls, high contention (1 000 hot keys).

Paper (§6.4): with a small hot set and transactions that wait for
recovery of the objects they conflict on, slow (Baseline) recovery
drives throughput to zero — "the combination of high recovery latency
and a high conflict rate quickly blocked all coordinators" — while
Pandora's fast recovery shows only an initial drop and then
stabilizes.

We crash half the coordinators (one of the two compute nodes) on a
100%-write microbenchmark confined to a small hot set, and compare
Pandora (ms recovery) against the Baseline (scan recovery, blocking).
Hot-set sizes are scaled with the keyspace (100 hot keys here vs the
paper's 1 000 over a much larger store).
"""

import pytest

from conftest import FAILOVER_CRASH_AT, micro_factory, series_rate
from repro.bench.harness import run_failover
from repro.bench.report import format_series, format_table, write_report

DURATION = 90e-3
HOT_KEYS = 100


def _run():
    factory = micro_factory(write_ratio=1.0, hot_keys=HOT_KEYS, keys=20_000)
    fast = run_failover(
        factory,
        protocol="pandora",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=DURATION,
        coordinators_per_node=16,
    )
    slow = run_failover(
        factory,
        protocol="baseline",
        crash_kind="compute",
        crash_at=FAILOVER_CRASH_AT,
        duration=DURATION,
        coordinators_per_node=16,
    )
    return fast, slow


@pytest.mark.benchmark(group="fig13")
def test_fig13_stall_high_contention(benchmark):
    fast, slow = benchmark.pedantic(_run, rounds=1, iterations=1)
    # Probe the window after detection while recovery runs.
    window = (FAILOVER_CRASH_AT + 7e-3, FAILOVER_CRASH_AT + 30e-3)
    fast_during = series_rate(fast.series, *window)
    slow_during = series_rate(slow.series, *window)
    text = format_table(
        f"Fig 13: fail-over under contention ({HOT_KEYS} hot keys, 100% writes)",
        ["protocol", "pre (Mtps)", "during recovery (Mtps)", "during/pre"],
        [
            ("pandora (fast recovery)", f"{fast.pre_rate / 1e6:.3f}",
             f"{fast_during / 1e6:.3f}",
             f"{fast_during / fast.pre_rate:.2f}"),
            ("baseline (slow recovery)", f"{slow.pre_rate / 1e6:.3f}",
             f"{slow_during / 1e6:.3f}",
             f"{slow_during / slow.pre_rate:.2f}"),
        ],
        note=(
            "Paper: slow recovery + high conflict rate drives throughput "
            "to zero; fast recovery dips then stabilizes."
        ),
    )
    text += "\n" + format_series(
        "Fig 13 — Pandora", fast.series, markers=[(FAILOVER_CRASH_AT, "crash")]
    )
    text += "\n" + format_series(
        "Fig 13 — Baseline", slow.series, markers=[(FAILOVER_CRASH_AT, "crash")]
    )
    write_report("fig13_stall_hot_small", text)

    # Baseline: blocked (stop-the-world scan) -> (near) zero.
    assert slow_during < 0.1 * slow.pre_rate
    # Pandora: keeps making progress through recovery.
    assert fast_during > 0.25 * fast.pre_rate
