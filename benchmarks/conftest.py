"""Shared fixtures and scales for the benchmark suite.

Scales are reduced relative to the paper's testbed (which sustains
~0.9 MTps on 128 hardware coordinators for tens of seconds) so each
experiment simulates in seconds; EXPERIMENTS.md records the mapping.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.workloads import MicroBenchmark, SmallBank, Tatp, TpcC

# One simulated "second" of benchmark time is expensive; durations are
# tens of milliseconds, which at ~1-3 Mtps yields 10k-100k committed
# transactions per run — plenty for stable rates.
STEADY_WARMUP = 4e-3
STEADY_DURATION = 20e-3
FAILOVER_CRASH_AT = 20e-3
FAILOVER_DURATION = 60e-3


def micro_factory(write_ratio: float = 1.0, hot_keys: int = None, keys: int = 10_000):
    def factory():
        return MicroBenchmark(
            num_keys=keys, write_ratio=write_ratio, hot_keys=hot_keys
        )

    return factory


def smallbank_factory(accounts: int = 5_000):
    def factory():
        return SmallBank(accounts=accounts)

    return factory


def tatp_factory(subscribers: int = 2_000):
    def factory():
        return Tatp(subscribers=subscribers)

    return factory


def tpcc_factory(warehouses: int = 2, customers: int = 100, items: int = 1_000):
    def factory():
        return TpcC(
            warehouses=warehouses,
            customers_per_district=customers,
            items=items,
        )

    return factory


WORKLOAD_FACTORIES = {
    "microbench": micro_factory(),
    "smallbank": smallbank_factory(),
    "tatp": tatp_factory(),
    "tpcc": tpcc_factory(),
}


def series_rate(series: List[Tuple[float, float]], start: float, end: float) -> float:
    """Mean rate of a (window start, ops/s) series over [start, end)."""
    samples = [rate for when, rate in series if start <= when < end]
    return sum(samples) / len(samples) if samples else 0.0
