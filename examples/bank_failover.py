#!/usr/bin/env python
"""SmallBank under failures: strict serializability you can audit.

Runs the SmallBank OLTP workload restricted to balance-conserving
transactions (payments and amalgamations), crashes a compute server
mid-run — killing dozens of in-flight transactions — lets Pandora
recover, and then audits the global invariant: not a single cent was
created or destroyed.

Run with:  python examples/bank_failover.py
"""

from repro import Cluster, ClusterConfig
from repro.workloads import SmallBank
from repro.workloads.smallbank import INITIAL_BALANCE

ACCOUNTS = 2_000


def audit(workload, cluster, label: str) -> None:
    total = workload.total_balance(cluster.catalog, cluster.memory_nodes)
    expected = 2 * ACCOUNTS * INITIAL_BALANCE  # savings + checking
    status = "OK" if total == expected else "VIOLATION"
    print(f"{label:28s} total={total:>12d} expected={expected:>12d}  [{status}]")
    assert total == expected, "money conservation violated!"


def main() -> None:
    workload = SmallBank(accounts=ACCOUNTS, conserving_only=True)
    cluster = Cluster(
        ClusterConfig(
            memory_nodes=2,
            compute_nodes=2,
            coordinators_per_node=8,
            protocol="pandora",
            seed=23,
        ),
        workload,
    )
    cluster.start()

    cluster.run(until=0.010)
    print(f"commits so far: {cluster.aggregate_stats().commits}")

    # Crash one compute server while transfers are in flight.
    cluster.crash_compute(0, at=0.010)
    cluster.run(until=0.030)
    record = cluster.recovery.records[0]
    print(
        f"compute server 0 crashed; recovery took "
        f"{record.log_recovery_latency * 1e6:.0f} us "
        f"(rolled forward {record.rolled_forward}, back {record.rolled_back})"
    )

    # Quiesce in-flight transactions, then audit every balance.
    for node in cluster.compute_nodes.values():
        node.pause()
    cluster.run(until=0.032)
    audit(workload, cluster, "after crash + recovery")

    # Resume and also survive a memory-server crash (§3.2.5).
    for node in cluster.compute_nodes.values():
        node.resume()
    cluster.crash_memory(0, at=0.035)
    cluster.run(until=0.060)
    for node in cluster.compute_nodes.values():
        node.pause()
    cluster.run(until=0.062)
    audit(workload, cluster, "after memory failure too")

    print(f"total commits: {cluster.aggregate_stats().commits}")
    print("every transfer was atomic across both failures.")


if __name__ == "__main__":
    main()
