#!/usr/bin/env python
"""Writing your own transactional application on the DKVS API.

The compute-side library exposes the paper's transactional API
(BeginTx / Read / Write / Insert / Delete / CommitTx, §2.1) through
`Txn` handles: transaction logic is a generator function that reads
with ``yield from tx.read(...)`` / ``tx.read_for_update(...)`` and
buffers writes with ``tx.write(...)``. This example builds a small
inventory/ordering application from scratch and runs it under Pandora,
including a mid-run compute crash.

Run with:  python examples/custom_workload.py
"""

import random

from repro import Cluster, ClusterConfig
from repro.kvs.catalog import TableSpec
from repro.workloads.base import Workload

TABLE_PRODUCTS = 0
TABLE_ORDERS = 1
TABLE_COUNTERS = 2


class InventoryWorkload(Workload):
    """Products with stock counts; orders atomically reserve stock."""

    name = "inventory"

    def __init__(self, products: int = 500, max_orders: int = 20_000) -> None:
        self.products = products
        self.max_orders = max_orders

    def create_schema(self, catalog) -> None:
        catalog.add_table(TableSpec(TABLE_PRODUCTS, "products", self.products, 64))
        catalog.add_table(TableSpec(TABLE_ORDERS, "orders", self.max_orders, 128))
        catalog.add_table(TableSpec(TABLE_COUNTERS, "counters", 16, 8))

    def load(self, catalog, memory_nodes, rng) -> None:
        catalog.load(
            memory_nodes,
            TABLE_PRODUCTS,
            ((pid, {"stock": 1_000, "reserved": 0}) for pid in range(self.products)),
        )
        catalog.load(memory_nodes, TABLE_COUNTERS, [("orders_placed", 0)])

    def next_transaction(self, rng: random.Random):
        if rng.random() < 0.8:
            return self._place_order(rng)
        return self._check_stock(rng)

    def _place_order(self, rng: random.Random):
        product = rng.randrange(self.products)
        quantity = rng.randint(1, 3)
        order_key = (rng.getrandbits(48), product)  # unique-ish id

        def logic(tx):
            # Reserve stock with a lock-and-read, abort if exhausted.
            row = yield from tx.read_for_update("products", product)
            if row["stock"] < quantity:
                tx.abort("out of stock")
            tx.write(
                "products",
                product,
                {"stock": row["stock"] - quantity, "reserved": row["reserved"] + quantity},
            )
            # Record the order and bump the global counter atomically.
            tx.insert("orders", order_key, {"product": product, "qty": quantity})
            placed = yield from tx.read_for_update("counters", "orders_placed")
            tx.write("counters", "orders_placed", placed + 1)
            return order_key

        return logic

    def _check_stock(self, rng: random.Random):
        product = rng.randrange(self.products)

        def logic(tx):
            row = yield from tx.read("products", product)
            return row["stock"]

        return logic


def main() -> None:
    workload = InventoryWorkload()
    cluster = Cluster(
        ClusterConfig(
            compute_nodes=2,
            coordinators_per_node=4,
            protocol="pandora",
            seed=99,
        ),
        workload,
    )
    cluster.start()
    cluster.run(until=0.015)
    cluster.crash_compute(1, at=0.015)  # kill half the coordinators
    cluster.run(until=0.040)

    # Audit: the global counter equals the number of committed orders,
    # and reserved stock equals the sum of order quantities.
    for node in cluster.compute_nodes.values():
        node.pause()
    cluster.run(until=0.042)
    catalog = cluster.catalog

    def value_of(table_id, key):
        slot = catalog.slot_for(table_id, key)
        primary = catalog.primary(table_id, slot)
        entry = cluster.memory_nodes[primary].slot(table_id, slot)
        return entry.value if entry.present else None

    placed = value_of(TABLE_COUNTERS, "orders_placed")
    orders = [
        value_of(TABLE_ORDERS, key)
        for key in catalog.known_keys(TABLE_ORDERS)
        if value_of(TABLE_ORDERS, key) is not None
    ]
    reserved = sum(
        value_of(TABLE_PRODUCTS, pid)["reserved"] for pid in range(workload.products)
    )
    print(f"orders_placed counter : {placed}")
    print(f"order rows present    : {len(orders)}")
    print(f"units reserved        : {reserved}")
    print(f"sum of order qtys     : {sum(order['qty'] for order in orders)}")
    assert placed == len(orders), "counter does not match order rows!"
    assert reserved == sum(order["qty"] for order in orders), "reservation mismatch!"
    print("atomicity held across the crash: counter == orders, "
          "reservations == ordered units.")


if __name__ == "__main__":
    main()
