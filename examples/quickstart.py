#!/usr/bin/env python
"""Quickstart: build a disaggregated KVS, run transactions, survive a crash.

This walks the core loop of the library:

1. Define a workload (here: the paper's microbenchmark).
2. Build a simulated deployment — memory servers, compute servers with
   Pandora coordinators, a failure detector, a recovery manager.
3. Run failure-free traffic, then crash a compute server mid-run and
   watch Pandora recover in milliseconds without stopping the store.

Run with:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig
from repro.workloads import MicroBenchmark


def main() -> None:
    # 1. A 100%-write microbenchmark over 10k keys (8B keys, 40B values).
    workload = MicroBenchmark(num_keys=10_000, write_ratio=1.0)

    # 2. Two memory servers, two compute servers with 8 coordinators
    #    each, f+1 = 2 replication, Pandora protocol, 5 ms FD timeout.
    config = ClusterConfig(
        memory_nodes=2,
        compute_nodes=2,
        coordinators_per_node=8,
        replication_degree=2,
        protocol="pandora",
        seed=7,
    )
    cluster = Cluster(config, workload)
    cluster.start()

    # 3. Failure-free warm-up.
    cluster.run(until=0.010)
    pre_rate = cluster.timeline.rate_between(0.005, 0.010)
    print(f"steady-state throughput : {pre_rate / 1e6:.2f} Mtps (simulated)")

    # Crash compute server 0 at t=10 ms; keep running.
    cluster.crash_compute(0, at=0.010)
    cluster.run(until=0.040)

    record = cluster.recovery.records[0]
    print(f"failure detected at     : {record.detected_at * 1e3:.2f} ms "
          f"(crash at 10.00 ms, 5 ms heartbeat timeout)")
    print(f"log-recovery latency    : {record.log_recovery_latency * 1e6:.0f} us")
    print(f"stray txns rolled fwd   : {record.rolled_forward}")
    print(f"stray txns rolled back  : {record.rolled_back}")

    during = cluster.timeline.rate_between(record.detected_at, record.finished_at + 2e-3)
    post = cluster.timeline.rate_between(0.030, 0.040)
    print(f"throughput during recov.: {during / 1e6:.2f} Mtps  "
          "(never zero: recovery is non-blocking)")
    print(f"throughput after        : {post / 1e6:.2f} Mtps  "
          "(one of two compute servers remains)")

    stats = cluster.aggregate_stats()
    print(f"total commits           : {stats.commits}")
    print(f"stray locks stolen      : {stats.locks_stolen} (PILL, §3.1.2)")


if __name__ == "__main__":
    main()
