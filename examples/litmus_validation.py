#!/usr/bin/env python
"""Litmus-testing a transactional protocol end to end (§5).

Shows the validation workflow the paper introduces:

1. Run the litmus suite (direct-write, read-write, indirect-write
   dependency cycles, plus insert/delete and compound variants)
   against Pandora — with random crash injection — and watch it pass.
2. Re-enable two of FORD's published bugs and watch the same suite
   catch them, including a deterministic replay of the "lost decision"
   recovery bug.

Run with:  python examples/litmus_validation.py
"""

from repro.litmus import LITMUS_SUITE, LitmusRunner
from repro.litmus.scenarios import run_lost_decision_scenario
from repro.litmus.specs import litmus2_read_write
from repro.protocol.types import BugFlags


def main() -> None:
    print("=== Pandora, with random crash injection ===")
    for spec in LITMUS_SUITE():
        report = LitmusRunner(
            spec, protocol="pandora", rounds=20, crash_probability=0.4, seed=5
        ).run()
        print(" ", report.summary())

    print()
    print("=== FORD's 'covert locks' bug (validation skips the lock bit) ===")
    report = LitmusRunner(
        litmus2_read_write(),
        protocol="pandora",
        bugs=BugFlags(covert_locks=True),
        rounds=40,
        seed=2,
    ).run()
    print(" ", report.summary())
    if report.violations:
        violation = report.violations[0]
        print(f"  first violation: {violation.description}")
        print("  (both transactions read the other's pre-state: a "
              "read-write dependency cycle)")

    print()
    print("=== FORD's 'lost decision' bug — deterministic replay ===")
    buggy = run_lost_decision_scenario("baseline", BugFlags(lost_decision=True))
    fixed = run_lost_decision_scenario("baseline", BugFlags())
    print(f"  with the bug : {buggy.summary()}")
    print(f"  with the fix : {fixed.summary()}")
    print("  (recovery rolled back a committed write of another "
          "transaction because a stale log of an aborted txn survived)")


if __name__ == "__main__":
    main()
