#!/usr/bin/env python
"""Plot a fail-over timeline straight from the benchmark harness.

Reproduces a miniature Fig 8 interactively: one compute crash with
resource reuse, rendered as an ASCII throughput-over-time chart with
the crash and detection points marked.

Run with:  python examples/failover_timeline.py
"""

from repro.bench.harness import run_failover
from repro.bench.report import format_series
from repro.workloads import MicroBenchmark

CRASH_AT = 15e-3


def main() -> None:
    result = run_failover(
        lambda: MicroBenchmark(num_keys=5_000, write_ratio=1.0),
        protocol="pandora",
        crash_kind="compute",
        crash_at=CRASH_AT,
        duration=45e-3,
        reuse_resources=True,
        restart_after=8e-3,
        coordinators_per_node=8,
    )
    record = result.recovery_records[0]
    print(
        format_series(
            "Pandora fail-over: compute crash with resource reuse",
            result.series,
            markers=[
                (CRASH_AT, "crash"),
                (record.detected_at, "detected"),
                (record.finished_at, "recovered"),
            ],
        )
    )
    print(
        f"pre-failure  : {result.pre_rate / 1e6:.2f} Mtps\n"
        f"during       : {result.during_rate / 1e6:.2f} Mtps "
        "(survivors never stop)\n"
        f"post-restart : {result.post_rate / 1e6:.2f} Mtps\n"
        f"log recovery : {record.log_recovery_latency * 1e6:.0f} us"
    )


if __name__ == "__main__":
    main()
