"""Discrete-event simulation kernel used by every subsystem."""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    Simulator,
    Timeout,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "Simulator",
    "Timeout",
]
