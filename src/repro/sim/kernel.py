"""Discrete-event simulation kernel.

The kernel drives generator-based *processes* over a virtual clock. A
process is a Python generator that yields :class:`Event` objects; the
kernel resumes the generator when the yielded event fires, sending the
event's value back into the generator (or throwing its exception).

This is a deliberately small SimPy-like core. Everything in the
reproduction — RDMA verbs, coordinators, failure detectors, recovery —
is built as processes on top of it, which gives us two properties the
paper's testbed cannot offer: *determinism* (a seeded run always yields
the same history) and *precise fault placement* (a compute node can be
crashed between any two protocol steps).

Scheduling is split across two queues (see docs/KERNEL.md):

* the **now-ring** — a plain FIFO deque holding every entry due at the
  current virtual time. ``call_soon``/``_post`` (the vast majority of
  traffic: event callbacks, process resumptions, fan-in) append here
  and never touch the heap.
* the **timer heap** — a ``(when, seq, entry)`` heapq holding only
  entries strictly in the future. When the ring drains, the kernel pops
  the earliest timer, advances the clock, and *drains every other timer
  due at that same instant into the ring* so same-timestamp work
  dispatches FIFO without further heap traffic.

The split preserves the exact global ``(when, seq)`` dispatch order of
the single-heap kernel: at the moment the clock advances to ``t`` the
ring is empty and the heap yields the ``t``-entries in seq order; any
entry scheduled *at* ``t`` afterwards appends behind them, which is
where its (larger) seq would have sorted it anyway. ``legacy=True``
reinstates the single-heap scheduler so parity tests can diff the two
builds event-for-event.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "ProcessKilled",
    "Simulator",
]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised internally when a process is killed (crash-stop)."""


_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and *processed* after its callbacks ran.
    """

    __slots__ = ("sim", "_state", "_value", "_exception", "callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.callbacks: List[Callable[["Event"], None]] = []

    def __call__(self) -> None:
        """Kernel dispatch: fire the callbacks of a triggered event.

        Events and raw callables share one dispatch shape — the kernel
        just calls whatever it dequeues, so ``step`` needs no
        ``isinstance`` branch.
        """
        if self._state == _TRIGGERED:
            self._run_callbacks()

    @property
    def triggered(self) -> bool:
        """True once the event has fired (succeeded or failed)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks of the event have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value of the event; raises its exception on failure."""
        if not self.triggered:
            raise RuntimeError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with *value*."""
        if self._state != _PENDING:
            raise RuntimeError("event already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception."""
        if self._state != _PENDING:
            raise RuntimeError("event already triggered")
        self._state = _TRIGGERED
        self._exception = exception
        self.sim._post(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def finish_now(self, value: Any, exception: Optional[BaseException] = None) -> None:
        """Trigger and run callbacks synchronously at the current time.

        A fast path for high-volume producers (the RDMA fabric) that
        are already executing at the event's due time: it skips the
        schedule/dequeue round trip of :meth:`succeed`.
        """
        if self._state != _PENDING:
            raise RuntimeError("event already triggered")
        self._value = value
        self._exception = exception
        self._run_callbacks()

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke *callback(event)* once the event fires."""
        if self._state == _PROCESSED:
            # Late subscription: deliver on the next kernel step so the
            # caller still observes asynchronous semantics.
            self.sim.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._state = _TRIGGERED
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """Wraps a generator; completes when the generator returns.

    The process's :class:`Event` side fires with the generator's return
    value, or fails with the exception that escaped the generator.
    """

    __slots__ = ("generator", "_target", "_alive", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._alive = True
        sim.call_soon(self._begin)

    def _begin(self) -> None:
        self._resume(None, None)

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished or been killed."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Idempotent on dead processes: interrupting a process that has
        already finished (or been killed) is a no-op, like SimPy's.
        """
        if not self._alive:
            return
        target, self._target = self._target, None
        if target is not None:
            target.callbacks = [
                cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
            ]
        self.sim.call_soon(lambda: self._resume(None, Interrupt(cause)))

    def kill(self) -> None:
        """Terminate the process immediately without running any more of it.

        This models a crash-stop failure: the process never observes the
        kill, it simply stops executing. The process event fails with
        :class:`ProcessKilled` so that joiners are not left hanging.
        """
        if not self._alive:
            return
        self._alive = False
        target, self._target = self._target, None
        if target is not None:
            target.callbacks = [
                cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
            ]
        try:
            self.generator.close()
        except ValueError:
            # kill() reached from *inside* the running generator — e.g.
            # a fenced coordinator crashing its own node, which kills
            # every worker including itself. close() cannot close an
            # executing generator; the _alive flag is already down, so
            # the process simply never resumes past its next yield.
            # Before this guard the ValueError aborted the caller's
            # kill loop partway, leaving the remaining processes
            # running as zombies — which could later post verbs under
            # coordinator ids already marked failed.
            pass
        if not self.triggered:
            self._state = _TRIGGERED
            self._exception = ProcessKilled(self.name)
            self.sim._post(self)

    # -- generator driving ------------------------------------------------

    def _on_target(self, event: Event) -> None:
        if not self._alive or event is not self._target:
            # Stale wake-up. interrupt()/kill() clear ``_target`` and
            # strip this callback from the target's *pending* callback
            # list — but that removal cannot reach a callback already
            # snapshotted by an in-flight ``_run_callbacks`` (the event
            # swaps in a fresh list before invoking), nor one parked in
            # the kernel queue by ``add_callback``'s late-subscription
            # path. If such an orphaned wake-up then fires after the
            # process has moved on to a *new* yield target, resuming
            # here would double-drive the generator with a stale value.
            return
        self._target = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        profiler = self.sim.profiler
        if profiler.enabled:
            profiler.push("resume", self.name)
            try:
                self._resume_inner(value, exc)
            finally:
                profiler.pop()
        else:
            self._resume_inner(value, exc)

    def _resume_inner(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            if not self.triggered:
                self._state = _TRIGGERED
                self._value = stop.value
                self.sim._post(self)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self._alive = False
            if not self.triggered:
                self._state = _TRIGGERED
                self._exception = error
                self.sim._post(self)
            else:
                raise
            return
        if not isinstance(target, Event):
            self._alive = False
            self.generator.close()
            if not self.triggered:
                self._state = _TRIGGERED
                self._exception = TypeError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                self.sim._post(self)
            return
        self._target = target
        target.add_callback(self._on_target)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event fires; value is the list of values.

    If any child fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        profiler = self.sim.profiler
        if profiler.enabled:
            profiler.push("fanin", "AllOf")
            try:
                self._on_child_inner(event)
            finally:
                profiler.pop()
        else:
            self._on_child_inner(event)

    def _on_child_inner(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Fires as soon as any child fires; value is (index, child value)."""

    __slots__ = ("_index_of",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events)
        # id -> first index, precomputed so _on_child is O(1) per fire
        # (events.index() was O(n) and returned the wrong slot when the
        # same event object appeared more than once).
        self._index_of = {}
        for index, event in enumerate(self.events):
            self._index_of.setdefault(id(event), index)

    def _on_child(self, event: Event) -> None:
        profiler = self.sim.profiler
        if profiler.enabled:
            profiler.push("fanin", "AnyOf")
            try:
                self._on_child_inner(event)
            finally:
                profiler.pop()
        else:
            self._on_child_inner(event)

    def _on_child_inner(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        self.succeed((self._index_of[id(event)], event._value))


class Simulator:
    """The event loop: a now-ring plus a timer heap (see module doc).

    Invariant: the timer heap only ever holds entries with
    ``when > now``; everything due at the current instant lives in the
    FIFO ring. ``step`` therefore never compares timestamps on the hot
    path, and "time went backwards" is impossible by construction.

    *profiler*, when given an enabled
    :class:`~repro.obs.profile.KernelProfiler`, swaps the dispatch and
    scheduling methods for instrumented twins at construction time — so
    the default (unprofiled) loop pays literally zero extra work: no
    flag test, no no-op call, not even an attribute load in ``step``.
    The twins share the selection/dispatch body (``entry()`` via
    :meth:`Event.__call__`), so they cannot drift behaviourally; the
    profiler only reads the wall clock and virtual-time behaviour is
    bit-identical either way.

    *legacy* reinstates the pre-ring single-heap scheduler (every entry
    pays a heap push/pop, callables and events alike). It exists purely
    so the parity suite can run old-vs-new builds in one process and
    assert identical event orders, fingerprints, and
    ``processed_events``.
    """

    def __init__(self, profiler: Optional[Any] = None, legacy: bool = False) -> None:
        self.now: float = 0.0
        self._ring: deque = deque()
        self._timers: List[tuple] = []
        self._seq = 0
        self._processed_events = 0
        self.legacy = legacy
        if profiler is None:
            from repro.obs.profile import NULL_PROFILER

            profiler = NULL_PROFILER
        self.profiler = profiler
        if legacy:
            # Instance-attribute shadowing: these bindings win over the
            # class methods for this instance only.
            self._post = self._legacy_post
            self.call_soon = self._legacy_call_soon
            self.call_at = self._legacy_call_at
            self._schedule_at = self._legacy_schedule_at
            self.step = self._legacy_step
        if profiler.enabled:
            self.step = self._profiled_step
            if legacy:
                self._schedule_at = self._profiled_legacy_schedule_at
            else:
                self._post = self._profiled_post
                self.call_soon = self._profiled_call_soon
                self.call_at = self._profiled_call_at
                self._schedule_at = self._profiled_schedule_at

    # -- scheduling --------------------------------------------------------

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        self._ring.append(event)

    def call_soon(self, func: Callable[[], None]) -> None:
        """Run *func* at the current virtual time on the next kernel step."""
        self._ring.append(func)

    def call_at(self, when: float, func: Callable[[], None]) -> None:
        """Run *func* at absolute virtual time *when*."""
        if when <= self.now:
            if when < self.now:
                raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
            self._ring.append(func)
            return
        self._seq += 1
        heapq.heappush(self._timers, (when, self._seq, func))

    def _schedule_at(self, when: float, event: Event) -> None:
        """Schedule *event* at *when* (ring if due now, heap if future)."""
        if when <= self.now:
            self._ring.append(event)
            return
        self._seq += 1
        heapq.heappush(self._timers, (when, self._seq, event))

    # -- legacy (single-heap) scheduling for parity testing ----------------

    def _legacy_schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._timers, (when, self._seq, event))

    def _legacy_post(self, event: Event) -> None:
        self._schedule_at(self.now, event)

    def _legacy_call_soon(self, func: Callable[[], None]) -> None:
        self._schedule_at(self.now, func)

    def _legacy_call_at(self, when: float, func: Callable[[], None]) -> None:
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule_at(when, func)

    def _legacy_step(self) -> None:
        when, _seq, entry = heapq.heappop(self._timers)
        if when < self.now:
            raise AssertionError("time went backwards")
        self.now = when
        entry()
        self._processed_events += 1

    # -- primitives --------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after *delay* of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a generator as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing on the first child."""
        return AnyOf(self, events)

    # -- running -----------------------------------------------------------

    def _advance(self) -> Any:
        """Pop the earliest timer, advance the clock, drain its cohort.

        Called only when the ring is empty. Every other timer due at the
        same instant moves to the ring in seq order, so the whole cohort
        dispatches FIFO with exactly one heap pop each and no timestamp
        comparisons in ``step``.
        """
        timers = self._timers
        when, _seq, entry = heapq.heappop(timers)
        self.now = when
        if timers and timers[0][0] == when:
            append = self._ring.append
            pop = heapq.heappop
            while timers and timers[0][0] == when:
                append(pop(timers)[2])
        return entry

    def step(self) -> None:
        """Process exactly one queue entry."""
        ring = self._ring
        entry = ring.popleft() if ring else self._advance()
        entry()
        self._processed_events += 1

    def _profiled_step(self) -> None:
        """``step`` twin with wall-clock attribution around dispatch."""
        ring = self._ring
        entry = ring.popleft() if ring else self._advance()
        profiler = self.profiler
        profiler.begin_step(entry)
        try:
            entry()
        finally:
            profiler.end_step()
        self._processed_events += 1

    # -- profiled scheduling twins (count queue pushes per source site) ----

    def _profiled_post(self, event: Event) -> None:
        self.profiler.on_schedule(event)
        self._ring.append(event)

    def _profiled_call_soon(self, func: Callable[[], None]) -> None:
        self.profiler.on_schedule(func)
        self._ring.append(func)

    def _profiled_call_at(self, when: float, func: Callable[[], None]) -> None:
        self.profiler.on_schedule(func)
        Simulator.call_at(self, when, func)

    def _profiled_schedule_at(self, when: float, event: Event) -> None:
        self.profiler.on_schedule(event)
        Simulator._schedule_at(self, when, event)

    def _profiled_legacy_schedule_at(self, when: float, event: Event) -> None:
        self.profiler.on_schedule(event)
        Simulator._legacy_schedule_at(self, when, event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queues drain or virtual time reaches *until*.

        The stop check peeks the timer heap head at most once per step,
        and only when the ring is empty: ring entries are due *now*,
        which is ``<= until`` by construction, so they never need a
        timestamp comparison. An entry landing exactly at ``until``
        (e.g. a batched QP completion) is still dispatched.
        """
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        ring = self._ring
        timers = self._timers
        step = self.step
        if until is None:
            while ring or timers:
                step()
            return
        while ring or timers:
            if not ring and timers[0][0] > until:
                break
            step()
        self.now = until

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until *process* finishes; return its value (or raise)."""
        ring = self._ring
        timers = self._timers
        step = self.step
        while not process.triggered:
            if not ring and not timers:
                raise RuntimeError(
                    f"deadlock: process {process.name!r} pending with empty queue"
                )
            if limit is not None:
                due = self.now if ring else timers[0][0]
                if due > limit:
                    raise TimeoutError(
                        f"process {process.name!r} did not finish by t={limit}"
                    )
            step()
        return process.value

    @property
    def processed_events(self) -> int:
        """Total entries dispatched (batched deliveries count each item)."""
        return self._processed_events

    @property
    def queue_depth(self) -> int:
        """Entries currently pending across the ring and the timer heap."""
        return len(self._ring) + len(self._timers)
