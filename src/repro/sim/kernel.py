"""Discrete-event simulation kernel.

The kernel drives generator-based *processes* over a virtual clock. A
process is a Python generator that yields :class:`Event` objects; the
kernel resumes the generator when the yielded event fires, sending the
event's value back into the generator (or throwing its exception).

This is a deliberately small SimPy-like core. Everything in the
reproduction — RDMA verbs, coordinators, failure detectors, recovery —
is built as processes on top of it, which gives us two properties the
paper's testbed cannot offer: *determinism* (a seeded run always yields
the same history) and *precise fault placement* (a compute node can be
crashed between any two protocol steps).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "ProcessKilled",
    "Simulator",
]


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Raised internally when a process is killed (crash-stop)."""


_PENDING = 0
_TRIGGERED = 1
_PROCESSED = 2


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, becomes *triggered* once :meth:`succeed`
    or :meth:`fail` is called, and *processed* after its callbacks ran.
    """

    __slots__ = ("sim", "_state", "_value", "_exception", "callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._state = _PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self.callbacks: List[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once the event has fired (succeeded or failed)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the callbacks of the event have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event fired successfully."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The value of the event; raises its exception on failure."""
        if not self.triggered:
            raise RuntimeError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully with *value*."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._state = _TRIGGERED
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Fire the event with an exception."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._state = _TRIGGERED
        self._exception = exception
        self.sim._post(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def finish_now(self, value: Any, exception: Optional[BaseException] = None) -> None:
        """Trigger and run callbacks synchronously at the current time.

        A fast path for high-volume producers (the RDMA fabric) that
        are already executing at the event's due time: it skips the
        schedule/dequeue round trip of :meth:`succeed`.
        """
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._value = value
        self._exception = exception
        self._run_callbacks()

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke *callback(event)* once the event fires."""
        if self._state == _PROCESSED:
            # Late subscription: deliver on the next kernel step so the
            # caller still observes asynchronous semantics.
            self.sim.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._state = _TRIGGERED
        self._value = value
        sim._schedule_at(sim.now + delay, self)


class Process(Event):
    """Wraps a generator; completes when the generator returns.

    The process's :class:`Event` side fires with the generator's return
    value, or fails with the exception that escaped the generator.
    """

    __slots__ = ("generator", "_target", "_alive", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        self._alive = True
        sim.call_soon(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the process has not finished or been killed."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Idempotent on dead processes: interrupting a process that has
        already finished (or been killed) is a no-op, like SimPy's.
        """
        if not self._alive:
            return
        target, self._target = self._target, None
        if target is not None:
            target.callbacks = [
                cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
            ]
        self.sim.call_soon(lambda: self._resume(None, Interrupt(cause)))

    def kill(self) -> None:
        """Terminate the process immediately without running any more of it.

        This models a crash-stop failure: the process never observes the
        kill, it simply stops executing. The process event fails with
        :class:`ProcessKilled` so that joiners are not left hanging.
        """
        if not self._alive:
            return
        self._alive = False
        target, self._target = self._target, None
        if target is not None:
            target.callbacks = [
                cb for cb in target.callbacks if getattr(cb, "__self__", None) is not self
            ]
        try:
            self.generator.close()
        except ValueError:
            # kill() reached from *inside* the running generator — e.g.
            # a fenced coordinator crashing its own node, which kills
            # every worker including itself. close() cannot close an
            # executing generator; the _alive flag is already down, so
            # the process simply never resumes past its next yield.
            # Before this guard the ValueError aborted the caller's
            # kill loop partway, leaving the remaining processes
            # running as zombies — which could later post verbs under
            # coordinator ids already marked failed.
            pass
        if not self.triggered:
            self._state = _TRIGGERED
            self._exception = ProcessKilled(self.name)
            self.sim._post(self)

    # -- generator driving ------------------------------------------------

    def _on_target(self, event: Event) -> None:
        if not self._alive or event is not self._target:
            # Stale wake-up. interrupt()/kill() clear ``_target`` and
            # strip this callback from the target's *pending* callback
            # list — but that removal cannot reach a callback already
            # snapshotted by an in-flight ``_run_callbacks`` (the event
            # swaps in a fresh list before invoking), nor one parked in
            # the kernel queue by ``add_callback``'s late-subscription
            # path. If such an orphaned wake-up then fires after the
            # process has moved on to a *new* yield target, resuming
            # here would double-drive the generator with a stale value.
            return
        self._target = None
        if event._exception is not None:
            self._resume(None, event._exception)
        else:
            self._resume(event._value, None)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self._alive:
            return
        profiler = self.sim.profiler
        profiler.push("resume", self.name)
        try:
            self._resume_inner(value, exc)
        finally:
            profiler.pop()

    def _resume_inner(self, value: Any, exc: Optional[BaseException]) -> None:
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self._alive = False
            if not self.triggered:
                self._state = _TRIGGERED
                self._value = stop.value
                self.sim._post(self)
            return
        except BaseException as error:  # noqa: BLE001 - propagate via event
            self._alive = False
            if not self.triggered:
                self._state = _TRIGGERED
                self._exception = error
                self.sim._post(self)
            else:
                raise
            return
        if not isinstance(target, Event):
            self._alive = False
            self.generator.close()
            if not self.triggered:
                self._state = _TRIGGERED
                self._exception = TypeError(
                    f"process {self.name!r} yielded {target!r}, expected an Event"
                )
                self.sim._post(self)
            return
        self._target = target
        target.add_callback(self._on_target)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        self._pending_count = len(self.events)
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event fires; value is the list of values.

    If any child fails, the condition fails with that child's exception.
    """

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        profiler = self.sim.profiler
        profiler.push("fanin", "AllOf")
        try:
            if self.triggered:
                return
            if event._exception is not None:
                self.fail(event._exception)
                return
            self._pending_count -= 1
            if self._pending_count == 0:
                self.succeed([child._value for child in self.events])
        finally:
            profiler.pop()


class AnyOf(_Condition):
    """Fires as soon as any child fires; value is (index, child value)."""

    __slots__ = ("_index_of",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim, events)
        # id -> first index, precomputed so _on_child is O(1) per fire
        # (events.index() was O(n) and returned the wrong slot when the
        # same event object appeared more than once).
        self._index_of = {}
        for index, event in enumerate(self.events):
            self._index_of.setdefault(id(event), index)

    def _on_child(self, event: Event) -> None:
        profiler = self.sim.profiler
        profiler.push("fanin", "AnyOf")
        try:
            if self.triggered:
                return
            if event._exception is not None:
                self.fail(event._exception)
                return
            self.succeed((self._index_of[id(event)], event._value))
        finally:
            profiler.pop()


class Simulator:
    """The event loop: a priority queue of (time, seq, event).

    *profiler*, when given an enabled
    :class:`~repro.obs.profile.KernelProfiler`, swaps the dispatch
    methods for instrumented twins at construction time — so the
    default (unprofiled) loop pays literally zero extra work: no flag
    test, no no-op call, not even an attribute load in ``step``. The
    profiler only reads the wall clock; virtual-time behaviour is
    bit-identical either way.
    """

    def __init__(self, profiler: Optional[Any] = None) -> None:
        self.now: float = 0.0
        self._queue: List[tuple] = []
        self._seq = 0
        self._processed_events = 0
        if profiler is None:
            from repro.obs.profile import NULL_PROFILER

            profiler = NULL_PROFILER
        self.profiler = profiler
        if profiler.enabled:
            # Instance-attribute shadowing: these bindings win over the
            # class methods for this instance only.
            self.step = self._profiled_step
            self._schedule_at = self._profiled_schedule_at

    # -- scheduling --------------------------------------------------------

    def _schedule_at(self, when: float, event: Event) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, event))

    def _post(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks to run now."""
        self._schedule_at(self.now, event)

    def call_soon(self, func: Callable[[], None]) -> None:
        """Run *func* at the current virtual time on the next kernel step."""
        self._schedule_at(self.now, func)

    def call_at(self, when: float, func: Callable[[], None]) -> None:
        """Run *func* at absolute virtual time *when*."""
        if when < self.now:
            raise ValueError(f"cannot schedule in the past: {when} < {self.now}")
        self._schedule_at(when, func)

    # -- primitives --------------------------------------------------------

    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing after *delay* of virtual time."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Spawn a generator as a process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event firing when all children fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event firing on the first child."""
        return AnyOf(self, events)

    # -- running -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one queue entry."""
        when, _seq, entry = heapq.heappop(self._queue)
        if when < self.now:
            raise AssertionError("time went backwards")
        self.now = when
        if isinstance(entry, Event):
            if entry._state == _TRIGGERED:
                entry._run_callbacks()
        else:
            # Raw callable scheduled via call_soon / call_at.
            entry()
        self._processed_events += 1

    def _profiled_step(self) -> None:
        """``step`` twin with wall-clock attribution around dispatch."""
        when, _seq, entry = heapq.heappop(self._queue)
        if when < self.now:
            raise AssertionError("time went backwards")
        self.now = when
        profiler = self.profiler
        profiler.begin_step(entry)
        try:
            if isinstance(entry, Event):
                if entry._state == _TRIGGERED:
                    entry._run_callbacks()
            else:
                entry()
        finally:
            profiler.end_step()
        self._processed_events += 1

    def _profiled_schedule_at(self, when: float, event: Event) -> None:
        """``_schedule_at`` twin counting queue pushes per source site."""
        self.profiler.on_schedule(event)
        Simulator._schedule_at(self, when, event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or virtual time reaches *until*."""
        if until is not None and until < self.now:
            raise ValueError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            when = self._queue[0][0]
            if until is not None and when > until:
                self.now = until
                return
            self.step()
        if until is not None:
            self.now = until

    def run_until_complete(self, process: Process, limit: Optional[float] = None) -> Any:
        """Run until *process* finishes; return its value (or raise)."""
        while not process.triggered:
            if not self._queue:
                raise RuntimeError(
                    f"deadlock: process {process.name!r} pending with empty queue"
                )
            if limit is not None and self._queue[0][0] > limit:
                raise TimeoutError(
                    f"process {process.name!r} did not finish by t={limit}"
                )
            self.step()
        return process.value

    @property
    def processed_events(self) -> int:
        """Total kernel steps executed."""
        return self._processed_events

    @property
    def queue_depth(self) -> int:
        """Entries currently pending in the scheduling queue."""
        return len(self._queue)
