"""Online statistics, histograms, and throughput timelines.

The benchmark harness records committed-transaction timestamps into a
:class:`ThroughputTimeline` and latency samples into a
:class:`Histogram`; both avoid retaining per-sample state so multi-
million-transaction runs stay cheap.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["OnlineStats", "Histogram", "ThroughputTimeline"]


class OnlineStats:
    """Welford's online mean/variance plus min/max."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples seen so far."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> None:
        """Chan et al. parallel merge of two accumulators."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __repr__(self) -> str:
        return (
            f"OnlineStats(n={self.count}, mean={self.mean:.4g}, "
            f"std={self.stddev:.4g}, min={self.min:.4g}, max={self.max:.4g})"
        )


class Histogram:
    """Log-bucketed latency histogram with approximate percentiles.

    Buckets grow geometrically from *min_value*; percentile queries
    interpolate within the matched bucket, which is accurate enough for
    the order-of-magnitude latency comparisons the paper reports.
    """

    def __init__(
        self,
        min_value: float = 1e-7,
        max_value: float = 100.0,
        buckets_per_decade: int = 20,
    ) -> None:
        if min_value <= 0 or max_value <= min_value:
            raise ValueError("require 0 < min_value < max_value")
        self.min_value = min_value
        self.max_value = max_value
        decades = math.log10(max_value / min_value)
        self._bucket_count = int(math.ceil(decades * buckets_per_decade)) + 1
        self._log_min = math.log10(min_value)
        self._per_decade = buckets_per_decade
        self._counts = [0] * self._bucket_count
        self.stats = OnlineStats()

    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        index = int((math.log10(value) - self._log_min) * self._per_decade)
        return min(index, self._bucket_count - 1)

    def _bucket_bounds(self, index: int) -> Tuple[float, float]:
        low = 10 ** (self._log_min + index / self._per_decade)
        high = 10 ** (self._log_min + (index + 1) / self._per_decade)
        return low, high

    def add(self, value: float) -> None:
        """Record one sample."""
        self._counts[self._bucket_index(value)] += 1
        self.stats.add(value)

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return self.stats.count

    def merge(self, other: "Histogram") -> None:
        """Merge another histogram's buckets (same layout required)."""
        if (
            other._bucket_count != self._bucket_count
            or other._log_min != self._log_min
            or other._per_decade != self._per_decade
        ):
            raise ValueError("histogram layouts differ")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.stats.merge(other.stats)

    def percentile(self, pct: float) -> float:
        """Return the approximate value at percentile *pct* in [0, 100]."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        if self.count == 0:
            return 0.0
        # The extremes are tracked exactly; don't interpolate them out
        # of a bucket (p100 could otherwise exceed the observed max).
        if pct == 0:
            return self.stats.min
        if pct == 100:
            return self.stats.max
        target = pct / 100.0 * self.count
        running = 0
        for index, bucket_count in enumerate(self._counts):
            running += bucket_count
            if running >= target and bucket_count:
                low, high = self._bucket_bounds(index)
                # Linear interpolation inside the bucket, clamped to
                # the observed range (a single sample in a wide bucket
                # would otherwise report the bucket midpoint).
                fraction = 1.0 - (running - target) / bucket_count
                value = low + (high - low) * fraction
                return min(max(value, self.stats.min), self.stats.max)
        return self.stats.max

    def __repr__(self) -> str:
        return (
            f"Histogram(n={self.count}, p50={self.percentile(50):.3g}, "
            f"p99={self.percentile(99):.3g})"
        )


class ThroughputTimeline:
    """Committed-operations-per-window timeline.

    The fail-over figures (Figs 8-14) plot throughput over time around
    an injected crash; this accumulates commit events into fixed
    windows so the harness can print the same series.
    """

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = window
        self._windows: Dict[int, int] = {}

    def record(self, timestamp: float, count: int = 1) -> None:
        """Count *count* committed operations at *timestamp*."""
        index = int(timestamp / self.window)
        windows = self._windows
        windows[index] = windows.get(index, 0) + count

    @property
    def total(self) -> int:
        """Total operations recorded across all windows."""
        return sum(self._windows.values())

    def series(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Return [(window start time, throughput in ops/sec)] pairs."""
        if not self._windows and end is None:
            return []
        first = int(start / self.window)
        last = max(self._windows) if end is None else int(end / self.window)
        if last < first:
            # *start* lies past the last recorded window: nothing to plot.
            return []
        return [
            (index * self.window, self._windows.get(index, 0) / self.window)
            for index in range(first, last + 1)
        ]

    def rate_between(self, start: float, end: float) -> float:
        """Mean throughput (ops/sec) over [start, end)."""
        if end <= start:
            raise ValueError("end must exceed start")
        first = int(start / self.window)
        last = int(end / self.window)
        total = sum(
            count for index, count in self._windows.items() if first <= index < last
        )
        return total / (end - start)


def percentile_of_sorted(sorted_values: Sequence[float], pct: float) -> float:
    """Exact percentile of an already-sorted sequence (for tests)."""
    if not sorted_values:
        return 0.0
    if not 0 <= pct <= 100:
        raise ValueError(f"percentile out of range: {pct}")
    rank = pct / 100.0 * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    frac = rank - low
    return sorted_values[low] * (1 - frac) + sorted_values[high] * frac
