"""Zipfian key sampling for skewed workloads.

The paper's microbenchmark sweeps contention by shrinking the hot set
(Figs 13-14); a Zipf distribution over the keyspace is the standard way
to generate such skew. Sampling uses Vose's alias method: an O(n)
one-time table build, then O(1) per draw — two RNG reads (a slot pick
and a coin flip) and one table lookup, independent of n. The CDF +
binary-search sampler this replaces cost O(log n) per draw, which
dominated large-population generation in the open-loop traffic engine
(millions of users, one draw per arrival).

Everything is deterministic given a seeded ``random.Random``; the draw
*sequence* differs from the old bisect sampler (two RNG reads per draw
instead of one), but the distribution is exact, not approximate.
"""

from __future__ import annotations

import random
from typing import List

__all__ = ["ZipfSampler", "UniformSampler", "HotSetSampler"]


class ZipfSampler:
    """Sample ranks in [0, n) with probability proportional to 1/(r+1)^theta.

    Vose alias tables: ``_prob[i]`` is the probability (scaled to
    [0, 1]) that a draw landing on column *i* keeps *i*;  otherwise it
    takes ``_alias[i]``. Each draw is ``randrange(n)`` + ``random()``.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        scale = n / sum(weights)
        scaled = [weight * scale for weight in weights]
        prob: List[float] = [0.0] * n
        alias: List[int] = list(range(n))
        # Zipf weights are monotonically decreasing, so the small
        # columns form a suffix and the large ones a prefix — classic
        # two-stack Vose pairing.
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            lo = small.pop()
            hi = large.pop()
            prob[lo] = scaled[lo]
            alias[lo] = hi
            scaled[hi] = (scaled[hi] + scaled[lo]) - 1.0
            if scaled[hi] < 1.0:
                small.append(hi)
            else:
                large.append(hi)
        # Leftovers are exactly 1.0 up to float rounding.
        for i in large:
            prob[i] = 1.0
        for i in small:
            prob[i] = 1.0
        self._prob = prob
        self._alias = alias

    def sample(self) -> int:
        """Draw one rank using the internal RNG (O(1))."""
        return self.sample_with(self._rng)

    def sample_with(self, rng: random.Random) -> int:
        """Sample using an external RNG (per-coordinator streams)."""
        column = rng.randrange(self.n)
        if rng.random() < self._prob[column]:
            return column
        return self._alias[column]

    def pmf(self, rank: int) -> float:
        """Exact probability of *rank* (used by the shape tests)."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank out of range: {rank}")
        total = sum(1.0 / (r + 1) ** self.theta for r in range(self.n))
        return (1.0 / (rank + 1) ** self.theta) / total


class UniformSampler:
    """Uniform sampler with the same interface as :class:`ZipfSampler`."""

    def __init__(self, n: int, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._rng = rng

    def sample(self) -> int:
        """Draw one rank using the internal RNG."""
        return self._rng.randrange(self.n)

    def sample_with(self, rng: random.Random) -> int:
        """Draw one rank using an external (per-coordinator) RNG."""
        return rng.randrange(self.n)


class HotSetSampler:
    """All accesses land uniformly inside the first *hot_keys* keys.

    This mirrors the paper's "hot objects" contention experiments
    (§6.4): 1 000 hot keys produce a high conflict rate, 100 000 a low
    one.
    """

    def __init__(self, hot_keys: int, rng: random.Random) -> None:
        if hot_keys <= 0:
            raise ValueError(f"hot_keys must be positive, got {hot_keys}")
        self.n = hot_keys
        self._rng = rng

    def sample(self) -> int:
        """Draw one rank using the internal RNG."""
        return self._rng.randrange(self.n)

    def sample_with(self, rng: random.Random) -> int:
        """Draw one rank using an external (per-coordinator) RNG."""
        return rng.randrange(self.n)
