"""Zipfian key sampling for skewed workloads.

The paper's microbenchmark sweeps contention by shrinking the hot set
(Figs 13-14); a Zipf distribution over the keyspace is the standard way
to generate such skew. We precompute the CDF once and sample by binary
search, which is deterministic given a seeded ``random.Random``.
"""

from __future__ import annotations

import bisect
import random
from typing import List

__all__ = ["ZipfSampler", "UniformSampler", "HotSetSampler"]


class ZipfSampler:
    """Sample ranks in [0, n) with probability proportional to 1/(r+1)^theta."""

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cdf.append(running)
        self._cdf[-1] = 1.0

    def sample(self) -> int:
        """Draw one rank using the internal RNG."""
        return bisect.bisect_left(self._cdf, self._rng.random())

    def sample_with(self, rng: random.Random) -> int:
        """Sample using an external RNG (per-coordinator streams)."""
        return bisect.bisect_left(self._cdf, rng.random())


class UniformSampler:
    """Uniform sampler with the same interface as :class:`ZipfSampler`."""

    def __init__(self, n: int, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        self.n = n
        self._rng = rng

    def sample(self) -> int:
        """Draw one rank using the internal RNG."""
        return self._rng.randrange(self.n)

    def sample_with(self, rng: random.Random) -> int:
        """Draw one rank using an external (per-coordinator) RNG."""
        return rng.randrange(self.n)


class HotSetSampler:
    """All accesses land uniformly inside the first *hot_keys* keys.

    This mirrors the paper's "hot objects" contention experiments
    (§6.4): 1 000 hot keys produce a high conflict rate, 100 000 a low
    one.
    """

    def __init__(self, hot_keys: int, rng: random.Random) -> None:
        if hot_keys <= 0:
            raise ValueError(f"hot_keys must be positive, got {hot_keys}")
        self.n = hot_keys
        self._rng = rng

    def sample(self) -> int:
        """Draw one rank using the internal RNG."""
        return self._rng.randrange(self.n)

    def sample_with(self, rng: random.Random) -> int:
        """Draw one rank using an external (per-coordinator) RNG."""
        return rng.randrange(self.n)
