"""Shared utilities: bitsets, statistics, samplers."""

from repro.util.bitset import Bitset
from repro.util.stats import Histogram, OnlineStats, ThroughputTimeline
from repro.util.zipf import HotSetSampler, UniformSampler, ZipfSampler

__all__ = [
    "Bitset",
    "Histogram",
    "HotSetSampler",
    "OnlineStats",
    "ThroughputTimeline",
    "UniformSampler",
    "ZipfSampler",
]
