"""A compact fixed-size bitset.

Pandora stores the *failed-ids* — the coordinator-ids of every compute
server that has ever been declared failed — as a 64K-entry bitset so
that the check performed on every contended lock acquisition stays O(1)
regardless of how many failures the cluster has seen (§3.1.2).
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["Bitset"]


class Bitset:
    """Fixed-capacity set of small non-negative integers.

    Backed by a single Python int used as a bit vector, which keeps
    membership tests O(1) and copies cheap.
    """

    __slots__ = ("capacity", "_bits", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._bits = 0
        self._count = 0

    def _check(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise IndexError(f"index {index} out of range [0, {self.capacity})")

    def add(self, index: int) -> bool:
        """Set bit *index*; return True if it was newly set."""
        self._check(index)
        mask = 1 << index
        if self._bits & mask:
            return False
        self._bits |= mask
        self._count += 1
        return True

    def discard(self, index: int) -> bool:
        """Clear bit *index*; return True if it was previously set."""
        self._check(index)
        mask = 1 << index
        if not self._bits & mask:
            return False
        self._bits &= ~mask
        self._count -= 1
        return True

    def __contains__(self, index: int) -> bool:
        if not 0 <= index < self.capacity:
            return False
        return bool(self._bits & (1 << index))

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        index = 0
        while bits:
            if bits & 1:
                yield index
            bits >>= 1
            index += 1

    def clear(self) -> None:
        """Remove every member."""
        self._bits = 0
        self._count = 0

    def copy(self) -> "Bitset":
        """Return an independent copy of this bitset."""
        clone = Bitset(self.capacity)
        clone._bits = self._bits
        clone._count = self._count
        return clone

    def update_from(self, other: "Bitset") -> None:
        """Union *other* into this bitset (capacities must match)."""
        if other.capacity != self.capacity:
            raise ValueError("bitset capacities differ")
        self._bits |= other._bits
        self._count = bin(self._bits).count("1")

    @property
    def fill_ratio(self) -> float:
        """Fraction of capacity in use — drives id recycling (§3.1.2)."""
        return self._count / self.capacity

    def __repr__(self) -> str:
        return f"Bitset(capacity={self.capacity}, set={self._count})"
