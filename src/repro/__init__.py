"""repro — reproduction of *Pandora: Fast, Highly Available, and
Recoverable Transactions on Disaggregated Data Stores* (EDBT 2025).

Public API tour:

* :class:`repro.cluster.Cluster` / :class:`repro.cluster.ClusterConfig`
  — build and run a simulated DKVS deployment.
* :mod:`repro.protocol` — the FORD baseline, Pandora (PILL + coalesced
  logging), and the traditional-logging variant.
* :mod:`repro.recovery` — failure detectors and the RDMA-based
  recovery protocol.
* :mod:`repro.litmus` — the end-to-end litmus-testing framework.
* :mod:`repro.workloads` — TPC-C, TATP, SmallBank, microbenchmark.
* :mod:`repro.bench` — harness regenerating every table and figure.
* :class:`repro.obs.Obs` — opt-in tracing + metrics (pass to
  ``Cluster(..., obs=Obs())``; export via ``obs.tracer``).
"""

from repro.cluster import Cluster, ClusterConfig
from repro.obs import Obs
from repro.protocol import BugFlags

__version__ = "1.0.0"

__all__ = ["BugFlags", "Cluster", "ClusterConfig", "Obs", "__version__"]
