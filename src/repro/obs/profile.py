"""Wall-clock kernel profiler: where does the *real* CPU time go?

The rest of ``repro.obs`` attributes **virtual** time — microseconds on
the simulated RDMA fabric. This module attributes **wall-clock** time:
nanoseconds the host CPU spends inside the simulation kernel's dispatch
loop, generator resumes, fan-in callbacks, verb posting, the network
model, failure-detector heartbeats, and the obs/sanitizer shims. It
exists so the ROADMAP's kernel rearchitecture can be attempted with
evidence instead of folklore: every ``repro perf`` table and collapsed
stack is a before/after number for a kernel-speed PR.

**Never perturbs.** The profiler only *reads* the wall clock and writes
into its own dicts; it never schedules simulation events, never feeds a
wall-clock value into any simulation decision, and the disabled path is
the :data:`NULL_PROFILER` singleton (the same no-op-object discipline
as ``NOOP_OBS`` / ``NULL_FLIGHT``), so a seeded run is bit-identical
with profiling on, off, or absent. The wall-clock reads themselves are
exempt from the SIM001 purity rule for exactly this reason: they are
measurement, not simulation input.

**Attribution model.** The profiler keeps an explicit frame stack:

* the profiled kernel ``step()`` pushes one root frame per queue entry
  (classified as ``event:Timeout``, ``process:coordinator-*``,
  ``cb:QueuePair.post.<locals>.execute``, ...);
* instrumented boundaries (``Process._resume``, ``QueuePair.post``,
  ``Network.delay``, AllOf/AnyOf fan-in, FD heartbeat ingestion, the
  obs/sanitizer shim block) push nested frames.

Each frame pop folds *self* time (elapsed minus child time) into a
per-site table and into a collapsed-stack table whose lines
(``kernel;process:worker;rdma.post:write_log 1234``) render directly in
``flamegraph.pl`` or speedscope. Per-subsystem and per-protocol-phase
rollups are derived views: a site's subsystem comes from the module
that owns its code, and verb-post frames are additionally billed to the
ambient transaction phase asserted by ``TxnTrace.focus`` (the same
focus discipline the flight recorder uses).
"""

from __future__ import annotations

import re
from time import perf_counter_ns  # simlint: disable=SIM001
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import render_rows

__all__ = [
    "KernelProfiler",
    "NullKernelProfiler",
    "NULL_PROFILER",
    "subsystem_of_module",
]

# Package -> reported subsystem. Anything else maps to "other".
_SUBSYSTEMS = {
    "sim": "kernel",
    "rdma": "rdma",
    "memory": "memory",
    "protocol": "protocol",
    "recovery": "recovery",
    "cluster": "cluster",
    "workloads": "workload",
    "obs": "obs",
    "analysis": "sanitizer",
    "faults": "faults",
    "chaos": "faults",
    "litmus": "litmus",
    "bench": "bench",
    "util": "util",
}

# Categories whose frames are owned by the kernel itself.
_CATEGORY_SUBSYSTEM = {
    "event": "kernel",
    "fanin": "kernel",
    "resume": "kernel",
    "rdma.post": "rdma",
    "rdma.complete": "rdma",
    "network": "network",
    "fd": "recovery",
    "shim": "obs",
}

_DIGITS = re.compile(r"\d+")


def subsystem_of_module(module: Optional[str]) -> str:
    """Map ``repro.rdma.qp`` -> ``rdma`` (and so on)."""
    if not module:
        return "other"
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return "other"
    return _SUBSYSTEMS.get(parts[1], "other")


def _subsystem_of_filename(filename: str) -> str:
    """Map ``.../src/repro/protocol/base.py`` -> ``protocol``."""
    marker = "repro"
    pieces = filename.replace("\\", "/").split("/")
    try:
        index = len(pieces) - 1 - pieces[::-1].index(marker)
    except ValueError:
        return "other"
    if index + 1 >= len(pieces):
        return "other"
    nxt = pieces[index + 1]
    if nxt.endswith(".py"):
        return "kernel" if nxt == "kernel.py" else "other"
    return _SUBSYSTEMS.get(nxt, "other")


class _Site:
    """Aggregate for one attribution label."""

    __slots__ = ("label", "subsystem", "count", "self_ns", "total_ns")

    def __init__(self, label: str, subsystem: str) -> None:
        self.label = label
        self.subsystem = subsystem
        self.count = 0
        self.self_ns = 0
        self.total_ns = 0


class KernelProfiler:
    """Enabled profiler: frame stack + per-site/stack/phase aggregates."""

    enabled = True

    def __init__(self) -> None:
        self.sites: Dict[str, _Site] = {}
        # collapsed stacks: tuple of labels (outermost first) -> self ns
        self.stack_ns: Dict[Tuple[str, ...], int] = {}
        # ambient-txn-phase rollup of verb-post frames -> wall ns
        self.phase_ns: Dict[str, int] = {}
        self.phase_counts: Dict[str, int] = {}
        # events scheduled on the kernel queue, by root-frame label
        self.scheduled_by: Dict[str, int] = {}
        self.steps = 0
        self.scheduled = 0
        self.run_wall_ns = 0
        self._phase: Optional[str] = None
        # frame: [site, start_ns, child_ns, phase-or-None]
        self._stack: List[list] = []
        self._run_started: Optional[int] = None
        # label caches (classification is hot under profiling)
        self._label_cache: Dict[Tuple[str, Optional[str]], Tuple[str, str]] = {}
        self._code_cache: Dict[Any, Tuple[str, str]] = {}
        self._name_cache: Dict[str, str] = {}
        self._file_cache: Dict[str, str] = {}

    # -- run bracketing ------------------------------------------------------

    def run_begin(self) -> None:
        """Mark the start of a measured run (for whole-run wall time)."""
        self._run_started = perf_counter_ns()  # simlint: disable=SIM001

    def run_end(self) -> None:
        """Close the measured run; accumulates into ``run_wall_ns``."""
        if self._run_started is not None:
            now = perf_counter_ns()  # simlint: disable=SIM001
            self.run_wall_ns += now - self._run_started
            self._run_started = None

    # -- frame stack ---------------------------------------------------------

    def _site(self, label: str, subsystem: str) -> _Site:
        site = self.sites.get(label)
        if site is None:
            site = self.sites[label] = _Site(label, subsystem)
        return site

    def push(self, category: str, detail: Optional[str] = None) -> None:
        """Open a nested attribution frame.

        Label construction is cached so steady-state pushes cost one
        dict hit; the phase marker is captured only for verb-post
        frames (the phase rollup's unit of account).
        """
        key = (category, detail)
        cached = self._label_cache.get(key)
        if cached is None:
            if detail is None:
                label = category
            else:
                label = f"{category}:{self._normalize(detail)}"
            subsystem = _CATEGORY_SUBSYSTEM.get(category, "other")
            cached = self._label_cache[key] = (label, subsystem)
        phase = self._phase if category == "rdma.post" else None
        self._stack.append(
            [cached, perf_counter_ns(), 0, phase]  # simlint: disable=SIM001
        )

    def push_site(self, label: str, subsystem: str) -> None:
        """Open a frame with a precomputed label (root frames)."""
        self._stack.append(
            [(label, subsystem), perf_counter_ns(), 0, None]  # simlint: disable=SIM001
        )

    def pop(self) -> None:
        """Close the innermost frame and fold its time into the tables."""
        now = perf_counter_ns()  # simlint: disable=SIM001
        (label, subsystem), start, child_ns, phase = self._stack.pop()
        elapsed = now - start
        self_ns = elapsed - child_ns
        site = self.sites.get(label)
        if site is None:
            site = self.sites[label] = _Site(label, subsystem)
        site.count += 1
        site.self_ns += self_ns
        site.total_ns += elapsed
        if self._stack:
            self._stack[-1][2] += elapsed
            path = tuple(frame[0][0] for frame in self._stack) + (label,)
        else:
            path = (label,)
        self.stack_ns[path] = self.stack_ns.get(path, 0) + self_ns
        if phase is not None:
            self.phase_ns[phase] = self.phase_ns.get(phase, 0) + elapsed
            self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    # -- ambient transaction phase (asserted by TxnTrace.focus) --------------

    def set_phase(self, phase: Optional[str]) -> None:
        """Assert the transaction phase for subsequent verb posts."""
        self._phase = phase

    # -- kernel hooks --------------------------------------------------------

    def on_schedule(self, entry: Any) -> None:
        """Count one queue push, billed to the current innermost frame."""
        self.scheduled += 1
        if self._stack:
            label = self._stack[-1][0][0]
        else:
            label = "(outside-step)"
        self.scheduled_by[label] = self.scheduled_by.get(label, 0) + 1

    def begin_step(self, entry: Any) -> None:
        """Open the root frame for one kernel dispatch step."""
        self.steps += 1
        label, subsystem = self.classify(entry)
        self._stack.append(
            [(label, subsystem), perf_counter_ns(), 0, None]  # simlint: disable=SIM001
        )

    # end_step is pop(); the root frame folds like any other.
    end_step = pop

    # -- queue-entry classification -----------------------------------------

    def _normalize(self, name: str) -> str:
        """Collapse instance ids: ``coordinator-17`` -> ``coordinator-*``."""
        cached = self._name_cache.get(name)
        if cached is None:
            cached = self._name_cache[name] = _DIGITS.sub("*", name)
        return cached

    def _classify_code(self, code: Any, qualname: str, module: str) -> Tuple[str, str]:
        cached = self._code_cache.get(code)
        if cached is None:
            label = f"cb:{self._normalize(qualname)}"
            cached = self._code_cache[code] = (label, subsystem_of_module(module))
        return cached

    def classify(self, entry: Any) -> Tuple[str, str]:
        """(label, subsystem) for one kernel queue entry."""
        # Local import keeps repro.obs importable without the kernel.
        from repro.sim.kernel import Event, Process

        if isinstance(entry, Event):
            if isinstance(entry, Process):
                name = self._normalize(entry.name)
                generator = entry.generator
                code = getattr(generator, "gi_code", None)
                if code is not None:
                    filename = code.co_filename
                    subsystem = self._file_cache.get(filename)
                    if subsystem is None:
                        subsystem = self._file_cache[filename] = (
                            _subsystem_of_filename(filename)
                        )
                else:
                    subsystem = "kernel"
                return f"process:{name}", subsystem
            return f"event:{type(entry).__name__}", "kernel"
        # Raw callable scheduled via call_soon / call_at.
        func = getattr(entry, "__func__", entry)  # unwrap bound methods
        code = getattr(func, "__code__", None)
        if code is not None:
            return self._classify_code(
                code,
                getattr(func, "__qualname__", code.co_name),
                getattr(func, "__module__", "") or "",
            )
        return f"cb:{type(entry).__name__}", "other"

    # -- derived views -------------------------------------------------------

    @property
    def profiled_ns(self) -> int:
        """Wall ns attributed across all root frames."""
        return sum(ns for path, ns in self.stack_ns.items())

    def subsystem_rollup(self) -> Dict[str, Tuple[int, int]]:
        """subsystem -> (calls, self ns), sorted by self time at render."""
        rollup: Dict[str, Tuple[int, int]] = {}
        for site in self.sites.values():
            calls, ns = rollup.get(site.subsystem, (0, 0))
            rollup[site.subsystem] = (calls + site.count, ns + site.self_ns)
        return rollup

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``a;b;c <self-ns>``).

        The format ``flamegraph.pl`` and speedscope both ingest; counts
        are nanoseconds of self time, so frame widths are wall time.
        """
        lines = []
        for path in sorted(self.stack_ns):
            ns = self.stack_ns[path]
            if ns > 0:
                lines.append(";".join(path) + f" {ns}")
        return lines

    # -- reports -------------------------------------------------------------

    def subsystem_table(self) -> str:
        """Per-subsystem wall-time attribution table."""
        total = self.profiled_ns or 1
        rows = []
        for subsystem, (calls, ns) in sorted(
            self.subsystem_rollup().items(), key=lambda item: -item[1][1]
        ):
            rows.append(
                (
                    subsystem,
                    calls,
                    f"{ns / 1e6:.2f}",
                    f"{100.0 * ns / total:.1f}",
                )
            )
        return render_rows(
            ["subsystem", "frames", "self (ms)", "% profiled"],
            rows,
            title="wall-clock by subsystem",
        )

    def site_table(self, top: int = 20) -> str:
        """The *top* sites by self wall time."""
        rows = []
        for site in sorted(self.sites.values(), key=lambda s: -s.self_ns)[:top]:
            mean_ns = site.self_ns / site.count if site.count else 0.0
            rows.append(
                (
                    site.label,
                    site.subsystem,
                    site.count,
                    f"{site.self_ns / 1e6:.2f}",
                    f"{mean_ns:.0f}",
                )
            )
        return render_rows(
            ["site", "subsystem", "count", "self (ms)", "mean (ns)"],
            rows,
            title=f"hottest sites (top {top})",
        )

    def phase_table(self) -> str:
        """Wall time of the synchronous verb-post path per txn phase.

        Covers the CPU cost of *initiating* verbs from each protocol
        phase (the posting path is synchronous between yields); the
        asynchronous execute/deliver halves land after the phase focus
        has moved on and are attributed per-site instead.
        """
        from repro.obs import TXN_PHASES

        order = {phase: index for index, phase in enumerate(TXN_PHASES)}
        rows = []
        for phase in sorted(self.phase_ns, key=lambda p: order.get(p, 99)):
            ns = self.phase_ns[phase]
            count = self.phase_counts[phase]
            rows.append(
                (phase, count, f"{ns / 1e6:.3f}", f"{ns / count:.0f}" if count else "-")
            )
        return render_rows(
            ["phase", "verb posts", "wall (ms)", "mean (ns/post)"],
            rows,
            title="verb-post wall time by txn phase",
        )

    def summary(self) -> str:
        """One-paragraph run summary (steps, schedules, rates)."""
        wall_s = self.run_wall_ns / 1e9
        lines = [
            f"kernel steps: {self.steps}  scheduled: {self.scheduled}  "
            f"run wall: {wall_s:.3f} s"
        ]
        if wall_s > 0 and self.steps:
            lines.append(
                f"events/sec: {self.steps / wall_s:,.0f}  "
                f"wall-us/event: {1e6 * wall_s / self.steps:.2f}"
            )
        return "\n".join(lines) + "\n"

    def report(self, top: int = 20) -> str:
        """The full ``repro perf`` profile report."""
        sections = [self.summary(), self.subsystem_table(), self.site_table(top)]
        if self.phase_ns:
            sections.append(self.phase_table())
        return "\n".join(sections)


class NullKernelProfiler:
    """Disabled profiler: every hook is a slotted no-op.

    Instrumented hot paths hold a profiler reference and call these
    hooks unconditionally — one attribute lookup plus one empty call,
    the same overhead contract as ``NullObs``. The kernel's dispatch
    loop itself pays *nothing*: ``Simulator`` only swaps in the
    profiled ``step`` when an enabled profiler is attached.
    """

    enabled = False

    __slots__ = ()

    def run_begin(self) -> None:
        pass

    def run_end(self) -> None:
        pass

    def push(self, category: str, detail: Optional[str] = None) -> None:
        pass

    def push_site(self, label: str, subsystem: str) -> None:
        pass

    def pop(self) -> None:
        pass

    def set_phase(self, phase: Optional[str]) -> None:
        pass

    def on_schedule(self, entry: Any) -> None:
        pass

    def begin_step(self, entry: Any) -> None:
        pass

    end_step = pop

    def collapsed(self) -> List[str]:
        return []

    def report(self, top: int = 20) -> str:
        return "(profiling disabled)\n"


NULL_PROFILER = NullKernelProfiler()
