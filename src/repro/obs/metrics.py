"""Labeled counters, gauges, and histogram families.

A :class:`MetricsRegistry` is a flat map from ``(name, labels)`` to a
metric instance. Hot-path call sites fetch the instance once (the
registry caches on the frozen label set) and then call ``inc``/``add``
directly, so recording a sample is one dict-free method call.

Histograms reuse :class:`repro.util.stats.Histogram` — same log
buckets, same approximate percentiles, same ``merge`` semantics — so a
phase-latency histogram printed by the obs layer is directly comparable
with the coordinator latency histograms the harness already reports.

The registry supports ``snapshot()`` (a plain-dict view suitable for
JSON), ``merge()`` (fold another registry in, e.g. per-coordinator
registries into a cluster-wide one), and ``render_table()`` (the
fixed-width text report the CLI prints under ``--metrics``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.util.stats import Histogram

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "RollingWindow",
]

# (metric name, ((label key, label value), ...)) — the registry key.
MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


class Counter:
    """A monotonically increasing labeled counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time labeled value (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = value


class NullCounter:
    """No-op counter: the disabled-path stand-in for :class:`Counter`."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    """No-op gauge."""

    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class NullHistogram:
    """No-op histogram with the same recording surface as Histogram."""

    __slots__ = ()
    count = 0

    def add(self, value: float) -> None:
        pass

    def percentile(self, pct: float) -> float:
        # Same contract as Histogram.percentile: out-of-range queries
        # are caller bugs and must not pass silently on the disabled path.
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        return 0.0


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class RollingWindow:
    """A time-bounded sample buffer for live gauges.

    Unlike :class:`~repro.util.stats.Histogram` (which accumulates for
    the whole run), a rolling window answers "what is the p99 *right
    now*": samples older than ``window`` seconds are evicted on every
    query, so the SLO monitors see the current regime, not the average
    of everything since warmup. Windows hold at most a few thousand
    samples in practice, so exact percentiles by sorting are fine.
    """

    __slots__ = ("window", "_samples")

    def __init__(self, window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque()

    def add(self, now: float, value: float) -> None:
        """Record *value* observed at virtual time *now*."""
        self._samples.append((now, value))

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def count(self, now: float) -> int:
        """Samples currently inside the window."""
        self._evict(now)
        return len(self._samples)

    def mean(self, now: float) -> float:
        """Mean of the in-window samples (0.0 when empty)."""
        self._evict(now)
        if not self._samples:
            return 0.0
        return sum(value for _t, value in self._samples) / len(self._samples)

    def percentile(self, now: float, pct: float) -> float:
        """Exact in-window percentile (0.0 when empty)."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        self._evict(now)
        if not self._samples:
            return 0.0
        ordered = sorted(value for _t, value in self._samples)
        index = min(len(ordered) - 1, int(len(ordered) * pct / 100.0))
        return ordered[index]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


def _prom_name(name: str) -> str:
    """Dotted internal names → Prometheus-legal metric names."""
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value: Any) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Tuple[Tuple[str, Any], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{label}="{_prom_escape(value)}"' for label, value in labels)
    return "{" + inner + "}"


def _prom_value(value: float) -> str:
    """Float rendering: integral values without the trailing .0."""
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def _render_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Flat registry of labeled counters, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: Dict[MetricKey, Counter] = {}
        self.gauges: Dict[MetricKey, Gauge] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}

    # -- instance access (get-or-create) ------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """Return the counter for (*name*, *labels*), creating it once."""
        key = _key(name, labels)
        counter = self.counters.get(key)
        if counter is None:
            counter = self.counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Return the gauge for (*name*, *labels*), creating it once."""
        key = _key(name, labels)
        gauge = self.gauges.get(key)
        if gauge is None:
            gauge = self.gauges[key] = Gauge()
        return gauge

    def histogram(
        self,
        name: str,
        min_value: float = 1e-7,
        max_value: float = 100.0,
        **labels: Any,
    ) -> Histogram:
        """Return the histogram for (*name*, *labels*), creating it once."""
        key = _key(name, labels)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = Histogram(
                min_value=min_value, max_value=max_value
            )
        return histogram

    # -- convenience recording ----------------------------------------------

    def inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """One-shot counter increment (cold paths only)."""
        self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """One-shot histogram sample (cold paths only)."""
        self.histogram(name, **labels).add(value)

    # -- aggregation -----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* in: counters add, gauges take the other value,
        histograms merge bucket-wise (layouts must match)."""
        for key, counter in other.counters.items():
            self.counter(key[0], **dict(key[1])).inc(counter.value)
        for key, gauge in other.gauges.items():
            self.gauge(key[0], **dict(key[1])).set(gauge.value)
        for key, histogram in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                mine = self.histograms[key] = Histogram(
                    min_value=histogram.min_value, max_value=histogram.max_value
                )
            mine.merge(histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-dict view: JSON-serializable, stable key order."""
        return {
            "counters": {
                _render_key(key): counter.value
                for key, counter in sorted(self.counters.items())
            },
            "gauges": {
                _render_key(key): gauge.value
                for key, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                _render_key(key): {
                    "count": histogram.count,
                    "mean": histogram.stats.mean,
                    "p50": histogram.percentile(50),
                    "p99": histogram.percentile(99),
                    "max": histogram.stats.max if histogram.count else 0.0,
                }
                for key, histogram in sorted(self.histograms.items())
            },
        }

    # -- rendering --------------------------------------------------------------

    def select(self, prefix: str) -> List[Tuple[MetricKey, Any]]:
        """All (key, metric) pairs whose name starts with *prefix*."""
        found: List[Tuple[MetricKey, Any]] = []
        for family in (self.counters, self.gauges, self.histograms):
            for key, metric in family.items():
                if key[0].startswith(prefix):
                    found.append((key, metric))
        return sorted(found, key=lambda pair: pair[0])

    def render_prometheus(self) -> str:
        """Prometheus text exposition (format 0.0.4) of the registry.

        Metric names have dots replaced by underscores; label values
        are escaped per the exposition format (backslash, double quote,
        newline). Histograms emit cumulative ``_bucket{le=...}`` lines
        for every non-empty log bucket plus ``+Inf``, ``_sum``
        (reconstructed as mean x count), and ``_count``.
        """
        lines: List[str] = []

        def grouped(family: Dict[MetricKey, Any]):
            by_name: Dict[str, List[Tuple[MetricKey, Any]]] = {}
            for key, metric in sorted(family.items()):
                by_name.setdefault(_prom_name(key[0]), []).append((key, metric))
            return sorted(by_name.items())

        for name, members in grouped(self.counters):
            lines.append(f"# TYPE {name} counter")
            for key, counter in members:
                lines.append(f"{name}{_prom_labels(key[1])} {counter.value}")
        for name, members in grouped(self.gauges):
            lines.append(f"# TYPE {name} gauge")
            for key, gauge in members:
                lines.append(f"{name}{_prom_labels(key[1])} {_prom_value(gauge.value)}")
        for name, members in grouped(self.histograms):
            lines.append(f"# TYPE {name} histogram")
            for key, histogram in members:
                labels = key[1]
                running = 0
                for index, bucket_count in enumerate(histogram._counts):
                    if not bucket_count:
                        continue
                    running += bucket_count
                    _low, high = histogram._bucket_bounds(index)
                    le = _prom_labels(labels + (("le", _prom_value(high)),))
                    lines.append(f"{name}_bucket{le} {running}")
                inf = _prom_labels(labels + (("le", "+Inf"),))
                lines.append(f"{name}_bucket{inf} {histogram.count}")
                total = histogram.stats.mean * histogram.count
                lines.append(f"{name}_sum{_prom_labels(labels)} {_prom_value(total)}")
                lines.append(f"{name}_count{_prom_labels(labels)} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def render_table(self, title: str = "metrics") -> str:
        """Fixed-width text dump of every metric in the registry."""
        lines = [title, "=" * len(title)]
        rows: List[Tuple[str, str]] = []
        for key, counter in sorted(self.counters.items()):
            rows.append((_render_key(key), str(counter.value)))
        for key, gauge in sorted(self.gauges.items()):
            rows.append((_render_key(key), f"{gauge.value:g}"))
        for key, histogram in sorted(self.histograms.items()):
            rows.append(
                (
                    _render_key(key),
                    f"n={histogram.count} mean={histogram.stats.mean:.3g} "
                    f"p50={histogram.percentile(50):.3g} "
                    f"p99={histogram.percentile(99):.3g}",
                )
            )
        width = max((len(name) for name, _ in rows), default=0)
        for name, rendered in rows:
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines) + "\n"


def render_rows(
    headers: Iterable[str], rows: Iterable[Iterable[Any]], title: Optional[str] = None
) -> str:
    """Small fixed-width table helper (kept here to avoid importing
    repro.bench from the obs layer)."""
    headers = [str(header) for header in headers]
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title)]
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"
