"""repro.obs — simulation-wide tracing and metrics.

The observability layer answers the questions the paper's evaluation
asks: *where do the round trips of a transaction attempt go* (execute /
lock / validate / log / commit / unlock), *what does a recovery
timeline look like* (heartbeat-miss → link-revoke → log-region-read →
roll-forward/back → truncate → stray-lock-notify), and *how many verbs
of each kind does a transaction cost* (§4: f+1 log writes per txn, not
per object).

Everything hangs off one :class:`Obs` facade:

* ``obs.metrics`` — a :class:`~repro.obs.metrics.MetricsRegistry` of
  labeled counters/gauges/histograms.
* ``obs.tracer`` — a :class:`~repro.obs.trace.Tracer` recording spans
  and instants against virtual time, exportable as Chrome
  ``trace_event`` JSON (open in ``chrome://tracing`` or Perfetto) or
  JSONL.

**Disabled-by-default, near-zero overhead.** Instrumented code holds a
reference to an obs object and calls its hooks unconditionally; the
default is the module-level :data:`NOOP_OBS`, whose every hook is a
no-op method on a slotted singleton — no per-call-site ``if`` trees, no
allocation, no dict lookups. Recording (when enabled) is purely
passive: the obs layer never schedules simulation events, so a seeded
run is identical with tracing on or off.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.obs.flight import (
    FlightAttempt,
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    render_rows,
)
from repro.obs.profile import (
    KernelProfiler,
    NULL_PROFILER,
    NullKernelProfiler,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.util.stats import Histogram

__all__ = [
    "Obs",
    "NullObs",
    "NOOP_OBS",
    "TxnTrace",
    "NULL_TXN_TRACE",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Tracer",
    "NullTracer",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "KernelProfiler",
    "NullKernelProfiler",
    "NULL_PROFILER",
    "TXN_PHASES",
]

# Canonical per-attempt phase order (spans and report rows follow it).
TXN_PHASES = ("execute", "lock", "validate", "log", "commit", "unlock", "abort")


class TxnTrace:
    """Per-attempt phase recorder handed out by :meth:`Obs.txn_begin`.

    ``phase(name, now)`` closes the segment since the previous mark as
    one span + one histogram sample (and one flight-record segment);
    ``end(outcome, now, writes)`` closes the whole attempt span and
    seals the flight record. ``focus(phase)`` re-asserts flight-record
    attribution at a verb-posting site after a scheduling point; it is
    free when the flight recorder is disabled.
    """

    __slots__ = ("obs", "protocol", "pid", "tid", "txn_id", "start", "last", "rec")

    def __init__(
        self,
        obs: "Obs",
        protocol: str,
        pid: int,
        tid: int,
        txn_id: int,
        now: float,
        rec: Optional[FlightAttempt] = None,
    ) -> None:
        self.obs = obs
        self.protocol = protocol
        self.pid = pid
        self.tid = tid
        self.txn_id = txn_id
        self.start = now
        self.last = now
        self.rec = rec

    def focus(self, phase: Optional[str] = None) -> None:
        """Claim flight-record attribution for verbs posted next."""
        self.obs.flight.focus(self.rec, phase)
        # The same assertion drives the wall-clock profiler's
        # per-phase rollup of verb-post frames.
        self.obs.profiler.set_phase(phase)

    def lock_event(self, event: str, table_id: int, slot: int, now: float) -> None:
        """Record a lock conflict/steal event on the flight record."""
        self.obs.flight.on_lock(self.rec, event, table_id, slot, now)

    def phase(self, name: str, now: float) -> None:
        """Close the current phase segment at virtual time *now*."""
        obs = self.obs
        obs.phase_histogram(self.protocol, name).add(now - self.last)
        obs.tracer.span("txn", name, self.last, now, pid=self.pid, tid=self.tid)
        obs.flight.mark(self.rec, name, self.last, now)
        self.last = now

    def end(self, outcome: str, now: float, writes: int = 0) -> None:
        """Close the attempt span with its *outcome* label.

        The flight record seals on the *first* end() — a later
        ``end("interrupted", ...)`` after in-place recovery keeps the
        original outcome.
        """
        self.obs.tracer.span(
            "txn",
            f"attempt:{outcome}",
            self.start,
            now,
            pid=self.pid,
            tid=self.tid,
            args={"txn_id": self.txn_id, "protocol": self.protocol},
        )
        self.obs.flight.close(self.rec, outcome, now, writes)
        self.obs.profiler.set_phase(None)


class _NullTxnTrace:
    """No-op twin of :class:`TxnTrace` (the disabled path)."""

    __slots__ = ()
    rec = None

    def focus(self, phase: Optional[str] = None) -> None:
        pass

    def lock_event(self, event: str, table_id: int, slot: int, now: float) -> None:
        pass

    def phase(self, name: str, now: float) -> None:
        pass

    def end(self, outcome: str, now: float, writes: int = 0) -> None:
        pass


NULL_TXN_TRACE = _NullTxnTrace()


class Obs:
    """Enabled observability: a metrics registry plus (optionally) a tracer.

    ``trace=False`` keeps the labeled counters/histograms but swaps the
    tracer for the no-op :data:`~repro.obs.trace.NULL_TRACER`;
    ``trace_verbs=True`` additionally records one instant per posted
    verb (off by default — a steady run posts hundreds of thousands);
    ``flight=True`` attaches a per-transaction
    :class:`~repro.obs.flight.FlightRecorder` (verb-level attempt
    accounting for the report layer); ``max_flights`` bounds its
    resident record count for long/open-loop runs (oldest closed
    attempts are evicted first).
    """

    enabled = True

    def __init__(
        self,
        trace: bool = True,
        trace_verbs: bool = False,
        flight: bool = False,
        max_flights: Optional[int] = None,
    ) -> None:
        self.metrics = MetricsRegistry()
        self.tracer: Tracer = Tracer() if trace else NULL_TRACER  # type: ignore[assignment]
        self.trace_verbs = trace_verbs and trace
        self.flight: FlightRecorder = (  # type: ignore[assignment]
            FlightRecorder(max_flights=max_flights) if flight else NULL_FLIGHT
        )
        # Wall-clock kernel profiler; the cluster builder swaps in an
        # enabled KernelProfiler when the run is profiled.
        self.profiler = NULL_PROFILER
        # Run-level facts (protocol, seed, replication degree, ...) the
        # report layer needs but events don't carry; populated by the
        # cluster builder, exported as the JSONL meta line.
        self.run_meta: Dict[str, Any] = {}

    def set_run_meta(self, **meta: Any) -> None:
        """Attach run-level metadata (cluster shape, seed, workload)."""
        self.run_meta.update(meta)
        # Hot-path metric instances, cached per label set so recording
        # is one method call (see MetricsRegistry docstring).
        self._verb_counters: Dict[Tuple[str, int], Counter] = {}
        self._verb_bytes: Dict[Tuple[str, int], Counter] = {}
        self._verb_errors: Dict[str, Counter] = {}
        self._verb_latency: Dict[str, Histogram] = {}
        self._phase_hist: Dict[Tuple[str, str], Histogram] = {}
        self._outcome_counters: Dict[Tuple[str, str], Counter] = {}

    # -- RDMA verb hooks (hot path: called once per posted verb) -------------

    def on_verb_post(
        self, kind: str, compute_id: int, node_id: int, wire_bytes: int, now: float
    ) -> None:
        """One verb posted on a QP (request direction)."""
        key = (kind, node_id)
        counter = self._verb_counters.get(key)
        if counter is None:
            counter = self._verb_counters[key] = self.metrics.counter(
                "rdma.verbs", verb=kind, node=node_id
            )
            self._verb_bytes[key] = self.metrics.counter(
                "rdma.verb_bytes", verb=kind, node=node_id
            )
        counter.inc()
        self._verb_bytes[key].inc(wire_bytes)
        if self.trace_verbs:
            self.tracer.instant("rdma", kind, now, pid=compute_id, tid=node_id)

    def on_verb_complete(
        self, kind: str, node_id: int, latency: float, wire_bytes: int, ok: bool
    ) -> None:
        """A signaled verb's completion was delivered back."""
        histogram = self._verb_latency.get(kind)
        if histogram is None:
            histogram = self._verb_latency[kind] = self.metrics.histogram(
                "rdma.verb_latency", min_value=1e-8, max_value=1.0, verb=kind
            )
        histogram.add(latency)
        if not ok:
            counter = self._verb_errors.get(kind)
            if counter is None:
                counter = self._verb_errors[kind] = self.metrics.counter(
                    "rdma.verb_errors", verb=kind
                )
            counter.inc()

    # -- transaction hooks ----------------------------------------------------

    def phase_histogram(self, protocol: str, phase: str) -> Histogram:
        """Latency histogram for one (protocol, phase) pair."""
        key = (protocol, phase)
        histogram = self._phase_hist.get(key)
        if histogram is None:
            histogram = self._phase_hist[key] = self.metrics.histogram(
                "txn.phase", min_value=1e-8, max_value=10.0,
                protocol=protocol, phase=phase,
            )
        return histogram

    def txn_begin(
        self,
        protocol: str,
        node_id: int,
        coord_id: int,
        txn_id: int,
        now: float,
        attempt: int = 1,
    ) -> TxnTrace:
        """Start recording one transaction attempt."""
        rec = self.flight.begin(protocol, node_id, coord_id, txn_id, attempt, now)
        return TxnTrace(self, protocol, node_id, coord_id, txn_id, now, rec)

    def on_outcome(self, protocol: str, outcome: str) -> None:
        """Count a final per-attempt outcome (commit / abort reason)."""
        key = (protocol, outcome)
        counter = self._outcome_counters.get(key)
        if counter is None:
            counter = self._outcome_counters[key] = self.metrics.counter(
                "txn.outcome", protocol=protocol, outcome=outcome
            )
        counter.inc()

    def commit_count(self) -> int:
        """Total commits observed (for per-commit verb normalization)."""
        return sum(
            counter.value
            for (_protocol, outcome), counter in self._outcome_counters.items()
            if outcome == "commit"
        )

    # -- kernel sampling (passive; call at run boundaries) --------------------

    def sample_kernel(self, sim) -> None:
        """Record kernel gauges (steps executed, queue depth, time)."""
        self.metrics.gauge("kernel.now").set(sim.now)
        self.metrics.gauge("kernel.processed_events").set(sim.processed_events)
        self.metrics.gauge("kernel.queue_depth").set(sim.queue_depth)

    # -- reporting --------------------------------------------------------------

    def verb_table(self, commits: Optional[int] = None) -> str:
        """Per-verb counts/bytes, optionally normalized per commit."""
        totals: Dict[str, List[int]] = {}
        for (kind, _node), counter in sorted(self._verb_counters.items()):
            entry = totals.setdefault(kind, [0, 0])
            entry[0] += counter.value
        for (kind, _node), counter in self._verb_bytes.items():
            totals.setdefault(kind, [0, 0])[1] += counter.value
        headers = ["verb", "count", "wire bytes"]
        if commits:
            headers.append("per commit")
        rows = []
        for kind, (count, wire_bytes) in sorted(totals.items()):
            row: List[Any] = [kind, count, wire_bytes]
            if commits:
                row.append(f"{count / commits:.2f}")
            rows.append(row)
        return render_rows(headers, rows, title="RDMA verbs")

    def phase_table(self) -> str:
        """Per-phase latency table in canonical phase order."""
        order = {phase: index for index, phase in enumerate(TXN_PHASES)}
        rows = []
        for (protocol, phase), histogram in sorted(
            self._phase_hist.items(),
            key=lambda item: (item[0][0], order.get(item[0][1], 99)),
        ):
            if not histogram.count:
                continue
            rows.append(
                (
                    protocol,
                    phase,
                    histogram.count,
                    f"{histogram.stats.mean * 1e6:.2f}",
                    f"{histogram.percentile(50) * 1e6:.2f}",
                    f"{histogram.percentile(99) * 1e6:.2f}",
                )
            )
        return render_rows(
            ["protocol", "phase", "samples", "mean (us)", "p50 (us)", "p99 (us)"],
            rows,
            title="transaction phase latency",
        )

    def export_jsonl(self, path_or_file: Union[str, IO[str]]) -> None:
        """Write the full run as JSONL: meta line, trace events, flights.

        Line types are discriminated by ``ph``: ``"meta"`` (one line of
        run metadata), ``"X"``/``"i"`` (tracer spans/instants), and
        ``"flight"`` (one per transaction attempt). This is the file
        ``repro obs-report`` consumes.
        """

        def dump(handle: IO[str]) -> None:
            meta: Dict[str, Any] = {"ph": "meta"}
            meta.update(self.run_meta)
            if self.flight.unattributed:
                meta["unattributed"] = dict(self.flight.unattributed)
            handle.write(json.dumps(meta))
            handle.write("\n")
            self.tracer.export_jsonl(handle)
            self.flight.export_jsonl(handle)

        if hasattr(path_or_file, "write"):
            dump(path_or_file)  # type: ignore[arg-type]
        else:
            with open(path_or_file, "w") as handle:
                dump(handle)

    def report(self, commits: Optional[int] = None) -> str:
        """The ``--metrics`` report: verb costs + phase latencies."""
        sections = [self.verb_table(commits), self.phase_table()]
        recovery = self.metrics.select("recovery.")
        if recovery:
            rows = []
            for (name, labels), metric in recovery:
                if labels:
                    name += "{%s}" % ",".join(f"{k}={v}" for k, v in labels)
                if isinstance(metric, Histogram):
                    value = (
                        f"n={metric.count} mean={metric.stats.mean * 1e6:.1f}us "
                        f"p99={metric.percentile(99) * 1e6:.1f}us"
                    )
                else:
                    value = f"{metric.value:g}"
                rows.append((name, value))
            sections.append(render_rows(["metric", "value"], rows, title="recovery"))
        return "\n".join(sections)


class NullObs:
    """Disabled observability: every hook is a slotted no-op.

    This object (not per-call ``if`` guards) is the overhead guard: the
    instrumented hot paths pay one attribute lookup + one no-op call.
    """

    enabled = False

    __slots__ = ()

    metrics = None  # replaced below with a no-op registry
    tracer = NULL_TRACER
    trace_verbs = False
    flight = NULL_FLIGHT
    profiler = NULL_PROFILER
    run_meta: Dict[str, Any] = {}

    def set_run_meta(self, **meta) -> None:
        pass

    def on_verb_post(self, kind, compute_id, node_id, wire_bytes, now) -> None:
        pass

    def on_verb_complete(self, kind, node_id, latency, wire_bytes, ok) -> None:
        pass

    def phase_histogram(self, protocol, phase):
        return NULL_HISTOGRAM

    def txn_begin(
        self, protocol, node_id, coord_id, txn_id, now, attempt=1
    ) -> _NullTxnTrace:
        return NULL_TXN_TRACE

    def on_outcome(self, protocol, outcome) -> None:
        pass

    def commit_count(self) -> int:
        return 0

    def sample_kernel(self, sim) -> None:
        pass

    def export_jsonl(self, path_or_file) -> None:
        pass

    def report(self, commits: Optional[int] = None) -> str:
        return "(observability disabled)\n"


class _NullMetricsRegistry:
    """No-op registry so cold paths can use ``obs.metrics`` unguarded."""

    __slots__ = ()

    counters: Dict = {}
    gauges: Dict = {}
    histograms: Dict = {}

    def counter(self, name, **labels):
        return NULL_COUNTER

    def gauge(self, name, **labels):
        return NULL_GAUGE

    def histogram(self, name, min_value=1e-7, max_value=100.0, **labels):
        return NULL_HISTOGRAM

    def inc(self, name, amount=1, **labels) -> None:
        pass

    def observe(self, name, value, **labels) -> None:
        pass

    def select(self, prefix):
        return []

    def snapshot(self):
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge(self, other) -> None:
        pass

    def render_table(self, title: str = "metrics") -> str:
        return f"{title}\n{'=' * len(title)}\n"


NullObs.metrics = _NullMetricsRegistry()

NOOP_OBS = NullObs()
