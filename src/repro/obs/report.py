"""Evaluation reports derived from flight records and trace events.

This is the analysis layer over :mod:`repro.obs.flight` and the tracer:
it converts raw per-attempt records into the tables the paper's
evaluation prints —

* **per-phase latency percentiles** (exact, computed from the recorded
  phase segments rather than log-bucketed histograms),
* **round-trip / verb-count accounting per protocol**, including a
  machine check of the §4 claim that Pandora spends exactly f+1 log
  writes per committed transaction while FORD and the traditional
  scheme scale with the number of written objects,
* **abort attribution** (lock conflict vs validation failure vs
  application logic vs fault), plus PILL lock-event counts
  (steals, conflicts),
* **recovery timelines** (heartbeat-miss → link-revoke →
  log-region-read → roll-forward/back → truncate → notify with
  per-step durations).

Inputs come either live from an :class:`~repro.obs.Obs` (bench
harness) or from the JSONL export (``repro obs-report file.jsonl``);
both normalize into :class:`RunData`. Renderers produce an aligned
terminal report and a self-contained single-file HTML report.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.flight import FlightAttempt
from repro.obs.metrics import render_rows
from repro.rdma.verbs import VERB_CATEGORIES
from repro.util.stats import percentile_of_sorted

__all__ = [
    "RunData",
    "from_obs",
    "load_jsonl",
    "phase_latency_rows",
    "verb_accounting_rows",
    "check_log_write_claim",
    "abort_attribution",
    "lock_event_counts",
    "recovery_timelines",
    "redetection_counts",
    "render_terminal",
    "render_html",
    "render_load_html",
    "compare_snapshots",
    "print_report",
    "ABORT_CATEGORIES",
]

# Display order for phases (flight records may add "recover").
PHASE_ORDER = ("execute", "lock", "validate", "log", "commit", "unlock", "abort", "recover")

# Abort-attribution codes: reason string -> coarse category. The
# categories match the paper's discussion — lock conflicts (§3.1.2,
# what PILL stealing reduces), validation failures (§2.3 OCC), aborts
# the application asked for, and fault-induced outcomes (§3.2).
ABORT_CATEGORIES = {
    "lock_conflict": "lock-conflict",
    "read_locked": "lock-conflict",
    "validation_version": "validation",
    "validation_locked": "validation",
    "upgrade_version": "validation",
    "duplicate_key": "application",
    "not_found": "application",
    "user_abort": "application",
    "memory_reconfiguration": "fault",
    "link_revoked": "fault",
}

# Expected committed-transaction log-write cost per protocol (§4).
# f+1 == the number of fixed log servers; R == replication degree.
CLAIM_FORMULAS = {
    "pandora": "f+1 per txn (0 when read-only)",
    "tradlog": "(f+1) x (writes+1)",
    "ford": "R x writes",
    "baseline": "R x writes",
}


class RunData:
    """One run's worth of observability data, source-agnostic."""

    def __init__(
        self,
        meta: Optional[Dict[str, Any]] = None,
        flights: Optional[List[FlightAttempt]] = None,
        events: Optional[List[Dict[str, Any]]] = None,
        source: str = "",
    ) -> None:
        self.meta = meta or {}
        self.flights = flights or []
        # Tracer events normalized to dicts (ph/cat/name/ts/dur/pid/args).
        self.events = events or []
        self.source = source

    def protocols(self) -> List[str]:
        """Protocol names present, meta first, then flight-observed."""
        seen = []
        if self.meta.get("protocol"):
            seen.append(self.meta["protocol"])
        for record in self.flights:
            if record.protocol not in seen:
                seen.append(record.protocol)
        return seen


def from_obs(obs, source: str = "") -> RunData:
    """Build RunData directly from a live Obs instance."""
    events = []
    for phase, category, name, ts, dur, pid, tid, args in obs.tracer.events:
        event: Dict[str, Any] = {
            "ph": phase, "cat": category, "name": name,
            "ts": ts, "dur": dur, "pid": pid, "tid": tid,
        }
        if args:
            event["args"] = args
        events.append(event)
    meta = dict(obs.run_meta)
    if obs.flight.unattributed:
        meta["unattributed"] = dict(obs.flight.unattributed)
    return RunData(
        meta=meta,
        flights=list(obs.flight.attempts),
        events=events,
        source=source,
    )


def load_jsonl(path: str) -> RunData:
    """Parse one ``obs.export_jsonl`` file into RunData."""
    run = RunData(source=path)
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            kind = payload.get("ph")
            if kind == "meta":
                meta = dict(payload)
                meta.pop("ph", None)
                run.meta.update(meta)
            elif kind == "flight":
                run.flights.append(FlightAttempt.from_json(payload))
            else:
                run.events.append(payload)
    return run


# -- derivations -------------------------------------------------------------


def _committed(run: RunData, protocol: str) -> List[FlightAttempt]:
    return [
        record
        for record in run.flights
        if record.protocol == protocol
        and record.outcome is not None
        and record.outcome.startswith("commit")
    ]


def phase_latency_rows(run: RunData) -> List[Tuple[Any, ...]]:
    """(protocol, phase, n, mean us, p50 us, p90 us, p99 us) rows.

    Exact percentiles over the recorded phase segments — unlike the
    metrics-registry histograms these are not bucket-interpolated.
    """
    samples: Dict[Tuple[str, str], List[float]] = {}
    for record in run.flights:
        for name, start, end in record.phases:
            samples.setdefault((record.protocol, name), []).append(end - start)
    order = {phase: index for index, phase in enumerate(PHASE_ORDER)}
    rows = []
    for (protocol, phase), values in sorted(
        samples.items(), key=lambda item: (item[0][0], order.get(item[0][1], 99))
    ):
        values.sort()
        rows.append(
            (
                protocol,
                phase,
                len(values),
                f"{sum(values) / len(values) * 1e6:.2f}",
                f"{percentile_of_sorted(values, 50) * 1e6:.2f}",
                f"{percentile_of_sorted(values, 90) * 1e6:.2f}",
                f"{percentile_of_sorted(values, 99) * 1e6:.2f}",
            )
        )
    return rows


def verb_accounting_rows(run: RunData) -> List[Tuple[Any, ...]]:
    """Per-protocol round-trip accounting over committed transactions.

    One row per (protocol, phase, verb kind): total posts, posts per
    committed txn, category, and the p50/p99 completion latency of
    signaled posts. Round trips == signaled verbs (unsignaled posts
    never produce a completion the coordinator waits on).
    """
    rows = []
    for protocol in run.protocols():
        committed = _committed(run, protocol)
        if not committed:
            continue
        counts: Dict[Tuple[str, str], int] = {}
        latencies: Dict[Tuple[str, str], List[float]] = {}
        for record in committed:
            # Region-addressed verbs carry an extra detail element
            # (see flight._DETAIL_ARGS) — unpack only the fixed prefix.
            for kind, _node, phase, _ts, latency, _ok in (
                entry[:6] for entry in record.verbs
            ):
                key = (phase, kind)
                counts[key] = counts.get(key, 0) + 1
                if latency >= 0:
                    latencies.setdefault(key, []).append(latency)
        order = {phase: index for index, phase in enumerate(PHASE_ORDER)}
        for (phase, kind), total in sorted(
            counts.items(), key=lambda item: (order.get(item[0][0], 99), item[0][1])
        ):
            lat = sorted(latencies.get((phase, kind), []))
            rows.append(
                (
                    protocol,
                    phase,
                    kind,
                    VERB_CATEGORIES.get(kind, "other"),
                    total,
                    f"{total / len(committed):.2f}",
                    f"{percentile_of_sorted(lat, 50) * 1e6:.2f}" if lat else "-",
                    f"{percentile_of_sorted(lat, 99) * 1e6:.2f}" if lat else "-",
                )
            )
    return rows


def _expected_log_writes(protocol: str, writes: int, log_servers: int, replication: int) -> int:
    if writes == 0:
        # Read-only transactions log nothing under every scheme.
        return 0
    if protocol == "pandora":
        return log_servers
    if protocol == "tradlog":
        # One lock-intent record per written object plus the coalesced
        # undo record, each to the f+1 log servers.
        return log_servers * (writes + 1)
    # ford / baseline: one undo record per object to each of its replicas.
    return replication * writes


def check_log_write_claim(run: RunData) -> List[Dict[str, Any]]:
    """Machine-check the §4 logging claim per protocol in *run*.

    For every committed attempt, compares the recorded ``write_log``
    posts against the protocol's expected cost. Returns one result dict
    per protocol: ``{"protocol", "formula", "checked", "violations",
    "ok", "mean_log_writes", "mean_writes", "detail"}``.
    """
    log_servers = int(run.meta.get("log_servers", 0))
    replication = int(run.meta.get("replication_degree", 0))
    results = []
    for protocol in run.protocols():
        committed = _committed(run, protocol)
        if not committed:
            continue
        violations = []
        total_log = 0
        total_writes = 0
        for record in committed:
            observed = record.log_writes()
            total_log += observed
            total_writes += record.writes
            expected = _expected_log_writes(
                protocol, record.writes, log_servers, replication
            )
            if observed != expected:
                violations.append(
                    (record.coord_id, record.txn_id, record.attempt, record.writes,
                     observed, expected)
                )
        detail = ""
        if violations:
            coord, txn, attempt, writes, observed, expected = violations[0]
            detail = (
                f"first: coord={coord} txn={txn} attempt={attempt} "
                f"writes={writes} observed={observed} expected={expected}"
            )
        results.append(
            {
                "protocol": protocol,
                "formula": CLAIM_FORMULAS.get(protocol, "R x writes"),
                "checked": len(committed),
                "violations": len(violations),
                "ok": not violations,
                "mean_log_writes": total_log / len(committed),
                "mean_writes": total_writes / len(committed),
                "detail": detail,
            }
        )
    return results


def abort_attribution(run: RunData) -> List[Tuple[str, str, str, int]]:
    """(protocol, category, outcome, count) rows for non-commit attempts.

    Categories: lock-conflict, validation, application, fault, open
    (record never closed — the run ended with the attempt in flight,
    or its coordinator crashed mid-attempt).
    """
    counts: Dict[Tuple[str, str, str], int] = {}
    for record in run.flights:
        outcome = record.outcome
        if outcome is None:
            key = (record.protocol, "open", "(open)")
        elif outcome.startswith("commit"):
            continue
        elif outcome.startswith("abort:"):
            reason = outcome.split(":", 1)[1]
            key = (record.protocol, ABORT_CATEGORIES.get(reason, "other"), reason)
        else:
            # "fenced" / "interrupted": the fault machinery cut in.
            key = (record.protocol, "fault", outcome)
        counts[key] = counts.get(key, 0) + 1
    return [
        (protocol, category, outcome, count)
        for (protocol, category, outcome), count in sorted(counts.items())
    ]


def lock_event_counts(run: RunData) -> List[Tuple[str, str, int]]:
    """(protocol, lock event, count) rows: conflicts, PILL steals.

    Note: protocols with anonymous lock words cannot distinguish a
    stray lock from a live owner, so waits on stray locks surface here
    as repeated ``conflict`` events rather than ``steal``.
    """
    counts: Dict[Tuple[str, str], int] = {}
    for record in run.flights:
        for event, _table, _slot, _ts in record.locks:
            key = (record.protocol, event)
            counts[key] = counts.get(key, 0) + 1
    return [(protocol, event, count) for (protocol, event), count in sorted(counts.items())]


def recovery_timelines(run: RunData) -> List[Tuple[int, List[Tuple[str, float, float]]]]:
    """Per-failed-node recovery step sequences from "recovery" spans.

    Returns ``[(node_id, [(step, start, duration), ...]), ...]`` with
    steps in virtual-time order — the heartbeat-miss → link-revoke →
    log-read → roll-forward/back → truncate → notify chain of §3.2.
    """
    grouped: Dict[int, List[Tuple[str, float, float]]] = {}
    for event in run.events:
        if event.get("cat") != "recovery" or event.get("ph") != "X":
            continue
        grouped.setdefault(int(event.get("pid", 0)), []).append(
            (event["name"], float(event["ts"]), float(event.get("dur", 0.0)))
        )
    timelines = []
    for node_id in sorted(grouped):
        steps = sorted(grouped[node_id], key=lambda step: (step[1], step[1] + step[2]))
        timelines.append((node_id, steps))
    return timelines


def redetection_counts(run: RunData) -> List[Tuple[int, str, int]]:
    """Failure-detector re-declarations per node, from "redetect"
    instants.

    A re-detection means a dead node's recovery died mid-flight and the
    detector declared it again after the quiet period (``repro chaos
    --fd-redetect-interval``). Returns ``[(node_id, kind, count), ...]``.
    """
    counts: Dict[Tuple[int, str], int] = {}
    for event in run.events:
        if event.get("cat") != "recovery" or event.get("ph") != "i":
            continue
        if event.get("name") != "redetect":
            continue
        kind = str((event.get("args") or {}).get("kind", "compute"))
        key = (int(event.get("pid", 0)), kind)
        counts[key] = counts.get(key, 0) + 1
    return [
        (node_id, kind, count)
        for (node_id, kind), count in sorted(counts.items())
    ]


# -- renderers ---------------------------------------------------------------


def _meta_line(run: RunData) -> str:
    meta = run.meta
    parts = []
    for key in (
        "protocol", "workload", "seed", "replication_degree", "log_servers",
        "memory_nodes", "compute_nodes", "coordinators_per_node",
    ):
        if key in meta:
            parts.append(f"{key}={meta[key]}")
    label = run.source or "(live)"
    return f"run {label}: " + " ".join(parts) if parts else f"run {label}"


def _claim_rows(results: List[Dict[str, Any]]) -> List[Tuple[Any, ...]]:
    rows = []
    for result in results:
        rows.append(
            (
                result["protocol"],
                result["formula"],
                result["checked"],
                f"{result['mean_writes']:.2f}",
                f"{result['mean_log_writes']:.2f}",
                result["violations"],
                "OK" if result["ok"] else f"FAIL ({result['detail']})",
            )
        )
    return rows


def render_terminal(runs: Sequence[RunData]) -> str:
    """Aligned plain-text report over one or more runs."""
    sections: List[str] = ["transaction flight report", "=" * 25, ""]
    for run in runs:
        sections.append(_meta_line(run))
        sections.append("")
        rows = phase_latency_rows(run)
        if rows:
            sections.append(
                render_rows(
                    ["protocol", "phase", "n", "mean (us)", "p50 (us)", "p90 (us)", "p99 (us)"],
                    rows,
                    title="phase latency (exact percentiles)",
                )
            )
        rows = verb_accounting_rows(run)
        if rows:
            sections.append(
                render_rows(
                    ["protocol", "phase", "verb", "cat", "total", "per commit",
                     "p50 (us)", "p99 (us)"],
                    rows,
                    title="round-trip / verb accounting (committed txns)",
                )
            )
        claims = check_log_write_claim(run)
        if claims:
            sections.append(
                render_rows(
                    ["protocol", "expected log writes", "txns", "mean writes",
                     "mean log writes", "violations", "status"],
                    _claim_rows(claims),
                    title="logging claim check (paper §4: f+1 per txn vs per object)",
                )
            )
        rows = abort_attribution(run)
        if rows:
            sections.append(
                render_rows(
                    ["protocol", "category", "outcome", "count"],
                    rows,
                    title="abort attribution",
                )
            )
        rows = lock_event_counts(run)
        if rows:
            sections.append(
                render_rows(
                    ["protocol", "lock event", "count"], rows, title="lock events"
                )
            )
        timelines = recovery_timelines(run)
        for node_id, steps in timelines:
            step_rows = [
                (name, f"{start * 1e3:.3f}", f"{duration * 1e6:.1f}")
                for name, start, duration in steps
            ]
            sections.append(
                render_rows(
                    ["step", "start (ms)", "duration (us)"],
                    step_rows,
                    title=f"recovery timeline: node {node_id}",
                )
            )
        redetects = redetection_counts(run)
        if redetects:
            sections.append(
                render_rows(
                    ["node", "kind", "re-detections"],
                    redetects,
                    title="failure re-detections (recovery died mid-flight)",
                )
            )
        unattributed = run.meta.get("unattributed")
        if unattributed:
            sections.append(
                render_rows(
                    ["verb", "count"], sorted(unattributed.items()),
                    title="unattributed verbs (system traffic)",
                )
            )
    return "\n".join(sections)


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.meta { color: #555; font-size: 0.85rem; margin-bottom: 1rem; }
table { border-collapse: collapse; font-size: 0.85rem; margin: 0.5rem 0; }
th, td { padding: 0.25rem 0.7rem; text-align: left;
         border-bottom: 1px solid #ddd; }
th { background: #f0f0f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.ok { color: #0a7a2f; font-weight: 600; } .fail { color: #c0182b; font-weight: 600; }
.bar { display: inline-block; height: 0.7rem; background: #4c6ef5;
       vertical-align: middle; border-radius: 2px; }
.barlabel { font-size: 0.75rem; color: #555; margin-left: 0.3rem; }
"""


def _html_escape(value: Any) -> str:
    return (
        str(value)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _html_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_html_escape(header)}</th>" for header in headers)
    body = []
    for row in rows:
        cells = []
        for cell in row:
            text = _html_escape(cell)
            css = ' class="num"' if isinstance(cell, (int, float)) else ""
            if text == "OK":
                css = ' class="ok"'
            elif text.startswith("FAIL"):
                css = ' class="fail"'
            cells.append(f"<td{css}>{text}</td>")
        body.append("<tr>" + "".join(cells) + "</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def _html_phase_bars(run: RunData) -> str:
    """Mean phase-latency breakdown per protocol as inline CSS bars."""
    means: Dict[str, Dict[str, float]] = {}
    for protocol, phase, _n, mean, _p50, _p90, _p99 in phase_latency_rows(run):
        means.setdefault(protocol, {})[phase] = float(mean)
    if not means:
        return ""
    scale = max(max(phases.values()) for phases in means.values()) or 1.0
    parts = []
    for protocol, phases in sorted(means.items()):
        rows = []
        for phase in PHASE_ORDER:
            if phase not in phases:
                continue
            width = max(1, int(phases[phase] / scale * 400))
            rows.append(
                f"<tr><td>{_html_escape(phase)}</td>"
                f'<td><span class="bar" style="width:{width}px"></span>'
                f'<span class="barlabel">{phases[phase]:.2f} us</span></td></tr>'
            )
        parts.append(
            f"<h3>{_html_escape(protocol)}</h3><table>{''.join(rows)}</table>"
        )
    return "<h2>Phase breakdown (mean)</h2>" + "".join(parts)


def render_html(runs: Sequence[RunData], title: str = "Transaction flight report") -> str:
    """Self-contained single-file HTML report (inline CSS, no deps)."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_html_escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{_html_escape(title)}</h1>",
    ]
    for run in runs:
        parts.append(f'<p class="meta">{_html_escape(_meta_line(run))}</p>')
        rows = phase_latency_rows(run)
        if rows:
            parts.append("<h2>Phase latency (exact percentiles)</h2>")
            parts.append(
                _html_table(
                    ["protocol", "phase", "n", "mean (us)", "p50 (us)", "p90 (us)",
                     "p99 (us)"],
                    rows,
                )
            )
        parts.append(_html_phase_bars(run))
        rows = verb_accounting_rows(run)
        if rows:
            parts.append("<h2>Round-trip / verb accounting (committed txns)</h2>")
            parts.append(
                _html_table(
                    ["protocol", "phase", "verb", "cat", "total", "per commit",
                     "p50 (us)", "p99 (us)"],
                    rows,
                )
            )
        claims = check_log_write_claim(run)
        if claims:
            parts.append("<h2>Logging claim check (&sect;4)</h2>")
            parts.append(
                _html_table(
                    ["protocol", "expected log writes", "txns", "mean writes",
                     "mean log writes", "violations", "status"],
                    _claim_rows(claims),
                )
            )
        rows = abort_attribution(run)
        if rows:
            parts.append("<h2>Abort attribution</h2>")
            parts.append(_html_table(["protocol", "category", "outcome", "count"], rows))
        rows = lock_event_counts(run)
        if rows:
            parts.append("<h2>Lock events</h2>")
            parts.append(_html_table(["protocol", "lock event", "count"], rows))
        for node_id, steps in recovery_timelines(run):
            parts.append(f"<h2>Recovery timeline: node {node_id}</h2>")
            parts.append(
                _html_table(
                    ["step", "start (ms)", "duration (us)"],
                    [
                        (name, f"{start * 1e3:.3f}", f"{duration * 1e6:.1f}")
                        for name, start, duration in steps
                    ],
                )
            )
        redetects = redetection_counts(run)
        if redetects:
            parts.append("<h2>Failure re-detections</h2>")
            parts.append(
                _html_table(["node", "kind", "re-detections"], redetects)
            )
    parts.append("</body></html>")
    return "".join(parts)


def print_report(runs: Sequence[RunData]) -> None:
    """Print the terminal report (simlint-allowlisted output site)."""
    print(render_terminal(runs))


# -- snapshot deltas (repro obs-report --compare A.json B.json) --------------


def _delta_cell(before: Any, after: Any) -> str:
    try:
        before_f, after_f = float(before), float(after)
    except (TypeError, ValueError):
        return ""
    if before_f == 0.0:
        return "n/a" if after_f else "0%"
    return f"{100.0 * (after_f - before_f) / before_f:+.1f}%"


def compare_snapshots(
    before: Dict[str, Any],
    after: Dict[str, Any],
    label_before: str = "A",
    label_after: str = "B",
) -> str:
    """Delta table between two ``BENCH_*.json`` payloads.

    Understands all three snapshot shapes: load sweeps (``curves``
    keyed by protocol, one row per offered point), kernel-perf sweeps
    (``fleets`` keyed by fleet name — also served by
    ``repro perf --compare``), and steady-state payloads (flat
    ``throughput_tps``/latency keys, one row per metric). The delta
    column is relative to *before*.
    """
    headers = ["metric", label_before, label_after, "delta"]
    rows: List[Tuple[Any, ...]] = []
    if "fleets" in before or "fleets" in after:
        metrics = (
            ("events_per_sec", "events/sec"),
            ("wall_us_per_event", "us/event"),
            ("steps", "steps"),
        )
        before_fleets = before.get("fleets", {})
        after_fleets = after.get("fleets", {})
        for fleet in sorted(set(before_fleets) | set(after_fleets)):
            b = before_fleets.get(fleet, {})
            a = after_fleets.get(fleet, {})
            for key, label in metrics:
                rows.append(
                    (
                        f"{fleet} {label}",
                        b.get(key, "-"),
                        a.get(key, "-"),
                        _delta_cell(b.get(key), a.get(key)),
                    )
                )
            if b.get("steps") not in (None, a.get("steps")) and a.get("steps") is not None:
                rows.append((f"{fleet} STEP DRIFT", "", "behaviour changed", ""))
        return render_rows(headers, rows, title="kernel-perf snapshot delta")
    if "curves" in before or "curves" in after:
        metrics = (
            ("achieved_tps", "achieved"),
            ("co_p50_us", "co p50 (us)"),
            ("co_p99_us", "co p99 (us)"),
            ("abort_rate", "abort rate"),
            ("commits", "commits"),
        )
        before_curves = before.get("curves", {})
        after_curves = after.get("curves", {})
        for protocol in sorted(set(before_curves) | set(after_curves)):
            before_points = {
                point["offered_tps"]: point
                for point in before_curves.get(protocol, {}).get("points", [])
            }
            after_points = {
                point["offered_tps"]: point
                for point in after_curves.get(protocol, {}).get("points", [])
            }
            for offered in sorted(set(before_points) | set(after_points)):
                b = before_points.get(offered, {})
                a = after_points.get(offered, {})
                for key, label in metrics:
                    rows.append(
                        (
                            f"{protocol} @ {offered:,.0f} {label}",
                            b.get(key, "-"),
                            a.get(key, "-"),
                            _delta_cell(b.get(key), a.get(key)),
                        )
                    )
        return render_rows(headers, rows, title="load snapshot delta")
    metrics = (
        ("throughput_tps", "throughput (tps)"),
        ("p50_latency_us", "p50 (us)"),
        ("p99_latency_us", "p99 (us)"),
        ("abort_rate", "abort rate"),
        ("commits", "commits"),
        ("aborts", "aborts"),
    )
    for key, label in metrics:
        if key not in before and key not in after:
            continue
        rows.append(
            (
                label,
                before.get(key, "-"),
                after.get(key, "-"),
                _delta_cell(before.get(key), after.get(key)),
            )
        )
    return render_rows(headers, rows, title="bench snapshot delta")


# -- load-curve rendering (repro load --html) --------------------------------

_CURVE_COLORS = ("#4c6ef5", "#e8590c", "#2b8a3e", "#ae3ec9", "#e03131")


def _svg_curve_plot(
    title: str,
    series: Dict[str, List[Tuple[float, float]]],
    y_label: str,
    width: int = 460,
    height: int = 260,
    reference_diagonal: bool = False,
) -> str:
    """Inline-SVG scatter+line plot of per-protocol (x, y) series."""
    pad = 46
    points = [pt for pts in series.values() for pt in pts]
    if not points:
        return ""
    x_max = max(x for x, _y in points) or 1.0
    y_max = max(y for _x, y in points) or 1.0
    if reference_diagonal:
        y_max = max(y_max, x_max)

    def sx(x: float) -> float:
        return pad + (width - 2 * pad) * x / x_max

    def sy(y: float) -> float:
        return height - pad - (height - 2 * pad) * y / y_max

    parts = [
        f'<svg width="{width}" height="{height}" '
        'xmlns="http://www.w3.org/2000/svg" style="background:#fafafc">',
        f'<text x="{width / 2}" y="16" text-anchor="middle" '
        f'font-size="13" font-weight="600">{_html_escape(title)}</text>',
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#888"/>',
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" y2="{height - pad}" '
        'stroke="#888"/>',
        f'<text x="{width / 2}" y="{height - 8}" text-anchor="middle" '
        'font-size="11" fill="#555">offered (tps)</text>',
        f'<text x="14" y="{height / 2}" font-size="11" fill="#555" '
        f'transform="rotate(-90 14 {height / 2})" text-anchor="middle">'
        f"{_html_escape(y_label)}</text>",
        f'<text x="{pad}" y="{height - pad + 14}" font-size="10" '
        'fill="#555">0</text>',
        f'<text x="{width - pad}" y="{height - pad + 14}" font-size="10" '
        f'fill="#555" text-anchor="end">{x_max:,.0f}</text>',
        f'<text x="{pad - 4}" y="{pad}" font-size="10" fill="#555" '
        f'text-anchor="end">{y_max:,.0f}</text>',
    ]
    if reference_diagonal:
        parts.append(
            f'<line x1="{sx(0)}" y1="{sy(0)}" x2="{sx(x_max)}" '
            f'y2="{sy(x_max)}" stroke="#bbb" stroke-dasharray="4 3"/>'
        )
    for index, (name, pts) in enumerate(sorted(series.items())):
        color = _CURVE_COLORS[index % len(_CURVE_COLORS)]
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{sx(x):.1f},{sy(y):.1f}"
            for i, (x, y) in enumerate(sorted(pts))
        )
        parts.append(
            f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
        )
        for x, y in pts:
            parts.append(
                f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="3" '
                f'fill="{color}"/>'
            )
        parts.append(
            f'<text x="{width - pad + 4}" y="{pad + 14 * index}" '
            f'font-size="11" fill="{color}">{_html_escape(name)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render_load_html(
    payload: Dict[str, Any], title: str = "Open-loop load curves"
) -> str:
    """Self-contained HTML for a ``BENCH_LOAD.json``-style payload.

    Two SVG plots (achieved-vs-offered with the x=y reference line, and
    CO-corrected p99 vs offered) plus one point table per protocol.
    """
    curves = payload.get("curves", {})
    achieved: Dict[str, List[Tuple[float, float]]] = {}
    p99s: Dict[str, List[Tuple[float, float]]] = {}
    for protocol, curve in curves.items():
        for point in curve.get("points", []):
            achieved.setdefault(protocol, []).append(
                (point["offered_tps"], point["achieved_tps"])
            )
            p99s.setdefault(protocol, []).append(
                (point["offered_tps"], point["co_p99_us"])
            )
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_html_escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{_html_escape(title)}</h1>",
        '<p class="meta">'
        f"workload={_html_escape(payload.get('workload', '?'))} "
        f"arrivals={_html_escape(payload.get('arrivals', '?'))} "
        "latency is CO-corrected: measured from intended arrival time, "
        "queue wait included; censored in-flight/queued requests count "
        "at their age.</p>",
        _svg_curve_plot(
            "achieved vs offered load", achieved, "achieved (tps)",
            reference_diagonal=True,
        ),
        _svg_curve_plot("CO-corrected p99 vs offered load", p99s, "p99 (us)"),
    ]
    for protocol, curve in sorted(curves.items()):
        knee = curve.get("knee_offered_tps")
        knee_text = f"{knee:,.0f} tps" if knee else "not reached"
        parts.append(
            f"<h2>{_html_escape(protocol)} "
            f'<span class="meta">(knee: {knee_text})</span></h2>'
        )
        rows = []
        for point in curve.get("points", []):
            rows.append(
                (
                    point["offered_tps"],
                    point["achieved_tps"],
                    point["co_p50_us"],
                    point["co_p99_us"],
                    point["co_p999_us"],
                    f"{100 * point['abort_rate']:.1f}%",
                    point["queue_depth_mean"],
                    point["backlog_end"],
                    "OK" if not point.get("violations") else
                    f"FAIL ({len(point['violations'])})",
                )
            )
        parts.append(
            _html_table(
                [
                    "offered", "achieved", "co p50 (us)", "co p99 (us)",
                    "co p99.9 (us)", "abort", "queue mean", "backlog",
                    "oracle",
                ],
                rows,
            )
        )
        violations = [
            violation
            for point in curve.get("points", [])
            for violation in point.get("violations", [])
        ]
        if violations:
            parts.append(
                "<ul>"
                + "".join(
                    f"<li class='fail'>{_html_escape(v)}</li>"
                    for v in violations[:20]
                )
                + "</ul>"
            )
    parts.append("</body></html>")
    return "".join(parts)
