"""Structured span/instant tracing against virtual time.

The tracer is a passive event recorder: instrumented code reports
``(category, name, start, end)`` spans and point-in-time instants with
explicit simulation timestamps, and the tracer appends one tuple per
event. Nothing is scheduled on the simulation kernel, so recording a
trace cannot perturb a seeded run — the on/off parity test relies on
this.

Two export formats:

* **JSONL** — one JSON object per line, easy to grep/stream.
* **Chrome ``trace_event``** — the ``{"traceEvents": [...]}`` JSON that
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_ open
  directly. Spans become complete (``"ph": "X"``) events; instants
  become ``"ph": "i"`` events. Virtual-time seconds are exported as
  microseconds (the unit both UIs assume), node ids map to ``pid`` and
  coordinator/actor ids to ``tid``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Tuple, Union

__all__ = ["Tracer", "NullTracer", "NULL_TRACER", "TraceEvent"]

# (phase, category, name, ts, dur, pid, tid, args)
TraceEvent = Tuple[str, str, str, float, float, int, int, Optional[Dict[str, Any]]]

_SPAN = "X"
_INSTANT = "i"


class Tracer:
    """Appends structured span/instant tuples; exports Chrome traces."""

    enabled = True

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    # -- recording -----------------------------------------------------------

    def span(
        self,
        category: str,
        name: str,
        start: float,
        end: float,
        pid: int = 0,
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a completed span over virtual time [start, end]."""
        self.events.append((_SPAN, category, name, start, end - start, pid, tid, args))

    def instant(
        self,
        category: str,
        name: str,
        ts: float,
        pid: int = 0,
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a point-in-time event at virtual time *ts*."""
        self.events.append((_INSTANT, category, name, ts, 0.0, pid, tid, args))

    # -- queries (used by tests and reports) ---------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def spans(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All span events, optionally filtered by category."""
        return [
            event
            for event in self.events
            if event[0] == _SPAN and (category is None or event[1] == category)
        ]

    def instants(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All instant events, optionally filtered by category."""
        return [
            event
            for event in self.events
            if event[0] == _INSTANT and (category is None or event[1] == category)
        ]

    # -- export ----------------------------------------------------------------

    @staticmethod
    def _chrome_event(event: TraceEvent) -> Dict[str, Any]:
        phase, category, name, ts, dur, pid, tid, args = event
        out: Dict[str, Any] = {
            "ph": phase,
            "cat": category,
            "name": name,
            # Chrome trace timestamps are microseconds.
            "ts": ts * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if phase == _SPAN:
            out["dur"] = dur * 1e6
        else:
            out["s"] = "t"  # instant scope: thread
        if args:
            out["args"] = args
        return out

    def to_chrome(self) -> Dict[str, Any]:
        """The Chrome trace_event JSON object (not yet serialized)."""
        return {
            "traceEvents": [self._chrome_event(event) for event in self.events],
            "displayTimeUnit": "ms",
            "otherData": {"clock": "virtual-seconds-as-us"},
        }

    def export_chrome(self, path_or_file: Union[str, IO[str]]) -> None:
        """Write the Chrome trace_event JSON to *path_or_file*."""
        payload = self.to_chrome()
        if hasattr(path_or_file, "write"):
            json.dump(payload, path_or_file)
        else:
            with open(path_or_file, "w") as handle:
                json.dump(payload, handle)

    def export_jsonl(self, path_or_file: Union[str, IO[str]]) -> None:
        """Write one JSON object per event to *path_or_file*."""

        def dump(handle: IO[str]) -> None:
            for event in self.events:
                phase, category, name, ts, dur, pid, tid, args = event
                record: Dict[str, Any] = {
                    "ph": phase,
                    "cat": category,
                    "name": name,
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                }
                if phase == _SPAN:
                    record["dur"] = dur
                if args:
                    record["args"] = args
                handle.write(json.dumps(record))
                handle.write("\n")

        if hasattr(path_or_file, "write"):
            dump(path_or_file)
        else:
            with open(path_or_file, "w") as handle:
                dump(handle)


class NullTracer:
    """The disabled tracer: every recording call is a no-op.

    Instrumented code holds a tracer reference and calls it
    unconditionally; swapping in this object (rather than guarding each
    call site with an ``if``) is what keeps the disabled path at one
    no-op method call per event.
    """

    enabled = False

    __slots__ = ()
    events: List[TraceEvent] = []

    def span(self, category, name, start, end, pid=0, tid=0, args=None) -> None:
        pass

    def instant(self, category, name, ts, pid=0, tid=0, args=None) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def spans(self, category=None) -> List[TraceEvent]:
        return []

    def instants(self, category=None) -> List[TraceEvent]:
        return []

    def export_jsonl(self, path_or_file) -> None:
        pass


NULL_TRACER = NullTracer()
