"""Per-transaction flight recorder: verb-level attempt accounting.

The tracer (:mod:`repro.obs.trace`) records *what happened when*; the
flight recorder records *who paid for it*. Every attempt a protocol
engine runs becomes one :class:`FlightAttempt` carrying the identity
``(coordinator, txn_id, attempt)``, its per-phase time segments, every
RDMA verb it posted (tagged with the phase that posted it and, for
signaled verbs, the completion latency), and its lock events
(conflicts, PILL steals). The report layer (:mod:`repro.obs.report`)
derives the paper's quantitative claims from these records — §4's
"f+1 log writes per *transaction*, not per *object*" becomes a direct
count over ``write_log`` verbs per committed attempt.

**Attribution model.** The simulator is single-threaded and verbs are
posted synchronously between yields, so a per-recorder *ambient focus*
— "verbs posted right now belong to attempt X in phase P" — is exact
as long as every verb-posting segment re-asserts its focus after a
scheduling point. The engine does exactly that (one no-op-able
``trace.focus(phase)`` call per posting site); posts that arrive with
no matching focus (recovery-manager traffic, coordinator registration,
a stale focus from another compute node) are counted per-verb-kind in
``unattributed`` rather than misfiled: a post is accepted only when
the focused attempt is open *and* lives on the posting compute node.

**Never perturbs.** Recording is append-only against explicit virtual
timestamps; nothing is scheduled on the kernel. The disabled path is
the :data:`NULL_FLIGHT` singleton (same no-op-object discipline as
``NullObs``), so a seeded run is bit-identical with the recorder on,
off, or absent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Optional, Tuple

__all__ = [
    "FlightAttempt",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
]

# A verb entry is a mutable list so the completion latency can be
# filled in later without a second lookup:
# [kind, memory node, phase, post ts, latency (-1 = unsignaled/lost), ok]
# Region-addressed verbs carry a 7th "detail" element (see
# _DETAIL_ARGS) so trace consumers — the race detector in
# repro.analysis.races — can attribute the access to a memory region.
VerbEntry = List[Any]

# kind -> how many leading verb args form the region-addressing detail
# (cas_lock: table, slot, expected, desired; write_lock: table, slot,
# word; write_object: table, slot, version).
_DETAIL_ARGS = {"cas_lock": 4, "write_lock": 3, "write_object": 3}

# Latency placeholder for verbs whose completion never reported back
# (unsignaled posts, or the attempt's node died first).
UNSIGNALED = -1.0


class FlightAttempt:
    """One protocol-engine attempt: identity, phases, verbs, locks."""

    __slots__ = (
        "protocol",
        "node_id",
        "coord_id",
        "txn_id",
        "attempt",
        "start",
        "end",
        "outcome",
        "writes",
        "phase",
        "phases",
        "verbs",
        "locks",
        "open",
    )

    def __init__(
        self,
        protocol: str,
        node_id: int,
        coord_id: int,
        txn_id: int,
        attempt: int,
        start: float,
    ) -> None:
        self.protocol = protocol
        self.node_id = node_id
        self.coord_id = coord_id
        self.txn_id = txn_id
        self.attempt = attempt
        self.start = start
        self.end = start
        # None while in flight; "commit", "abort:<reason>", ... when
        # closed. Attempts still open at report time were killed
        # mid-protocol (a crash) and are reported as "crashed".
        self.outcome: Optional[str] = None
        self.writes = 0
        self.phase = "execute"
        self.phases: List[Tuple[str, float, float]] = []
        self.verbs: List[VerbEntry] = []
        self.locks: List[Tuple[str, int, int, float]] = []
        self.open = True

    # -- derived views (used by the report layer and tests) ------------------

    def verb_counts(self) -> Dict[str, int]:
        """Posted-verb count by kind."""
        counts: Dict[str, int] = {}
        for entry in self.verbs:
            counts[entry[0]] = counts.get(entry[0], 0) + 1
        return counts

    def log_writes(self) -> int:
        """``write_log`` posts — the §4 accounting unit."""
        return sum(1 for entry in self.verbs if entry[0] == "write_log")

    def to_json(self) -> Dict[str, Any]:
        """JSONL-exportable dict (``ph: "flight"`` discriminates)."""
        return {
            "ph": "flight",
            "protocol": self.protocol,
            "node": self.node_id,
            "coord": self.coord_id,
            "txn": self.txn_id,
            "attempt": self.attempt,
            "start": self.start,
            "end": self.end,
            "outcome": self.outcome,
            "writes": self.writes,
            "phases": [list(segment) for segment in self.phases],
            "verbs": [list(entry) for entry in self.verbs],
            "locks": [list(event) for event in self.locks],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "FlightAttempt":
        """Rebuild an attempt from its :meth:`to_json` dict."""
        attempt = cls(
            payload["protocol"],
            payload["node"],
            payload["coord"],
            payload["txn"],
            payload["attempt"],
            payload["start"],
        )
        attempt.end = payload["end"]
        attempt.outcome = payload["outcome"]
        attempt.writes = payload["writes"]
        attempt.phases = [tuple(segment) for segment in payload["phases"]]
        attempt.verbs = [list(entry) for entry in payload["verbs"]]
        attempt.locks = [tuple(event) for event in payload["locks"]]
        attempt.open = payload["outcome"] is None
        return attempt


class FlightRecorder:
    """Collects :class:`FlightAttempt` records via ambient focus.

    ``max_flights`` bounds resident memory for long runs (the open-loop
    load engine records millions of attempts otherwise): when set, the
    oldest *closed* attempts are evicted as new ones begin, keeping at
    most ``max_flights`` resident. Open (in-flight) attempts are never
    evicted — a crash report must still see what was killed mid-air —
    and ``evicted`` counts what was dropped so report totals can say
    "of N attempts, M retained".
    """

    enabled = True

    __slots__ = ("attempts", "unattributed", "max_flights", "evicted", "_current")

    def __init__(self, max_flights: Optional[int] = None) -> None:
        if max_flights is not None and max_flights < 1:
            raise ValueError(f"max_flights must be >= 1, got {max_flights}")
        self.attempts: List[FlightAttempt] = []
        # Posts with no valid focus, counted per verb kind — nonzero
        # entries here are system traffic (recovery, registration),
        # not lost transaction verbs.
        self.unattributed: Dict[str, int] = {}
        self.max_flights = max_flights
        self.evicted = 0
        self._current: Optional[FlightAttempt] = None

    # -- attempt lifecycle (driven through TxnTrace) -------------------------

    def begin(
        self,
        protocol: str,
        node_id: int,
        coord_id: int,
        txn_id: int,
        attempt: int,
        now: float,
    ) -> FlightAttempt:
        """Open a record for one attempt and focus it (phase "execute")."""
        record = FlightAttempt(protocol, node_id, coord_id, txn_id, attempt, now)
        self.attempts.append(record)
        self._current = record
        if self.max_flights is not None and len(self.attempts) > self.max_flights:
            self._evict_closed()
        return record

    def _evict_closed(self) -> None:
        """Drop oldest closed attempts until back within ``max_flights``."""
        attempts = self.attempts
        index = 0
        while len(attempts) > self.max_flights and index < len(attempts):
            if attempts[index].open:
                index += 1
                continue
            del attempts[index]
            self.evicted += 1

    def focus(self, record: Optional[FlightAttempt], phase: Optional[str] = None) -> None:
        """Re-assert ambient attribution after a scheduling point."""
        if record is None or not record.open:
            return
        self._current = record
        if phase is not None:
            record.phase = phase

    def mark(
        self, record: Optional[FlightAttempt], name: str, start: float, end: float
    ) -> None:
        """Close one phase time segment on *record*."""
        if record is not None:
            record.phases.append((name, start, end))

    def close(
        self,
        record: Optional[FlightAttempt],
        outcome: str,
        now: float,
        writes: int = 0,
    ) -> None:
        """Seal the record (first close wins; later calls are ignored)."""
        if record is None or not record.open:
            return
        record.open = False
        record.outcome = outcome
        record.end = now
        record.writes = writes
        if self._current is record:
            self._current = None

    def on_lock(
        self,
        record: Optional[FlightAttempt],
        event: str,
        table_id: int,
        slot: int,
        now: float,
    ) -> None:
        """Record a lock event (conflict / steal / steal_lost / read_locked)."""
        if record is not None and record.open:
            record.locks.append((event, table_id, slot, now))

    # -- QP hooks (hot path: once per posted / completed verb) ---------------

    def on_post(
        self,
        kind: str,
        compute_id: int,
        node_id: int,
        now: float,
        args: Tuple = (),
    ) -> Optional[VerbEntry]:
        """Attribute one posted verb to the focused attempt.

        Returns the verb entry as a completion token, or None when no
        open attempt on *compute_id* holds the focus. For
        region-addressed verbs, *args* contributes the address detail
        the race detector keys on.
        """
        record = self._current
        if record is None or not record.open or record.node_id != compute_id:
            self.unattributed[kind] = self.unattributed.get(kind, 0) + 1
            return None
        entry: VerbEntry = [kind, node_id, record.phase, now, UNSIGNALED, True]
        width = _DETAIL_ARGS.get(kind)
        if width is not None and args:
            entry.append(list(args[:width]))
        record.verbs.append(entry)
        return entry

    def on_complete(
        self, token: Optional[VerbEntry], latency: float, ok: bool
    ) -> None:
        """Fill a posted verb's completion latency/status in place."""
        if token is not None:
            token[4] = latency
            token[5] = ok

    # -- queries / export ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.attempts)

    def closed(self) -> List[FlightAttempt]:
        """Attempts that ran to a decision (commit or abort)."""
        return [record for record in self.attempts if not record.open]

    def committed(self) -> List[FlightAttempt]:
        """Attempts that committed."""
        return [
            record
            for record in self.attempts
            if record.outcome is not None and record.outcome.startswith("commit")
        ]

    def export_jsonl(self, handle: IO[str]) -> None:
        """Append one JSON object per attempt to an open text handle."""
        for record in self.attempts:
            handle.write(json.dumps(record.to_json()))
            handle.write("\n")


class NullFlightRecorder:
    """Disabled flight recorder: every hook is a slotted no-op."""

    enabled = False

    __slots__ = ()
    attempts: List[FlightAttempt] = []
    unattributed: Dict[str, int] = {}
    max_flights: Optional[int] = None
    evicted = 0

    def begin(self, protocol, node_id, coord_id, txn_id, attempt, now):
        return None

    def focus(self, record, phase=None) -> None:
        pass

    def mark(self, record, name, start, end) -> None:
        pass

    def close(self, record, outcome, now, writes=0) -> None:
        pass

    def on_lock(self, record, event, table_id, slot, now) -> None:
        pass

    def on_post(self, kind, compute_id, node_id, now, args=()):
        return None

    def on_complete(self, token, latency, ok) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def closed(self) -> List[FlightAttempt]:
        return []

    def committed(self) -> List[FlightAttempt]:
        return []

    def export_jsonl(self, handle) -> None:
        pass


NULL_FLIGHT = NullFlightRecorder()
