"""Directed litmus scenarios: deterministic replays of the Table 1 bugs.

The random-crash campaigns (:mod:`repro.litmus.runner`) surface the
easy-to-hit online bugs; the recovery-path bugs need several rare
events to line up (a logged-then-aborted transaction, a later commit
to the same object, a crash before the stale log is overwritten).
These scenarios stage exactly that schedule through the *real*
protocol, failure detector, and recovery manager — nothing is mocked —
so they both demonstrate each bug deterministically and verify the
fix. They are the reproduction's analogue of the paper's minimized
bug replays (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.kvs.catalog import TableSpec
from repro.protocol.types import BugFlags
from repro.workloads.base import Workload

__all__ = [
    "ScenarioReport",
    "run_lost_decision_scenario",
    "run_log_without_lock_scenario",
    "run_missing_insert_log_scenario",
    "run_complicit_abort_scenario",
]


@dataclass
class ScenarioReport:
    """What a directed scenario observed."""

    name: str
    protocol: str
    consistent: bool
    values: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""

    def summary(self) -> str:
        status = "consistent" if self.consistent else "CORRUPTED"
        rendered = ", ".join(f"{k}={v!r}" for k, v in self.values.items())
        return f"{self.name:24s} {self.protocol:10s} {status:10s} ({rendered})"


class _ScenarioWorkload(Workload):
    name = "scenario"

    def __init__(self, initial: Dict[str, Any]) -> None:
        self.initial = initial

    def create_schema(self, catalog) -> None:
        catalog.add_table(
            TableSpec(table_id=0, name="lit", max_keys=64, value_size=8)
        )

    def load(self, catalog, memory_nodes, rng) -> None:
        for key, value in self.initial.items():
            slot = catalog.slot_for(0, key)
            if value is None:
                continue
            for node_id in catalog.replicas(0, slot):
                memory_nodes[node_id].load_slot(0, slot, value)

    def next_transaction(self, rng):  # pragma: no cover - driven directly
        raise RuntimeError("scenario coordinators are driven directly")


def _build(protocol: str, bugs: Optional[BugFlags], initial: Dict[str, Any], seed: int):
    config = ClusterConfig(
        memory_nodes=2,
        compute_nodes=2,
        coordinators_per_node=2,
        replication_degree=2,
        protocol=protocol,
        bugs=bugs,
        seed=seed,
        fd_timeout=0.5e-3,
        fd_heartbeat_interval=0.1e-3,
        fd_check_interval=0.05e-3,
        drain_delay=0.2e-3,
        # One-shot transactions: a retried attempt would overwrite the
        # staged state the scenarios depend on.
        abandon_on_conflict=True,
    )
    config.network.jitter = 0.0  # fully deterministic schedules
    cluster = Cluster(config, _ScenarioWorkload(initial))
    cluster.start(run_coordinators=False)
    return cluster


def _submit_at(cluster, coordinator, logic, when: float):
    """Start one transaction at absolute virtual time *when*."""
    sim = cluster.sim

    def driver():
        if when > sim.now:
            yield sim.timeout(when - sim.now)
        outcome = yield from coordinator.run_transaction(logic)
        return outcome

    process = sim.process(driver(), name=f"scenario-c{coordinator.coord_id}")
    coordinator.process = process
    return process


def _read_values(cluster, keys: List[str]) -> Dict[str, Any]:
    catalog = cluster.catalog
    values = {}
    for key in keys:
        slot = catalog.slot_for(0, key)
        primary = catalog.primary(0, slot)
        entry = cluster.memory_nodes[primary].slot(0, slot)
        values[key] = entry.value if entry.present else None
    return values


# ---------------------------------------------------------------------------
# Lost Decision (§3.1.3, Table 1 / Litmus 3)
# ---------------------------------------------------------------------------


def run_lost_decision_scenario(
    protocol: str = "baseline",
    bugs: Optional[BugFlags] = None,
    seed: int = 1,
) -> ScenarioReport:
    """T1 logs writes to X and Y, aborts at validation, its node later
    crashes; meanwhile T2 committed an increment of X (and wrote Z).

    Buggy FORD leaves T1's log in place; recovery sees X "updated"
    (T2's version matches T1's logged new-version) but Y untouched, so
    it *rolls X back*, erasing T2's committed write: ``X < Z``.
    """
    cluster = _build(protocol, bugs, {"A": 0, "X": 0, "Y": 0, "Z": 0}, seed)
    sim = cluster.sim
    node0, node1 = cluster.compute_nodes[0], cluster.compute_nodes[1]
    t1_coord = node0.coordinators[0]
    helper = node1.coordinators[0]
    t2_coord = node1.coordinators[1]

    def t1(tx):
        # Read A into the read-set, then write X and Y. A's version
        # changes underneath (the helper), so validation fails *after*
        # the undo logs for X and Y were posted.
        _a = yield from tx.read("lit", "A")
        x = yield from tx.read("lit", "X")
        yield sim.timeout(6e-6)  # hold the window open
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Y", (x or 0) + 1)
        return None

    def bump_a(tx):
        tx.write("lit", "A", 1)
        return None

    def t2(tx):
        x = yield from tx.read("lit", "X")
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Z", (x or 0) + 1)
        return None

    p_t1 = _submit_at(cluster, t1_coord, t1, when=1e-6)
    p_helper = _submit_at(cluster, helper, bump_a, when=4e-6)
    sim.run(until=200e-6)

    p_t2 = _submit_at(cluster, t2_coord, t2, when=sim.now)
    sim.run(until=sim.now + 200e-6)

    # T1's node crashes; recovery processes whatever logs remain.
    node0.crash()
    sim.run(until=sim.now + 30e-3)

    values = _read_values(cluster, ["X", "Y", "Z"])
    t1_aborted = p_t1.triggered and not p_t1.value.committed
    t2_committed = p_t2.triggered and p_t2.value.committed
    x, z = values["X"] or 0, values["Z"] or 0
    consistent = x >= z and (not t2_committed or x >= 1)
    return ScenarioReport(
        name="lost-decision",
        protocol=protocol,
        consistent=consistent,
        values=values,
        notes=(
            f"t1_aborted={t1_aborted} helper={p_helper.value.committed} "
            f"t2_committed={t2_committed}"
        ),
    )


# ---------------------------------------------------------------------------
# Logging without locking (Table 1 / Litmus 3)
# ---------------------------------------------------------------------------


def run_log_without_lock_scenario(
    protocol: str = "baseline",
    bugs: Optional[BugFlags] = None,
    seed: int = 1,
) -> ScenarioReport:
    """T1 posts a speculative undo log for X before its CAS outcome is
    known; the CAS fails (a holder has X), T1's node crashes before the
    abort can truncate, and the holder commits X. Recovery treats the
    speculative log as real: X appears "updated", Y does not, so it
    rolls X back over the holder's committed write.
    """
    cluster = _build(protocol, bugs, {"X": 0, "Y": 0, "Z": 0}, seed)
    sim = cluster.sim
    node0, node1 = cluster.compute_nodes[0], cluster.compute_nodes[1]
    t1_coord = node0.coordinators[0]
    holder_coord = node1.coordinators[0]

    def holder(tx):
        # Locks X just after T1's read, holds it across T1's CAS, then
        # commits an increment (old version 1 -> 2).
        x = yield from tx.read_for_update("lit", "X")
        yield sim.timeout(20e-6)
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Z", (x or 0) + 1)
        return None

    def t1(tx):
        # Reads X while it is still unlocked (arming expected_version
        # for the speculative log), waits for the holder to grab the
        # lock, then writes X and Y: the speculative undo log for X is
        # posted even though X's CAS fails on the holder.
        x = yield from tx.read("lit", "X")
        yield sim.timeout(6e-6)
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Y", (x or 0) + 1)
        yield sim.timeout(1e-3)  # crash lands before the abort path
        return None

    p_t1 = _submit_at(cluster, t1_coord, t1, when=1e-6)
    p_holder = _submit_at(cluster, holder_coord, holder, when=3e-6)
    # Crash T1's node while its speculative log is posted but before
    # its abort truncates anything.
    cluster.injector.crash_at(node0, when=16e-6)
    sim.run(until=50e-3)

    values = _read_values(cluster, ["X", "Y", "Z"])
    holder_committed = p_holder.triggered and p_holder.value.committed
    x, z = values["X"] or 0, values["Z"] or 0
    consistent = (not holder_committed) or (x >= 1 and x >= z)
    return ScenarioReport(
        name="log-without-lock",
        protocol=protocol,
        consistent=consistent,
        values=values,
        notes=f"holder_committed={holder_committed} t1_done={p_t1.triggered}",
    )


# ---------------------------------------------------------------------------
# Missing Actions: inserts not logged (Table 1 / Litmus 1 variant)
# ---------------------------------------------------------------------------


def run_missing_insert_log_scenario(
    protocol: str = "baseline",
    bugs: Optional[BugFlags] = None,
    seed: int = 1,
) -> ScenarioReport:
    """An inserter crashes between applying its two inserts. Without
    undo logs for inserts, recovery cannot roll the first insert back:
    X ends up present while Y stays absent."""
    cluster = _build(protocol, bugs, {"X": None, "Y": None}, seed)
    sim = cluster.sim
    node0 = cluster.compute_nodes[0]
    inserter = node0.coordinators[0]

    def insert_both(tx):
        tx.insert("lit", "X", 1)
        tx.insert("lit", "Y", 1)
        return None

    # Crash exactly between the two commit-phase apply posts.
    cluster.injector.crash_on_point(node0.node_id, "commit_posted", nth=1)
    _submit_at(cluster, inserter, insert_both, when=1e-6)
    sim.run(until=50e-3)

    values = _read_values(cluster, ["X", "Y"])
    consistent = (values["X"] is None) == (values["Y"] is None)
    return ScenarioReport(
        name="missing-insert-log",
        protocol=protocol,
        consistent=consistent,
        values=values,
    )


# ---------------------------------------------------------------------------
# Complicit Aborts (Table 1 / Litmus 1)
# ---------------------------------------------------------------------------


def run_complicit_abort_scenario(
    protocol: str = "pandora",
    bugs: Optional[BugFlags] = None,
    seed: int = 1,
) -> ScenarioReport:
    """T-victim locks X and Y; T-aborter conflicts and aborts, wrongly
    releasing the victim's locks; T-exploiter then locks X, reads the
    pre-victim value, and commits — a lost update on the X counter.
    """
    cluster = _build(protocol, bugs, {"X": 0, "Y": 0}, seed)
    sim = cluster.sim
    node0, node1 = cluster.compute_nodes[0], cluster.compute_nodes[1]
    victim = node0.coordinators[0]
    aborter = node1.coordinators[0]
    exploiter = node1.coordinators[1]

    def victim_txn(tx):
        x = yield from tx.read_for_update("lit", "X")
        # Hold the locks long enough for the aborter to "free" them
        # and the exploiter to slip in.
        yield sim.timeout(30e-6)
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Y", (x or 0) + 1)
        return None

    def aborter_txn(tx):
        x = yield from tx.read_for_update("lit", "X")  # conflicts -> abort
        tx.write("lit", "X", (x or 0) + 1)
        tx.write("lit", "Y", (x or 0) + 1)
        return None

    def exploiter_txn(tx):
        x = yield from tx.read_for_update("lit", "X")
        tx.write("lit", "X", (x or 0) + 1)
        return None

    p_victim = _submit_at(cluster, victim, victim_txn, when=1e-6)
    p_aborter = _submit_at(cluster, aborter, aborter_txn, when=8e-6)
    p_exploiter = _submit_at(cluster, exploiter, exploiter_txn, when=16e-6)
    sim.run(until=5e-3)

    values = _read_values(cluster, ["X", "Y"])
    committed = sum(
        1
        for process in (p_victim, p_aborter, p_exploiter)
        if process.triggered and process.value.committed
    )
    # Serializably, X must count every committed increment.
    consistent = (values["X"] or 0) >= committed
    return ScenarioReport(
        name="complicit-abort",
        protocol=protocol,
        consistent=consistent,
        values={**values, "committed_increments": committed},
    )
