"""The litmus runner: rounds of concurrent litmus transactions with
random crash injection, recovery, and post-state assertions (§5).

Each round uses a *fresh* set of keys (no cross-round interference),
launches every writer of the spec from coordinators spread across the
compute nodes, optionally crashes one compute node at a random protocol
step, waits for detection + recovery to finish, restarts the node, and
finally runs a read-only assertion transaction over the round's keys.

Violations of the spec's application-observable assertion are recorded
with the round's seed and crash location so they replay exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.faults.injector import CrashPlan
from repro.kvs.catalog import TableSpec
from repro.litmus.specs import ABSENT, LitmusSpec
from repro.protocol.types import BugFlags
from repro.workloads.base import Workload

__all__ = ["LitmusReport", "LitmusRunner"]

# Protocol steps at which the injector may kill the victim node.
CRASH_POINTS = [
    "lock_posted",
    "locked",
    "execution_done",
    "locks_held",
    "log_posted",
    "decision",
    "commit_posted",
    "applied",
    "unlocked",
    "abort_unlocked",
]


@dataclass
class Violation:
    round_index: int
    values: Dict[str, Any]
    crash_point: Optional[str]
    description: str


@dataclass
class LitmusReport:
    """Outcome of a litmus campaign."""

    spec_name: str
    protocol: str
    rounds: int = 0
    crashes_injected: int = 0
    commits: int = 0
    aborts: int = 0
    unknown: int = 0  # transactions on crashed coordinators
    violations: List[Violation] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({len(self.violations)} violations)"
        return (
            f"{self.spec_name:18s} {self.protocol:10s} rounds={self.rounds:4d} "
            f"crashes={self.crashes_injected:4d} commits={self.commits:5d} "
            f"aborts={self.aborts:4d} unknown={self.unknown:3d}  {status}"
        )


class _LitmusWorkload(Workload):
    """Pre-provisions one table with every round's keys."""

    name = "litmus"

    def __init__(self, spec: LitmusSpec, rounds: int) -> None:
        self.spec = spec
        self.rounds = rounds

    def create_schema(self, catalog) -> None:
        catalog.add_table(
            TableSpec(
                table_id=0,
                name="lit",
                max_keys=self.rounds * len(self.spec.keys) + 8,
                value_size=8,
            )
        )

    def load(self, catalog, memory_nodes, rng) -> None:
        table_id = 0
        for round_index in range(self.rounds):
            for key_name in self.spec.keys:
                key = self._key(round_index, key_name)
                initial = self.spec.initial[key_name]
                slot = catalog.slot_for(table_id, key)
                if initial is ABSENT:
                    continue  # slot registered, object absent
                for node_id in catalog.replicas(table_id, slot):
                    memory_nodes[node_id].load_slot(table_id, slot, initial)

    @staticmethod
    def _key(round_index: int, key_name: str) -> str:
        return f"r{round_index}-{key_name}"

    def next_transaction(self, rng):  # pragma: no cover - runner-driven
        raise RuntimeError("litmus coordinators are driven by the runner")


class LitmusRunner:
    """Runs one spec against one protocol configuration."""

    def __init__(
        self,
        spec: LitmusSpec,
        protocol: str = "pandora",
        bugs: Optional[BugFlags] = None,
        rounds: int = 50,
        crash_probability: float = 0.0,
        seed: int = 0,
        compute_nodes: int = 2,
        coordinators_per_node: int = 4,
        jitter: float = 0.4e-6,
        loss_probability: float = 0.0,
        copies: int = 2,
        max_start_offset: float = 8e-6,
        crash_points: Optional[List[str]] = None,
        retry_writers: bool = True,
        sanitize: bool = False,
        legacy_kernel: bool = False,
        legacy_engine: bool = False,
        first_coord_id: int = 0,
    ) -> None:
        self.spec = spec
        # One-shot writers match Figure 5 exactly (each litmus txn runs
        # once); retried writers add interleaving diversity.
        self.retry_writers = retry_writers
        self.rounds = rounds
        self.copies = copies
        self.max_start_offset = max_start_offset
        self.crash_points = crash_points if crash_points is not None else CRASH_POINTS
        self.crash_probability = crash_probability
        self.rng = random.Random(seed)
        self.workload = _LitmusWorkload(spec, rounds)
        config = ClusterConfig(
            memory_nodes=2,
            compute_nodes=compute_nodes,
            coordinators_per_node=coordinators_per_node,
            replication_degree=2,
            protocol=protocol,
            bugs=bugs,
            seed=seed,
            # Short detection so rounds stay compact; the detection
            # delay itself is not what litmus validates.
            fd_timeout=0.5e-3,
            fd_heartbeat_interval=0.1e-3,
            fd_check_interval=0.05e-3,
            drain_delay=0.2e-3,
            abandon_on_conflict=not retry_writers,
            sanitize=sanitize,
            legacy_kernel=legacy_kernel,
            legacy_engine=legacy_engine,
            first_coord_id=first_coord_id,
        )
        config.network.jitter = jitter
        config.network.loss_probability = loss_probability
        self.cluster = Cluster(config, self.workload)
        self.report = LitmusReport(spec_name=spec.name, protocol=protocol)
        # (round_index, keymap, outcomes) for the final sweep.
        self._completed_rounds: List = []

    # -- driving ------------------------------------------------------------

    def run(self) -> LitmusReport:
        self.cluster.start(run_coordinators=False)
        for round_index in range(self.rounds):
            self._run_round(round_index)
        self._final_sweep()
        return self.report

    def _final_sweep(self) -> None:
        """Re-verify every round's assertion at campaign end.

        Recovery after a *later* crash can corrupt an *earlier* round's
        keys (e.g. FORD's lost-decision bug rolls back a committed
        write long after that round's assertion passed). The sweep
        catches such retroactive corruption.
        """
        for round_index, keymap, outcomes in self._completed_rounds:
            values = self._read_assertion_state(keymap)
            if values is None:
                continue
            if not self.spec.check(values, outcomes):
                violation = Violation(
                    round_index=round_index,
                    values=values,
                    crash_point="post-hoc (final sweep)",
                    description=self.spec.describe_violation(values),
                )
                already = any(
                    existing.round_index == round_index
                    for existing in self.report.violations
                )
                if not already:
                    self.report.violations.append(violation)

    def _live_coordinators(self) -> List:
        coordinators = []
        for node in self.cluster.compute_nodes.values():
            if node.alive:
                coordinators.extend(node.coordinators)
        return coordinators

    def _run_round(self, round_index: int) -> None:
        sim = self.cluster.sim
        spec = self.spec
        keymap = {
            name: _LitmusWorkload._key(round_index, name) for name in spec.keys
        }

        coordinators = self._live_coordinators()
        if not coordinators:
            raise RuntimeError("no live coordinators left for litmus round")
        self.rng.shuffle(coordinators)

        crash_point: Optional[str] = None
        victim = None
        if self.crash_probability and self.rng.random() < self.crash_probability:
            crash_point = self.rng.choice(self.crash_points)
            victim = self.cluster.compute_nodes[
                self.rng.randrange(len(self.cluster.compute_nodes))
            ]
            if victim.alive:
                self.cluster.injector.add_plan(
                    CrashPlan(
                        node_id=victim.node_id,
                        point=crash_point,
                        nth=self.rng.randint(1, 3),
                    )
                )
                self.report.crashes_injected += 1

        # Launch every writer (x copies) from distinct coordinators,
        # with small random start offsets to diversify interleavings.
        processes = []
        launch_specs = [
            (index, writer)
            for writer in spec.writers
            for index in range(self.copies)
        ]
        # Mix tight (sub-RTT) and loose start offsets across rounds so
        # both racy and pipelined interleavings get exercised.
        offset_scale = self.rng.choice([0.0, 0.5e-6, 2e-6, self.max_start_offset])
        for launch_index, (_copy, writer) in enumerate(launch_specs):
            coordinator = coordinators[launch_index % len(coordinators)]
            logic = writer(keymap)
            offset = self.rng.random() * offset_scale

            def delayed(coordinator=coordinator, logic=logic, offset=offset):
                yield sim.timeout(offset)
                outcome = yield from coordinator.run_transaction(logic)
                return outcome

            process = sim.process(
                delayed(), name=f"lit-{round_index}-{launch_index}"
            )
            coordinator.process = process  # so node.crash() kills it
            processes.append(process)

        # Let the round and any recovery complete.
        deadline = sim.now + 50e-3
        while sim.now < deadline:
            sim.run(until=min(deadline, sim.now + 1e-3))
            settled = all(process.triggered for process in processes)
            recovering = bool(self.cluster.recovery._in_progress)
            if settled and not recovering:
                break
        # Margin for notification deliveries still in flight.
        sim.run(until=sim.now + 0.5e-3)

        outcomes = []
        for process in processes:
            try:
                outcome = process.value
            except Exception:  # noqa: BLE001 - killed/crashed txns
                outcomes.append(None)
                self.report.unknown += 1
                continue
            outcomes.append(outcome)
            if outcome.committed:
                self.report.commits += 1
            else:
                self.report.aborts += 1

        if victim is not None:
            self.cluster.injector.clear(victim.node_id)
            if not victim.alive:
                self.cluster.restart_compute(victim)
                sim.run(until=sim.now + 0.5e-3)

        values = self._read_assertion_state(keymap)
        self.report.rounds += 1
        self._completed_rounds.append((round_index, keymap, outcomes))
        if values is not None and not spec.check(values, outcomes):
            self.report.violations.append(
                Violation(
                    round_index=round_index,
                    values=values,
                    crash_point=crash_point,
                    description=spec.describe_violation(values),
                )
            )

    def _read_assertion_state(self, keymap: Dict[str, str]) -> Optional[Dict]:
        """Run the spec's read-only assertion transaction."""
        sim = self.cluster.sim
        key_names = list(keymap)

        def assertion_logic(tx):
            values = {}
            for name in key_names:
                values[name] = yield from tx.read("lit", keymap[name])
            return values

        candidates = self._live_coordinators() * 2  # two passes
        for coordinator in candidates:
            process = sim.process(
                coordinator.run_transaction(assertion_logic), name="lit-assert"
            )
            coordinator.process = process
            sim.run(until=sim.now + 5e-3)
            if process.triggered:
                try:
                    outcome = process.value
                except Exception:  # noqa: BLE001
                    continue
                if outcome.committed:
                    return outcome.value
        return None
