"""History-based random fuzzing — the approach litmus testing refines.

§5 contrasts two validation styles: Adya-style *history* checking
(run random transactions, collect their read/write footprints, decide
the isolation level from the dependency graph — Jepsen et al.) and the
paper's lightweight *application-observable-state* litmus tests. This
module implements the former so the two can cross-check each other:

* random read / read-modify-write / blind-write / insert / delete
  transactions over a small keyspace,
* optional random compute crashes (with recovery running underneath),
* every committed transaction's footprint collected through
  ``Coordinator.history_sink``,
* the final history checked for strict serializability with the
  precedence-graph checker.

A protocol that passes the litmus suite but produced a cyclic history
here (or vice versa) would indicate a hole in one of the validators.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.cluster.builder import Cluster
from repro.cluster.config import ClusterConfig
from repro.kvs.catalog import TableSpec
from repro.litmus.checker import SerializabilityChecker
from repro.protocol.types import BugFlags
from repro.workloads.base import Workload

__all__ = ["FuzzReport", "HistoryFuzzer"]


@dataclass
class FuzzReport:
    protocol: str
    seed: int
    committed: int = 0
    serializable: bool = True
    cycle: List = field(default_factory=list)
    crashes: int = 0

    def summary(self) -> str:
        verdict = "SERIALIZABLE" if self.serializable else "CYCLE FOUND"
        return (
            f"fuzz[{self.protocol}, seed={self.seed}] committed={self.committed} "
            f"crashes={self.crashes}  {verdict}"
        )


class _FuzzWorkload(Workload):
    """Random single- and multi-key transactions over one table."""

    name = "fuzz"

    def __init__(self, keys: int) -> None:
        self.keys = keys

    def create_schema(self, catalog) -> None:
        catalog.add_table(TableSpec(0, "kv", max_keys=self.keys, value_size=8))

    def load(self, catalog, memory_nodes, rng) -> None:
        catalog.load(memory_nodes, 0, ((key, 0) for key in range(self.keys)))

    def next_transaction(self, rng: random.Random):
        kind = rng.random()
        key_a = rng.randrange(self.keys)
        key_b = rng.randrange(self.keys)
        if kind < 0.25:

            def read_pair(tx):
                a = yield from tx.read("kv", key_a)
                b = yield from tx.read("kv", key_b)
                return (a, b)

            return read_pair
        if kind < 0.50:

            def rmw(tx):
                value = yield from tx.read_for_update("kv", key_a)
                tx.write("kv", key_a, (value or 0) + 1)
                return None

            return rmw
        if kind < 0.65:
            stamp = rng.getrandbits(20)

            def blind(tx):
                tx.write("kv", key_a, stamp)
                if key_b != key_a:
                    tx.write("kv", key_b, stamp)
                return None

            return blind
        if kind < 0.80:

            def transfer(tx):
                a = yield from tx.read_for_update("kv", key_a)
                if key_b == key_a:
                    return None
                b = yield from tx.read_for_update("kv", key_b)
                tx.write("kv", key_a, (a or 0) - 1)
                tx.write("kv", key_b, (b or 0) + 1)
                return None

            return transfer
        if kind < 0.95:
            # Read one key, write another — the write-skew shape whose
            # serializability depends on read-set validation.
            def read_a_write_b(tx):
                a = yield from tx.read("kv", key_a)
                if key_b == key_a:
                    return None
                tx.write("kv", key_b, (a or 0) + 1)
                return None

            return read_a_write_b

        def delete_or_revive(tx):
            value = yield from tx.read("kv", key_a)
            if value is None:
                tx.write("kv", key_a, 0)  # revive
            else:
                tx.delete("kv", key_a)
            return None

        return delete_or_revive


class HistoryFuzzer:
    """Runs random traffic and checks the committed history."""

    def __init__(
        self,
        protocol: str = "pandora",
        bugs: Optional[BugFlags] = None,
        keys: int = 24,
        coordinators_per_node: int = 4,
        duration: float = 15e-3,
        crash_probability_per_ms: float = 0.0,
        seed: int = 0,
        sanitize: bool = False,
        loss_probability: float = 0.0,
        jitter: Optional[float] = None,
    ) -> None:
        self.protocol = protocol
        self.duration = duration
        self.crash_probability_per_ms = crash_probability_per_ms
        self.seed = seed
        self.rng = random.Random(seed)
        config = ClusterConfig(
            protocol=protocol,
            bugs=bugs,
            compute_nodes=2,
            coordinators_per_node=coordinators_per_node,
            seed=seed,
            fd_timeout=1e-3,
            fd_heartbeat_interval=0.3e-3,
            fd_check_interval=0.15e-3,
            restart_failed_after=2e-3,
            sanitize=sanitize,
        )
        config.network.loss_probability = loss_probability
        if jitter is not None:
            config.network.jitter = jitter
        self.cluster = Cluster(config, _FuzzWorkload(keys))
        self.history: List = []
        for coordinator in self.cluster.all_coordinators():
            coordinator.history_sink = self.history

    def run(self) -> FuzzReport:
        report = FuzzReport(protocol=self.protocol, seed=self.seed)
        cluster = self.cluster
        cluster.start()
        step = 1e-3
        now = 0.0
        while now < self.duration:
            now = min(now + step, self.duration)
            cluster.run(until=now)
            # Coordinators spawned by restarts join the history too.
            for coordinator in cluster.all_coordinators():
                if coordinator.history_sink is None:
                    coordinator.history_sink = self.history
            if (
                self.crash_probability_per_ms
                and self.rng.random() < self.crash_probability_per_ms
            ):
                victims = [
                    node for node in cluster.compute_nodes.values() if node.alive
                ]
                if len(victims) > 1:  # keep at least one node alive
                    self.rng.choice(victims).crash()
                    report.crashes += 1
        # Drain any recovery still in flight.
        cluster.run(until=self.duration + 20e-3)

        checker = SerializabilityChecker(self.history)
        report.committed = len(self.history)
        report.serializable = checker.is_serializable()
        if not report.serializable:
            report.cycle = checker.find_cycle()
        return report
