"""The litmus-test specifications of Figure 5.

Each spec lists its logical keys, their initial state, the writer
transactions (as factories over a per-round key mapping), and an
application-observable assertion evaluated on the post-recovery state.
The assertions are exactly the paper's:

* **Litmus 1** (direct-write cycles): two transactions each write the
  same value to X and Y; afterwards ``X == Y`` must hold.
* **Litmus 2** (read-write cycles): T1 reads X and writes Y = x+1,
  T2 reads Y and writes X = y+1; the state ``X == Y != initial`` is
  only reachable through a dependency cycle.
* **Litmus 3** (indirect-write cycles): both transactions increment X,
  one copies it into Y, the other into Z; ``X >= Y`` and ``X >= Z``
  must always hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

__all__ = [
    "ABSENT",
    "LitmusSpec",
    "litmus1_direct_write",
    "litmus1_insert_delete",
    "litmus2_read_write",
    "litmus3_indirect_write",
    "litmus3_extended",
    "compound_litmus",
    "stretched_litmus",
    "LITMUS_SUITE",
]

#: Sentinel marking keys that must start absent (insert variants).
ABSENT = object()


@dataclass
class LitmusSpec:
    """One litmus test: writers + an application-observable assertion."""

    name: str
    description: str
    keys: List[str]
    initial: Dict[str, Any]
    # Each writer is writer(keymap) -> logic callable.
    writers: List[Callable[[Dict[str, Any]], Callable]]
    # check(values, outcomes) -> True when the state is consistent.
    check: Callable[[Dict[str, Any], List], bool] = field(repr=False, default=None)

    def describe_violation(self, values: Dict[str, Any]) -> str:
        rendered = ", ".join(f"{key}={value!r}" for key, value in values.items())
        return f"{self.name}: inconsistent state ({rendered})"


# --------------------------------------------------------------------------
# Litmus 1 — Direct-Write dependency cycles (Figure 5a/5d).
# --------------------------------------------------------------------------


def litmus1_direct_write() -> LitmusSpec:
    def writer(value):
        def factory(keymap):
            def logic(tx):
                tx.write("lit", keymap["X"], value)
                tx.write("lit", keymap["Y"], value)
                return None

            return logic

        return factory

    def check(values, _outcomes) -> bool:
        return values["X"] == values["Y"]

    return LitmusSpec(
        name="litmus-1",
        description="direct-write cycles: T1 sets X=Y=V1, T2 sets X=Y=V2; "
        "assert X == Y",
        keys=["X", "Y"],
        initial={"X": 0, "Y": 0},
        writers=[writer(1), writer(2)],
        check=check,
    )


def litmus1_insert_delete() -> LitmusSpec:
    """Litmus 1 variant with inserts/deletes (exercises insert logging)."""

    def inserter(keymap):
        def logic(tx):
            tx.insert("lit", keymap["X"], 1)
            tx.insert("lit", keymap["Y"], 1)
            return None

        return logic

    def deleter(keymap):
        def logic(tx):
            present_x = yield from tx.read("lit", keymap["X"])
            present_y = yield from tx.read("lit", keymap["Y"])
            if present_x is None or present_y is None:
                tx.abort("nothing to delete")
            tx.delete("lit", keymap["X"])
            tx.delete("lit", keymap["Y"])
            return None

        return logic

    def check(values, _outcomes) -> bool:
        # Inserts and deletes cover both keys atomically, so presence
        # must always agree.
        return (values["X"] is None) == (values["Y"] is None)

    return LitmusSpec(
        name="litmus-1-insert",
        description="direct-write cycles with insert/delete; assert "
        "X and Y are both present or both absent",
        keys=["X", "Y"],
        initial={"X": ABSENT, "Y": ABSENT},
        writers=[inserter, deleter],
        check=check,
    )


# --------------------------------------------------------------------------
# Litmus 2 — Read-Write dependency cycles (Figure 5b).
# --------------------------------------------------------------------------


def litmus2_read_write() -> LitmusSpec:
    def t1(keymap):
        def logic(tx):
            x = yield from tx.read("lit", keymap["X"])
            tx.write("lit", keymap["Y"], (x or 0) + 1)
            return None

        return logic

    def t2(keymap):
        def logic(tx):
            y = yield from tx.read("lit", keymap["Y"])
            tx.write("lit", keymap["X"], (y or 0) + 1)
            return None

        return logic

    def check(values, _outcomes) -> bool:
        # X == Y != 0 requires both transactions to have read the
        # other's pre-state: a read-write cycle.
        if values["X"] == 0 and values["Y"] == 0:
            return True
        return values["X"] != values["Y"]

    return LitmusSpec(
        name="litmus-2",
        description="read-write cycles: T1 reads X writes Y=x+1, T2 reads "
        "Y writes X=y+1; assert X != Y (unless untouched)",
        keys=["X", "Y"],
        initial={"X": 0, "Y": 0},
        writers=[t1, t2],
        check=check,
    )


# --------------------------------------------------------------------------
# Litmus 3 — Indirect-Write dependency cycles (Figure 5c).
# --------------------------------------------------------------------------


def litmus3_indirect_write() -> LitmusSpec:
    def incr_into(target):
        def factory(keymap):
            def logic(tx):
                # Exactly as in Figure 5c: a plain read of X followed
                # by writes of X and the target (read-then-write).
                x = yield from tx.read("lit", keymap["X"])
                tx.write("lit", keymap["X"], (x or 0) + 1)
                tx.write("lit", keymap[target], (x or 0) + 1)
                return None

            return logic

        return factory

    def check(values, outcomes) -> bool:
        x = values["X"] or 0
        y = values["Y"] or 0
        z = values["Z"] or 0
        if not (x >= y and x >= z):
            return False
        # Extended assertion ("additional variables", §5): X counts the
        # committed increments exactly; crashed coordinators' txns are
        # unknown, so they widen the admissible range.
        committed = sum(
            1 for outcome in outcomes if outcome is not None and outcome.committed
        )
        unknown = sum(1 for outcome in outcomes if outcome is None)
        return committed <= x <= committed + unknown

    return LitmusSpec(
        name="litmus-3",
        description="indirect-write cycles: T1 x=X, X=x+1, Y=x+1; T2 x=X, "
        "X=x+1, Z=x+1; assert X >= Y, X >= Z, and X counts commits",
        keys=["X", "Y", "Z"],
        initial={"X": 0, "Y": 0, "Z": 0},
        writers=[incr_into("Y"), incr_into("Z")],
        check=check,
    )


def litmus3_extended() -> LitmusSpec:
    """Litmus 3 extended with a ballast read ("additional variables").

    T1 also *reads* ballast key B, which T2 blindly overwrites. B gives
    T1 a validated read-set member, so T1 can abort at validation —
    *after* its undo logs for X and Y were written. Those
    logged-then-aborted transactions are precisely the state FORD's
    recovery misinterprets (the "Lost Decision" bug, §3.1.3): a later
    crash makes recovery roll back X even though another transaction
    committed it, observable as ``X < Z``.
    """

    def t1(keymap):
        def logic(tx):
            x = yield from tx.read("lit", keymap["X"])
            _ballast = yield from tx.read("lit", keymap["B"])
            tx.write("lit", keymap["X"], (x or 0) + 1)
            tx.write("lit", keymap["Y"], (x or 0) + 1)
            return None

        return logic

    def t2(keymap):
        def logic(tx):
            x = yield from tx.read("lit", keymap["X"])
            tx.write("lit", keymap["X"], (x or 0) + 1)
            tx.write("lit", keymap["Z"], (x or 0) + 1)
            tx.write("lit", keymap["B"], (x or 0) + 100)
            return None

        return logic

    def check(values, outcomes) -> bool:
        x = values["X"] or 0
        y = values["Y"] or 0
        z = values["Z"] or 0
        if not (x >= y and x >= z):
            return False
        committed = sum(
            1 for outcome in outcomes if outcome is not None and outcome.committed
        )
        unknown = sum(1 for outcome in outcomes if outcome is None)
        return committed <= x <= committed + unknown

    return LitmusSpec(
        name="litmus-3-ext",
        description="indirect-write cycles with a validated ballast read; "
        "assert X >= Y, X >= Z, and X counts commits",
        keys=["X", "Y", "Z", "B"],
        initial={"X": 0, "Y": 0, "Z": 0, "B": 0},
        writers=[t1, t2],
        check=check,
    )


# --------------------------------------------------------------------------
# Compound test — stretched/combined basics (§5 "Compound Tests").
# --------------------------------------------------------------------------


def compound_litmus() -> LitmusSpec:
    """Litmus 1 and 3 combined over a wider key set."""

    def direct(value):
        def factory(keymap):
            def logic(tx):
                tx.write("lit", keymap["A"], value)
                tx.write("lit", keymap["B"], value)
                return None

            return logic

        return factory

    def indirect(target):
        def factory(keymap):
            def logic(tx):
                x = yield from tx.read_for_update("lit", keymap["X"])
                tx.write("lit", keymap["X"], (x or 0) + 1)
                tx.write("lit", keymap[target], (x or 0) + 1)
                _a = yield from tx.read("lit", keymap["A"])
                return None

            return logic

        return factory

    def check(values, _outcomes) -> bool:
        x = values["X"] or 0
        if values["A"] != values["B"]:
            return False
        return x >= (values["Y"] or 0) and x >= (values["Z"] or 0)

    return LitmusSpec(
        name="litmus-compound",
        description="combined direct + indirect write cycles",
        keys=["A", "B", "X", "Y", "Z"],
        initial={"A": 0, "B": 0, "X": 0, "Y": 0, "Z": 0},
        writers=[direct(1), direct(2), indirect("Y"), indirect("Z")],
        check=check,
    )


def stretched_litmus(width: int = 6) -> LitmusSpec:
    """A stretched litmus-1: direct-write cycles over *width* keys.

    §5 "Compound Tests": the basic tests were extended by stretching
    them over additional variables. Every writer assigns one value to
    the whole key vector, so any post-state mixing two values is a
    direct-write serializability violation.
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    keys = [f"K{index}" for index in range(width)]

    def writer(value):
        def factory(keymap):
            def logic(tx):
                for key in keys:
                    tx.write("lit", keymap[key], value)
                return None

            return logic

        return factory

    def check(values, _outcomes) -> bool:
        distinct = {values[key] for key in keys}
        return len(distinct) == 1

    return LitmusSpec(
        name=f"litmus-stretched-{width}",
        description=f"direct-write cycles stretched over {width} keys; "
        "assert all keys equal",
        keys=keys,
        initial={key: 0 for key in keys},
        writers=[writer(1), writer(2), writer(3)],
        check=check,
    )


def LITMUS_SUITE() -> List[LitmusSpec]:
    """The full suite, freshly instantiated."""
    return [
        litmus1_direct_write(),
        litmus1_insert_delete(),
        litmus2_read_write(),
        litmus3_indirect_write(),
        litmus3_extended(),
        compound_litmus(),
        stretched_litmus(),
    ]
