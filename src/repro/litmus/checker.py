"""Serializability checking over committed-transaction footprints.

A complement to the application-observable litmus assertions: given the
read/write version footprints of committed transactions (collected via
``Coordinator.history_sink``), build the direct serialization graph and
check it for cycles.

Edges follow Adya's dependency taxonomy:

* **wr** (reads-from): T2 read the version T1 installed → T1 → T2.
* **ww** (version order): versions of an object are installed in
  increasing order → writer of v → writer of v' for v < v'.
* **rw** (anti-dependency): T1 read version v and T2 installed v+1 →
  T1 → T2.

A cycle means the committed transactions admit no serial order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import networkx as nx

__all__ = ["SerializabilityChecker", "check_history"]

# History element layout (what Coordinator.on_commit_ack records):
# (txn_id, commit_time, reads, rmw_reads, writes)
# where reads / rmw_reads map (table, slot) -> version observed, and
# writes maps (table, slot) -> version installed.
HistoryEntry = Tuple[int, float, Dict, Dict, Dict]


class SerializabilityChecker:
    """Builds and analyses the direct serialization graph."""

    def __init__(self, history: Iterable[HistoryEntry]) -> None:
        self.history = list(history)
        self.graph = nx.DiGraph()
        self._build()

    def _build(self) -> None:
        # Writers by (object, installed version).
        installer: Dict[Tuple, int] = {}
        # All installed versions per object, with their writers.
        versions: Dict[Tuple, List[Tuple[int, int]]] = {}
        for txn_id, _time, _reads, _rmw, writes in self.history:
            self.graph.add_node(txn_id)
            for address, version in writes.items():
                installer[(address, version)] = txn_id
                versions.setdefault(address, []).append((version, txn_id))

        # ww edges: install order per object.
        for address, installed in versions.items():
            installed.sort()
            for (v1, t1), (v2, t2) in zip(installed, installed[1:]):
                if t1 != t2:
                    self.graph.add_edge(t1, t2, kind="ww")

        # wr and rw edges.
        for txn_id, _time, reads, rmw_reads, _writes in self.history:
            observed = dict(reads)
            observed.update(rmw_reads)
            for address, version in observed.items():
                writer = installer.get((address, version))
                if writer is not None and writer != txn_id:
                    self.graph.add_edge(writer, txn_id, kind="wr")
                # Anti-dependency to the *next* installed version.
                for installed_version, next_writer in versions.get(address, ()):
                    if installed_version > version:
                        if next_writer != txn_id:
                            self.graph.add_edge(txn_id, next_writer, kind="rw")
                        break

    def is_serializable(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def find_cycle(self) -> List[Tuple[int, int]]:
        """A witness cycle (edge list), or [] when serializable."""
        try:
            return [
                (u, v) for u, v, _dir in nx.find_cycle(self.graph, orientation="original")
            ]
        except nx.NetworkXNoCycle:
            return []

    def serial_order(self) -> List[int]:
        """A valid serial order of the committed transactions."""
        if not self.is_serializable():
            raise ValueError("history is not serializable")
        return list(nx.topological_sort(self.graph))


def check_history(history: Iterable[HistoryEntry]) -> bool:
    """True iff the committed history is serializable."""
    return SerializabilityChecker(history).is_serializable()
