"""End-to-end litmus-testing framework for transactional protocols (§5).

Litmus tests are small transactions crafted so that the *values* of the
objects reveal consistency violations (application-observable state,
after Crooks et al.), avoiding heavyweight history collection. Combined
with random crash injection they validate both the online protocol and
the recovery protocol end-to-end — this framework reproduces the six
FORD bugs of Table 1 and shows Pandora passing all tests.
"""

from repro.litmus.checker import SerializabilityChecker, check_history
from repro.litmus.fuzzer import FuzzReport, HistoryFuzzer
from repro.litmus.runner import LitmusReport, LitmusRunner
from repro.litmus.specs import (
    LITMUS_SUITE,
    LitmusSpec,
    litmus1_direct_write,
    litmus1_insert_delete,
    litmus2_read_write,
    litmus3_indirect_write,
    litmus3_extended,
    compound_litmus,
    stretched_litmus,
)

__all__ = [
    "FuzzReport",
    "HistoryFuzzer",
    "LITMUS_SUITE",
    "LitmusReport",
    "LitmusRunner",
    "LitmusSpec",
    "SerializabilityChecker",
    "check_history",
    "compound_litmus",
    "litmus1_direct_write",
    "litmus1_insert_delete",
    "litmus2_read_write",
    "litmus3_extended",
    "litmus3_indirect_write",
    "stretched_litmus",
]
