"""Data layout: tables, key addressing, replica placement."""

from repro.kvs.catalog import Catalog, TableSpec
from repro.kvs.placement import ConsistentHashRing, Placement

__all__ = ["Catalog", "ConsistentHashRing", "Placement", "TableSpec"]
