"""The cluster catalog: table schemas and key -> slot addressing.

Compute servers access objects through their exact remote addresses
(FORD-style address caching keeps the hash-index probe off the common
path). The catalog is the shared, deterministic metadata that maps a
workload key to its slot index and replica set. In the real system it
is materialized from the memory-side hash index; here it is a plain
in-process registry that every compute server reads identically —
the simulation analogue of a warmed address cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, List, Tuple

from repro.kvs.placement import Placement

__all__ = ["TableSpec", "Catalog"]


@dataclass(frozen=True)
class TableSpec:
    """Schema of one table.

    ``max_keys`` bounds the keyspace (including keys inserted during
    the run); slots for insertable keys are pre-addressed, as a hash
    index would pre-own their buckets.
    """

    table_id: int
    name: str
    max_keys: int
    value_size: int

    def __post_init__(self) -> None:
        if self.max_keys <= 0:
            raise ValueError(f"table {self.name!r}: max_keys must be positive")
        if self.value_size <= 0:
            raise ValueError(f"table {self.name!r}: value_size must be positive")


class Catalog:
    """Tables, key addressing, and replica placement in one handle."""

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self.tables: Dict[int, TableSpec] = {}
        self.tables_by_name: Dict[str, TableSpec] = {}
        self._key_slots: Dict[int, Dict[Hashable, int]] = {}
        self._next_slot: Dict[int, int] = {}

    def add_table(self, spec: TableSpec) -> TableSpec:
        """Register a table schema; ids and names must be unique."""
        if spec.table_id in self.tables:
            raise ValueError(f"duplicate table id {spec.table_id}")
        if spec.name in self.tables_by_name:
            raise ValueError(f"duplicate table name {spec.name!r}")
        self.tables[spec.table_id] = spec
        self.tables_by_name[spec.name] = spec
        self._key_slots[spec.table_id] = {}
        self._next_slot[spec.table_id] = 0
        return spec

    def table(self, name_or_id) -> TableSpec:
        """Look a table up by name or numeric id."""
        if isinstance(name_or_id, str):
            return self.tables_by_name[name_or_id]
        return self.tables[name_or_id]

    # -- addressing -----------------------------------------------------------

    def slot_for(self, table_id: int, key: Hashable) -> int:
        """Dense slot index for *key*, assigned deterministically.

        Assignment order is deterministic because the simulation is
        single-threaded; every compute server observes the same
        mapping, mirroring a shared hash index.
        """
        slots = self._key_slots[table_id]
        slot = slots.get(key)
        if slot is None:
            slot = self._next_slot[table_id]
            if slot >= self.tables[table_id].max_keys:
                raise RuntimeError(
                    f"table {self.tables[table_id].name!r} keyspace exhausted "
                    f"({self.tables[table_id].max_keys} slots)"
                )
            slots[key] = slot
            self._next_slot[table_id] = slot + 1
        return slot

    def known_keys(self, table_id: int) -> List[Hashable]:
        """Every key that has been assigned a slot so far."""
        return list(self._key_slots[table_id])

    def key_count(self, table_id: int) -> int:
        """Number of keys with assigned slots in the table."""
        return self._next_slot[table_id]

    # -- placement shortcuts -----------------------------------------------------

    def replicas(self, table_id: int, slot: int) -> Tuple[int, ...]:
        """Static replica list for (table, slot)."""
        return self.placement.replicas(table_id, slot)

    def primary(self, table_id: int, slot: int) -> int:
        """Current primary memory server for (table, slot)."""
        return self.placement.primary(table_id, slot)

    def backups(self, table_id: int, slot: int) -> Tuple[int, ...]:
        """Live non-primary replicas for (table, slot)."""
        return self.placement.backups(table_id, slot)

    def log_nodes(self, coord_id: int) -> Tuple[int, ...]:
        """The f+1 log servers assigned to this coordinator."""
        return self.placement.log_nodes(coord_id)

    # -- provisioning helpers --------------------------------------------------------

    def provision(self, memory_nodes: Iterable) -> None:
        """Create every table's slot array on every memory node.

        Each replica addresses objects by the same global slot index,
        so each participating node allocates the full slot range for
        tables it can host.
        """
        for node in memory_nodes:
            for spec in self.tables.values():
                if spec.table_id not in node.tables:
                    node.create_table(spec.table_id, spec.max_keys, spec.value_size)

    def load(
        self,
        memory_nodes: Dict[int, Any],
        table_id: int,
        items: Iterable[Tuple[Hashable, Any]],
    ) -> int:
        """Bulk-load key/value pairs into every replica (setup path)."""
        count = 0
        for key, value in items:
            slot = self.slot_for(table_id, key)
            for node_id in self.replicas(table_id, slot):
                memory_nodes[node_id].load_slot(table_id, slot, value)
            count += 1
        return count

    def total_dataset_bytes(self) -> int:
        """Primary-copy dataset size (drives Baseline scan times)."""
        from repro.memory.node import OBJECT_HEADER_BYTES

        return sum(
            self.key_count(spec.table_id) * (OBJECT_HEADER_BYTES + spec.value_size)
            for spec in self.tables.values()
        )
