"""Replica placement via consistent hashing.

The paper statically partitions data across memory servers with
consistent hashing (§3.2.5), so that when a memory server fails, the
new primary for each affected object is computed *deterministically*
by every compute server from the same metadata, without resizing or
coordination.

We hash partitions (not individual keys) onto a ring of virtual nodes;
each partition's replica list is the first ``replication_degree``
distinct memory nodes clockwise from its point. The *primary* is the
first **alive** node in that list, which is exactly the promotion rule
compute servers apply after a memory failure.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Set, Tuple

__all__ = ["ConsistentHashRing", "Placement"]


def _stable_hash(data: str) -> int:
    """Deterministic across processes (unlike built-in ``hash``)."""
    return int.from_bytes(hashlib.blake2b(data.encode(), digest_size=8).digest(), "big")


class ConsistentHashRing:
    """Classic consistent-hash ring with virtual nodes."""

    def __init__(self, node_ids: Sequence[int], virtual_nodes: int = 64) -> None:
        if not node_ids:
            raise ValueError("ring needs at least one node")
        if virtual_nodes <= 0:
            raise ValueError("virtual_nodes must be positive")
        self.node_ids = list(node_ids)
        self.virtual_nodes = virtual_nodes
        points: List[Tuple[int, int]] = []
        for node_id in node_ids:
            for replica in range(virtual_nodes):
                points.append((_stable_hash(f"node-{node_id}-vn-{replica}"), node_id))
        points.sort()
        self._points = points

    def successors(self, key: str, count: int) -> List[int]:
        """First *count* distinct node ids clockwise from hash(key)."""
        if count > len(self.node_ids):
            raise ValueError(
                f"requested {count} replicas but ring has {len(self.node_ids)} nodes"
            )
        start = _stable_hash(key)
        # Binary search for the first point >= start.
        lo, hi = 0, len(self._points)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._points[mid][0] < start:
                lo = mid + 1
            else:
                hi = mid
        chosen: List[int] = []
        seen: Set[int] = set()
        index = lo
        while len(chosen) < count:
            _point, node_id = self._points[index % len(self._points)]
            if node_id not in seen:
                seen.add(node_id)
                chosen.append(node_id)
            index += 1
        return chosen


class Placement:
    """Maps (table, key slot) -> replica list; primary = first alive.

    Partition count is fixed at build time; keys map to partitions by
    ``slot % partitions``, and partitions map to replica lists through
    the consistent-hash ring. Every compute server holds an identical
    copy of this metadata, so primary promotion after a memory failure
    is deterministic and coordination-free.
    """

    def __init__(
        self,
        memory_node_ids: Sequence[int],
        replication_degree: int,
        partitions: int = 64,
        virtual_nodes: int = 64,
    ) -> None:
        if replication_degree < 1:
            raise ValueError("replication_degree must be >= 1")
        if replication_degree > len(memory_node_ids):
            raise ValueError(
                f"replication degree {replication_degree} exceeds "
                f"{len(memory_node_ids)} memory nodes"
            )
        self.memory_node_ids = list(memory_node_ids)
        self.replication_degree = replication_degree
        self.partitions = partitions
        self._ring = ConsistentHashRing(memory_node_ids, virtual_nodes)
        self._partition_replicas: List[Tuple[int, ...]] = [
            tuple(self._ring.successors(f"partition-{index}", replication_degree))
            for index in range(partitions)
        ]
        self._down: Set[int] = set()

    def mark_down(self, node_id: int) -> None:
        """Record a memory-server failure (affects primaries)."""
        self._down.add(node_id)

    def mark_up(self, node_id: int) -> None:
        """Record a memory-server rejoin."""
        self._down.discard(node_id)

    @property
    def down_nodes(self) -> Set[int]:
        """Ids of memory servers currently marked down."""
        return set(self._down)

    def partition_of(self, table_id: int, slot: int) -> int:
        """Partition index owning (table, slot)."""
        return (slot * 0x9E3779B1 + table_id) % self.partitions

    def replicas(self, table_id: int, slot: int) -> Tuple[int, ...]:
        """Full (static) replica list, including any down nodes."""
        return self._partition_replicas[self.partition_of(table_id, slot)]

    def live_replicas(self, table_id: int, slot: int) -> Tuple[int, ...]:
        """Replica list restricted to live memory servers."""
        return tuple(
            node for node in self.replicas(table_id, slot) if node not in self._down
        )

    def primary(self, table_id: int, slot: int) -> int:
        """First alive replica — the deterministic promotion rule."""
        for node in self.replicas(table_id, slot):
            if node not in self._down:
                return node
        raise RuntimeError(
            f"all replicas of table {table_id} slot {slot} are down "
            f"(more than f failures)"
        )

    def backups(self, table_id: int, slot: int) -> Tuple[int, ...]:
        """Live replicas other than the current primary."""
        primary = self.primary(table_id, slot)
        return tuple(
            node
            for node in self.replicas(table_id, slot)
            if node != primary and node not in self._down
        )

    def nodes_for_table(self, table_id: int) -> Set[int]:
        """All memory nodes that host at least one partition replica."""
        nodes: Set[int] = set()
        for replica_list in self._partition_replicas:
            nodes.update(replica_list)
        return nodes

    def log_nodes(self, coord_id: int) -> Tuple[int, ...]:
        """The f+1 fixed log servers for a coordinator (§3.1.4).

        All of a coordinator's transaction logs are gathered in the
        same f+1 memory servers so the recovery coordinator can fetch
        everything with f+1 large reads. When a log server fails, the
        next live ring successor takes its place — the same
        deterministic promotion rule as for data primaries.
        """
        candidates = self._ring.successors(
            f"coord-log-{coord_id}", len(self.memory_node_ids)
        )
        live = [node for node in candidates if node not in self._down]
        if not live:
            raise RuntimeError("no live log server remains (more than f failures)")
        # Degraded mode: with f failures and no spare server, fewer
        # than f+1 live log servers remain. Like the data path (the
        # primary promotion rule above), logging continues on the live
        # subset — with reduced fault tolerance — until §3.2.5
        # re-replication restores the degree. Raising here instead
        # killed every in-flight transaction at its log write *after*
        # the lock barrier, leaking locks under live coordinator ids.
        return tuple(live[: self.replication_degree])
