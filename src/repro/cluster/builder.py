"""Builds and runs a complete simulated DKVS deployment.

The :class:`Cluster` wires together every substrate: the simulation
kernel, the RDMA fabric, memory servers, the catalog/placement
metadata, compute servers with their coordinators, the failure
detector, the recovery manager, and the fault injector. It is the
single entry point the examples, tests, and the benchmark harness use.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.cluster.config import ClusterConfig
from repro.cluster.node import ComputeNode
from repro.faults.injector import FaultInjector
from repro.kvs.catalog import Catalog
from repro.kvs.placement import Placement
from repro.memory.node import MemoryNode
from repro.obs import NOOP_OBS
from repro.protocol.coordinator import Coordinator, CoordinatorConfig, CoordinatorStats
from repro.protocol.ford import ford_factory
from repro.protocol.legacy import legacy_factory
from repro.protocol.lotus import lotus_factory
from repro.protocol.pandora import pandora_factory
from repro.protocol.tradlog import tradlog_factory
from repro.protocol.types import BugFlags
from repro.protocol.vote1pc import vote1pc_factory
from repro.rdma.network import Network
from repro.rdma.verbs import Verbs
from repro.recovery.distributed_fd import DistributedFailureDetector
from repro.recovery.failure_detector import FailureDetector
from repro.recovery.idalloc import IdAllocator
from repro.recovery.manager import RecoveryManager
from repro.recovery.recycler import IdRecycler
from repro.sim import Simulator
from repro.util.stats import ThroughputTimeline

__all__ = ["Cluster"]

# The recovery server borrows a compute identity that no memory node
# will ever revoke (it is not a transaction coordinator host).
RECOVERY_SERVER_ID = 10_000


class Cluster:
    """A fully wired simulated deployment."""

    def __init__(
        self, config: ClusterConfig, workload, obs=None, sanitizer=None, profiler=None
    ) -> None:
        config.validate()
        self.config = config
        self.workload = workload
        # Observability facade shared by every layer; the no-op default
        # keeps all instrumented hot paths at a single empty call.
        self.obs = obs if obs is not None else NOOP_OBS
        self.sim = Simulator(profiler=profiler, legacy=config.legacy_kernel)
        self.rng = random.Random(config.seed)
        self.network = Network(config.network, random.Random(config.seed + 1))
        # Wall-clock profiler propagation: the network and (enabled)
        # obs facade share the simulator's profiler so Network.delay
        # frames and TxnTrace.focus phase assertions land in one place.
        # NOOP_OBS is slotted and must stay untouched.
        self.network.profiler = self.sim.profiler
        if self.obs.enabled and self.sim.profiler.enabled:
            self.obs.profiler = self.sim.profiler

        # Memory servers.
        self.memory_nodes: Dict[int, MemoryNode] = {
            node_id: MemoryNode(node_id) for node_id in range(config.memory_nodes)
        }

        # Shared metadata.
        self.placement = Placement(
            list(self.memory_nodes),
            replication_degree=config.replication_degree,
            partitions=config.partitions,
        )
        self.catalog = Catalog(self.placement)

        # Schema + data load (setup path, no simulated traffic).
        workload.create_schema(self.catalog)
        self.catalog.provision(self.memory_nodes.values())
        workload.load(self.catalog, self.memory_nodes, random.Random(config.seed + 2))

        # Fault injection.
        self.injector = FaultInjector(self.sim, random.Random(config.seed + 3))

        # Failure detector (+ coordinator-id allocation).
        self.id_allocator = IdAllocator(first_id=config.first_coord_id)
        # Cor4 also pushes the failed-ids bitset to LOTUS lock servers:
        # queue advances consult it to skip dead waiters' tickets.
        for memory in self.memory_nodes.values():
            memory.failed_ids = self.id_allocator.failed
        if config.distributed_fd:
            self.fd: FailureDetector = DistributedFailureDetector(
                self.sim,
                self.id_allocator,
                timeout=config.fd_timeout,
                check_interval=config.fd_check_interval,
                replicas=config.fd_replicas,
                agreement_delay=config.fd_agreement_delay,
                redetect_interval=config.fd_redetect_interval,
            )
        else:
            self.fd = FailureDetector(
                self.sim,
                self.id_allocator,
                timeout=config.fd_timeout,
                check_interval=config.fd_check_interval,
                redetect_interval=config.fd_redetect_interval,
            )

        self.fd.obs = self.obs

        # Optional PILL sanitizer (repro.analysis). Collect mode: buggy
        # protocols must run to completion so litmus/bench report the
        # violations at the end instead of dying on the first one.
        if sanitizer is None and config.sanitize:
            from repro.analysis.sanitizer import PillSanitizer

            sanitizer = PillSanitizer(
                self.memory_nodes,
                failed_ids=self.id_allocator.failed,
                recovery_id=RECOVERY_SERVER_ID,
                sim=self.sim,
                obs=obs,
                strict=False,
            )
        self.sanitizer = sanitizer
        if sanitizer is not None:
            for memory in self.memory_nodes.values():
                memory.sanitizer = sanitizer

        # Recovery manager with its own verbs (dedicated server).
        recovery_verbs = Verbs(
            self.sim, RECOVERY_SERVER_ID, self.network, self.memory_nodes,
            obs=self.obs, sanitizer=sanitizer,
        )
        self.recovery = RecoveryManager(
            self.sim,
            recovery_verbs,
            self.catalog,
            self.network,
            compute_nodes={},  # filled below
            memory_nodes=self.memory_nodes,
            id_allocator=self.id_allocator,
            mode=config.recovery_mode,
            drain_delay=config.drain_delay,
            reconfig_delay=config.reconfig_delay,
            scan_chunk_slots=config.scan_chunk_slots,
            restart_hook=self.restart_compute,
            restart_after=config.restart_failed_after,
            obs=self.obs,
            parallel_log_recovery=config.parallel_log_recovery,
        )
        self.fd.recovery_manager = self.recovery
        self.recycler = IdRecycler(
            self.sim,
            recovery_verbs,
            self.catalog,
            self.network,
            memory_nodes=self.memory_nodes,
            compute_nodes={},  # filled below, shared with recovery
            id_allocator=self.id_allocator,
            scan_chunk_slots=config.scan_chunk_slots,
        )

        # Compute servers + coordinators.
        self.compute_nodes: Dict[int, ComputeNode] = {}
        for node_id in range(config.compute_nodes):
            verbs = Verbs(
                self.sim, node_id, self.network, self.memory_nodes,
                obs=self.obs, sanitizer=sanitizer,
            )
            node = ComputeNode(
                self.sim, node_id, verbs, self.catalog, faults=self.injector
            )
            self.compute_nodes[node_id] = node
            self._spawn_coordinators(node)
        self.recovery.compute_nodes = self.compute_nodes
        self.recycler.compute_nodes = self.compute_nodes

        # Measurement.
        self.timeline = ThroughputTimeline(window=config.throughput_window)
        self._started = False
        self._run_coordinator_loops = True
        self._retired_stats = CoordinatorStats()

        # Run-level facts the report layer cannot derive from events
        # (a no-op on the disabled obs path).
        self.obs.set_run_meta(
            protocol=config.protocol,
            workload=type(workload).__name__,
            seed=config.seed,
            replication_degree=config.replication_degree,
            log_servers=len(self.catalog.log_nodes(0)),
            memory_nodes=config.memory_nodes,
            compute_nodes=config.compute_nodes,
            coordinators_per_node=config.coordinators_per_node,
        )

    # -- construction helpers ---------------------------------------------------

    def _engine_factory(self):
        config = self.config
        if config.legacy_engine:
            # Frozen pre-refactor engine; parity-suite diff build only.
            return legacy_factory(config.protocol, config.bugs)
        if config.protocol == "pandora":
            return pandora_factory(config.bugs)
        if config.protocol == "tradlog":
            return tradlog_factory(config.bugs)
        if config.protocol == "lotus":
            return lotus_factory(config.bugs)
        if config.protocol == "vote1pc":
            return vote1pc_factory(config.bugs)
        if config.protocol == "ford":
            bugs = config.bugs if config.bugs is not None else BugFlags.published()
            return ford_factory(bugs)
        # 'baseline': FORD online component with the bugs fixed, scan
        # recovery — the comparison system of §4.1.
        bugs = config.bugs if config.bugs is not None else BugFlags.fixed()
        return ford_factory(bugs)

    def _coordinator_config(self) -> CoordinatorConfig:
        config = self.config
        return CoordinatorConfig(
            max_attempts=config.max_attempts,
            backoff_base=config.backoff_base,
            backoff_cap=config.backoff_cap,
            abandon_on_conflict=config.abandon_on_conflict,
            nvm_flush=(config.persistence == "nvm-flush"),
            warm_address_cache=config.warm_address_cache,
        )

    def _spawn_coordinators(self, node: ComputeNode) -> None:
        factory = self._engine_factory()
        for _ in range(self.config.coordinators_per_node):
            coord_id = self.fd.allocate_coordinator_id()
            coordinator = Coordinator(
                node,
                coord_id,
                factory,
                self.workload,
                random.Random((self.config.seed << 20) ^ (coord_id * 2654435761)),
                self._coordinator_config(),
            )
            node.add_coordinator(coordinator)

    # -- lifecycle --------------------------------------------------------------------

    def start(self, run_coordinators: bool = True) -> None:
        """Start heartbeats, the detector, and every coordinator.

        ``run_coordinators=False`` starts only the failure-detection
        and recovery machinery; callers (e.g. the litmus runner) then
        drive individual transactions through the coordinators.
        """
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        self._run_coordinator_loops = run_coordinators
        sinks = self.fd.heartbeat_sinks()
        for node in self.compute_nodes.values():
            self.fd.register("compute", node)
            node.start_heartbeats(
                self.network, sinks, self.config.fd_heartbeat_interval
            )
            if run_coordinators:
                node.start_coordinators(on_commit=self.timeline.record)
        for memory in self.memory_nodes.values():
            self.fd.register("memory", memory)
            self._start_memory_heartbeats(memory, sinks)
        self.fd.start()
        self._start_recycler_watch()

    def _start_recycler_watch(self) -> None:
        """Trigger the id-recycling scan past 95% id consumption
        (§3.1.2) — the FD's contingency for long-running systems."""

        def watch():
            active = None
            while True:
                yield self.sim.timeout(5e-3)
                done = active is None or active.triggered
                if done and self.id_allocator.needs_recycling:
                    active = self.recycler.run_once()

        self.sim.process(watch(), name="recycler-watch")

    def _start_memory_heartbeats(self, memory: MemoryNode, sinks) -> None:
        interval = self.config.fd_heartbeat_interval

        def loop():
            while memory.alive:
                sent_at = self.sim.now
                for sink in sinks:
                    delay = self.network.delay(64)
                    self.sim.call_at(
                        self.sim.now + delay,
                        lambda s=sink, t=sent_at: s("memory", memory.node_id, t),
                    )
                yield self.sim.timeout(interval)

        self.sim.process(loop(), name=f"heartbeat-m{memory.node_id}")

    def run(self, until: float) -> None:
        """Advance the simulation to absolute virtual time *until*."""
        self.sim.run(until=until)

    # -- failures & restarts ----------------------------------------------------------------

    def crash_compute(self, node_id: int, at: Optional[float] = None) -> None:
        """Crash a compute server now or at a future time."""
        node = self.compute_nodes[node_id]
        if at is None:
            node.crash()
        else:
            self.injector.crash_at(node, at)

    def crash_memory(self, node_id: int, at: Optional[float] = None) -> None:
        """Crash a memory server now or at a future time."""
        node = self.memory_nodes[node_id]
        if at is None:
            node.crash()
        else:
            self.sim.call_at(at, node.crash)

    def restore_memory(self, node_id: int) -> None:
        """Re-add a failed memory server (stop-the-world
        re-replication, §3.2.5)."""
        node = self.memory_nodes[node_id]
        process = self.recovery.restore_memory_node(node)
        if process is None or not self._started:
            return

        def rejoin(_event) -> None:
            # Heartbeats and FD tracking resume only once the node is
            # actually serving again, else it is immediately
            # re-suspected.
            if node.alive:
                self.fd.register("memory", node)
                self._start_memory_heartbeats(node, self.fd.heartbeat_sinks())

        process.add_callback(rejoin)

    def restart_compute(self, node: ComputeNode) -> None:
        """Bring a crashed compute node back with fresh coordinators.

        The node re-joins with *new* coordinator ids (its old ids stay
        failed forever, §3.1.2) and re-established, un-revoked links.
        """
        if node.alive:
            fenced = any(
                memory.alive and memory.is_revoked(node.node_id)
                for memory in self.memory_nodes.values()
            )
            if not fenced:
                return
            # Falsely-suspected node that stayed idle through its own
            # recovery: it never touched memory, so it never observed
            # the revocation and never crashed itself — but its links
            # are revoked everywhere and its coordinator ids are marked
            # failed, so it can never commit again. Treat the restart
            # as crash + rejoin instead of silently leaving it fenced.
            node.crash()
        if ("compute", node.node_id) in self.recovery._in_progress:
            # Recovery is mid-flight for this node; restarting now
            # would race link revocation against the new QPs. Defer.
            self.sim.call_at(
                self.sim.now + 0.5e-3, lambda n=node: self.restart_compute(n)
            )
            return
        for coordinator in node.coordinators:
            self._retired_stats.merge(coordinator.stats)
        for memory in self.memory_nodes.values():
            memory._op_ctrl_unrevoke(RECOVERY_SERVER_ID, (node.node_id,))
        node.alive = True
        node.fenced = False
        node.paused = False
        node.coordinators = []
        # §3.1.2: the FD's initial configuration includes the complete
        # failed-ids list — failures that happened while this node was
        # down must be visible to its fresh coordinators.
        node.failed_ids.update_from(self.id_allocator.failed)
        self._spawn_coordinators(node)
        if self._started:
            sinks = self.fd.heartbeat_sinks()
            self.fd.register("compute", node)
            node.start_heartbeats(
                self.network, sinks, self.config.fd_heartbeat_interval
            )
            if self._run_coordinator_loops:
                node.start_coordinators(on_commit=self.timeline.record)

    # -- reporting ----------------------------------------------------------------------------

    def aggregate_stats(self) -> CoordinatorStats:
        """Merged coordinator statistics (incl. retired ones)."""
        total = CoordinatorStats()
        total.merge(self._retired_stats)
        for node in self.compute_nodes.values():
            for coordinator in node.coordinators:
                total.merge(coordinator.stats)
        return total

    def live_coordinator_count(self) -> int:
        """Coordinators on currently alive nodes."""
        return sum(
            len(node.coordinators)
            for node in self.compute_nodes.values()
            if node.alive
        )

    def all_coordinators(self) -> List[Coordinator]:
        """Every coordinator on every compute node."""
        coordinators = []
        for node in self.compute_nodes.values():
            coordinators.extend(node.coordinators)
        return coordinators
