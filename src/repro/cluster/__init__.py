"""Cluster wiring: compute nodes, configuration, and the builder."""

from repro.cluster.config import ClusterConfig
from repro.cluster.node import ComputeNode
from repro.cluster.builder import Cluster

__all__ = ["Cluster", "ClusterConfig", "ComputeNode"]
