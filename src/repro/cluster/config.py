"""Cluster configuration: one dataclass describing a whole deployment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.protocol.locks import MAX_COORD_ID
from repro.protocol.types import BugFlags
from repro.rdma.network import NetworkConfig

__all__ = ["ClusterConfig"]

_PROTOCOLS = ("pandora", "ford", "baseline", "tradlog", "lotus", "vote1pc")


@dataclass
class ClusterConfig:
    """Everything needed to build a simulated DKVS deployment.

    Defaults mirror the paper's testbed topology scaled for
    simulation: 2 memory + 2 compute nodes, a separate failure-detector
    / recovery server, and f+1 = 2 replication.
    """

    # Topology.
    memory_nodes: int = 2
    compute_nodes: int = 2
    coordinators_per_node: int = 8
    replication_degree: int = 2
    partitions: int = 64

    # Protocol: 'pandora', 'ford' (published bugs), 'baseline'
    # (FORD online component, bugs fixed, scan recovery), 'tradlog',
    # 'lotus' (FAA ticket-queue locks), 'vote1pc' (logless 1PC).
    protocol: str = "pandora"
    bugs: Optional[BugFlags] = None

    # Run the frozen pre-refactor engine (repro.protocol.legacy)
    # instead of the strategy-composed one. Exists only so the parity
    # suite (tests/integration/test_strategy_parity.py) can diff the
    # two builds bit-identically; pandora/ford/tradlog only.
    legacy_engine: bool = False

    # Persistence (§7): 'dram' assumes battery-backed DRAM (no flush on
    # the critical path); 'nvm-flush' models FORD's selective one-sided
    # flush — a small read chasing the commit writes on each touched
    # memory node to flush the RNIC cache into NVM before the ack.
    persistence: str = "dram"

    # Networking.
    network: NetworkConfig = field(default_factory=NetworkConfig)

    # Failure detection.
    fd_timeout: float = 5e-3
    fd_heartbeat_interval: float = 1e-3
    fd_check_interval: float = 0.5e-3
    distributed_fd: bool = False
    fd_replicas: int = 3
    fd_agreement_delay: float = 2e-3
    # Re-declare a dead compute node whose recovery died mid-flight
    # after this much post-declaration silence (None = declare once,
    # the historical behaviour). See FailureDetector._redetect_pass.
    fd_redetect_interval: Optional[float] = None

    # Kernel scheduler build: False = now-ring + timer-heap fast path,
    # True = the pre-ring single-heap scheduler. Both produce
    # bit-identical virtual-time behaviour (asserted by the parity
    # suite, tests/integration/test_scheduler_parity.py); legacy exists
    # only so that suite can diff the two builds.
    legacy_kernel: bool = False

    # RC log recovery: post the f+1 region reads for all dead
    # coordinators in one burst (paper §4, Table 2) instead of one
    # coordinator per round trip. See RecoveryManager._log_recovery.
    parallel_log_recovery: bool = True

    # Recovery.
    drain_delay: float = 0.5e-3
    reconfig_delay: float = 2e-3
    scan_chunk_slots: int = 512
    # Reuse freed resources: restart a crashed compute node this long
    # after recovery completes (None = never, the "no reuse" curve).
    restart_failed_after: Optional[float] = None

    # Coordinator retry policy.
    max_attempts: int = 64
    backoff_base: float = 2e-6
    backoff_cap: float = 100e-6
    abandon_on_conflict: bool = False

    # FORD-style compute-side address cache. True (default) models the
    # measured steady state (warm cache, exact addresses known); False
    # charges an extra hash-index probe read on each coordinator's
    # first access to an object.
    warm_address_cache: bool = True

    # First coordinator id the allocator hands out (ids below count as
    # consumed). Default 0; boundary tests raise it to place the
    # initial wave hard against MAX_COORD_ID = 0xFFFE and prove the
    # anonymous-owner sentinel is never minted into a lock word.
    first_coord_id: int = 0

    # Determinism.
    seed: int = 42

    # Opt-in PILL protocol sanitizer (repro.analysis): shadow the lock
    # table at the verb layer and record protocol violations. Disabled
    # runs are bit-identical to runs without the sanitizer wired in.
    sanitize: bool = False

    # Measurement.
    throughput_window: float = 1e-3

    def validate(self) -> None:
        if self.protocol not in _PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {_PROTOCOLS}"
            )
        if self.memory_nodes < 1:
            raise ValueError("need at least one memory node")
        if self.compute_nodes < 1:
            raise ValueError("need at least one compute node")
        if self.coordinators_per_node < 1:
            raise ValueError("need at least one coordinator per node")
        if not 0 <= self.first_coord_id <= MAX_COORD_ID:
            raise ValueError(
                f"first_coord_id {self.first_coord_id} outside 0..{MAX_COORD_ID}"
            )
        initial = self.compute_nodes * self.coordinators_per_node
        if self.first_coord_id + initial > MAX_COORD_ID + 1:
            # Initial ids are allocated strictly serially, so the first
            # wave alone must fit in first_coord_id..MAX_COORD_ID —
            # 0xFFFF is the reserved anonymous-owner sentinel and never
            # handed out.
            raise ValueError(
                f"{initial} initial coordinators starting at id "
                f"{self.first_coord_id} exceed the id space (max id "
                f"{MAX_COORD_ID}; 0xFFFF is reserved as the "
                "anonymous-owner sentinel)"
            )
        if not 1 <= self.replication_degree <= self.memory_nodes:
            raise ValueError(
                f"replication degree {self.replication_degree} must be in "
                f"[1, {self.memory_nodes}]"
            )
        if self.fd_timeout <= 0:
            raise ValueError("fd_timeout must be positive")
        if self.persistence not in ("dram", "nvm-flush"):
            raise ValueError(
                f"unknown persistence mode {self.persistence!r}; "
                "expected 'dram' or 'nvm-flush'"
            )

    @property
    def recovery_mode(self) -> str:
        if self.protocol in ("pandora", "lotus"):
            # Lotus ticket words carry PILL owner attribution, and the
            # conditional CAS-to-0 release doubles as a queue advance,
            # so PILL log recovery covers it unchanged.
            return "pill"
        if self.protocol == "tradlog":
            return "locklog"
        if self.protocol == "vote1pc":
            return "vote"
        return "scan"
