"""The compute server: coordinators, failed-ids, heartbeats, pausing.

A compute server hosts many transaction coordinators (worker threads),
one shared :class:`~repro.rdma.Verbs` handle, and the node-wide PILL
state — the failed-ids bitset that every lock-conflict check consults
(§3.1.2). Crashing the node kills every coordinator at its current
protocol step; verbs already posted to the network still execute at
the memory side, which is precisely what leaves stray locks behind.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.protocol.locks import ANONYMOUS_OWNER
from repro.sim import Event, Simulator
from repro.util.bitset import Bitset

__all__ = ["ComputeNode"]


class ComputeNode:
    """One compute server in the DKVS."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        verbs,
        catalog,
        faults=None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.verbs = verbs
        self.catalog = catalog
        self.faults = faults
        self.alive = True
        self.paused = False
        self.fenced = False
        self.coordinators: List = []
        # PILL state: coordinator-ids of every recovered-failed
        # coordinator; O(1) membership via a 64K bitset. Sized over the
        # full owner-field range (like IdAllocator.failed, which
        # update_from requires capacity-matching) so any `owner_of`
        # result — including the anonymous sentinel — probes in-range.
        self.failed_ids = Bitset(ANONYMOUS_OWNER + 1)
        self._resume_event: Optional[Event] = None
        self._heartbeat_process = None
        self.crash_time: Optional[float] = None

    # -- coordinator management ------------------------------------------------

    def add_coordinator(self, coordinator) -> None:
        """Attach a coordinator to this compute server."""
        self.coordinators.append(coordinator)

    def coordinator_ids(self) -> List[int]:
        """Coordinator ids currently hosted here."""
        return [coordinator.coord_id for coordinator in self.coordinators]

    def start_coordinators(self, on_commit: Callable[[float], None]) -> None:
        """Start every hosted coordinator worker loop."""
        for coordinator in self.coordinators:
            coordinator.start(on_commit=on_commit)

    # -- failure ---------------------------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: all coordinators die at their current step."""
        if not self.alive:
            return
        self.alive = False
        self.crash_time = self.sim.now
        for coordinator in self.coordinators:
            coordinator.stop()
        if self._heartbeat_process is not None:
            self._heartbeat_process.kill()
            self._heartbeat_process = None

    def on_fenced(self, coordinator) -> None:
        """A coordinator discovered its RDMA rights were revoked (Cor1).

        The node was declared failed (perhaps falsely); it must stop
        issuing transactions immediately — memory will drop everything
        it sends, so continuing is pointless and unsafe.
        """
        self.fenced = True
        self.crash()

    # -- heartbeats ----------------------------------------------------------------------

    def start_heartbeats(
        self,
        network,
        sinks: Iterable[Callable[[str, int, float], None]],
        interval: float,
    ) -> None:
        """Send periodic heartbeats to every failure-detector replica."""
        sinks = list(sinks)

        def loop() -> Generator[Event, Any, None]:
            while self.alive:
                sent_at = self.sim.now
                for sink in sinks:
                    delay = network.delay(64)
                    self.sim.call_at(
                        self.sim.now + delay,
                        lambda s=sink, t=sent_at: s("compute", self.node_id, t),
                    )
                yield self.sim.timeout(interval)

        self._heartbeat_process = self.sim.process(
            loop(), name=f"heartbeat-c{self.node_id}"
        )

    # -- PILL notifications ------------------------------------------------------------------

    def add_failed_ids(self, coord_ids: Iterable[int]) -> None:
        """Stray-lock notification: record newly failed coordinator ids."""
        for coord_id in coord_ids:
            self.failed_ids.add(coord_id)

    # -- pausing (stop-the-world phases) --------------------------------------------------------

    def pause(self) -> None:
        """Enter a stop-the-world phase."""
        if not self.paused:
            self.paused = True
            self._resume_event = Event(self.sim)

    def resume(self) -> None:
        """Leave the stop-the-world phase and wake waiters."""
        if self.paused:
            self.paused = False
            event, self._resume_event = self._resume_event, None
            if event is not None and not event.triggered:
                event.succeed(None)

    def wait_if_paused(self) -> Generator[Event, Any, None]:
        while self.paused and self.alive:
            if self._resume_event is None:  # defensive; pause() sets it
                self._resume_event = Event(self.sim)
            yield self._resume_event

    # -- memory reconfiguration (§3.2.5) ----------------------------------------------------------

    def begin_memory_reconfig(self) -> None:
        """Pause and interrupt in-flight transactions so each applies
        the commit/abort decision rule against the new replica set."""
        if not self.alive:
            return
        self.pause()
        for coordinator in self.coordinators:
            engine = coordinator.engine
            if coordinator.process is not None and engine.current_tx is not None:
                coordinator.process.interrupt(engine.current_tx)

    def end_memory_reconfig(self) -> None:
        if self.alive:
            self.resume()
