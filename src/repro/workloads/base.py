"""Workload interface consumed by coordinators and the harness.

A workload owns its schema, its initial data, and a transaction
generator. Transaction *logic* is a callable ``logic(tx)``; it may be a
plain function (local buffering only, e.g. blind writes) or a generator
function that performs reads with ``yield from tx.read(...)``. The
protocol engine runs the logic inside a transaction attempt, retrying
per the coordinator's policy.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict

__all__ = ["Workload"]


class Workload:
    """Base class; subclasses fill in schema, data, and transactions."""

    name = "workload"

    def create_schema(self, catalog) -> None:
        """Register the tables of this workload in the catalog."""
        raise NotImplementedError

    def load(self, catalog, memory_nodes: Dict[int, Any], rng: random.Random) -> None:
        """Bulk-load initial data into every replica."""
        raise NotImplementedError

    def next_transaction(self, rng: random.Random) -> Callable:
        """Produce the logic callable of the next transaction."""
        raise NotImplementedError

    def user_transaction(self, user: int, rng: random.Random) -> Callable:
        """Produce the next transaction issued *by user*.

        The open-loop traffic engine (:mod:`repro.load`) draws users
        from a skewed population and asks the workload for that user's
        next request, so hot users create hot keys. Subclasses pin the
        transaction's primary key(s) to the user's home rows; the
        default ignores identity and falls back to the closed-loop
        generator.
        """
        return self.next_transaction(rng)

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def pick(rng: random.Random, weighted: Dict[str, float]) -> str:
        """Pick a transaction kind from a {name: weight} mix."""
        total = sum(weighted.values())
        point = rng.random() * total
        running = 0.0
        for name, weight in weighted.items():
            running += weight
            if point < running:
                return name
        return name  # numerical edge: return the last kind
