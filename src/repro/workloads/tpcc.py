"""TPC-C over the DKVS transactional API (§4.1).

All nine tables (warehouse, district, customer, history, new_order,
orders, order_line, item, stock) and the full five-profile mix
(new-order 45%, payment 43%, order-status 4%, delivery 4%,
stock-level 4%), which makes the workload ~95% write transactions as
the paper characterises it.

Scaled for simulation:

* Scale factors (customers per district, items, initial orders) are
  constructor parameters defaulting well below the TPC-C standard.
* Order ids grow monotonically but map onto a bounded per-district
  ring of slots (``order_capacity``); order/order-line/new-order rows
  are created with upsert writes, so a long run recycles slots instead
  of exhausting the pre-addressed keyspace. This preserves the
  protocol-level behaviour (inserts are still new versions of objects
  reached through the same one-sided path) while bounding memory.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.workloads.base import Workload

__all__ = ["TpcC"]

TABLE_WAREHOUSE = 0
TABLE_DISTRICT = 1
TABLE_CUSTOMER = 2
TABLE_HISTORY = 3
TABLE_NEW_ORDER = 4
TABLE_ORDERS = 5
TABLE_ORDER_LINE = 6
TABLE_ITEM = 7
TABLE_STOCK = 8

DEFAULT_MIX = {
    "new_order": 45,
    "payment": 43,
    "order_status": 4,
    "delivery": 4,
    "stock_level": 4,
}

DISTRICTS_PER_WAREHOUSE = 10


class TpcC(Workload):
    """TPC-C over the transactional KV API."""

    name = "tpcc"

    def __init__(
        self,
        warehouses: int = 2,
        customers_per_district: int = 200,
        items: int = 2_000,
        order_capacity: int = 100,
        max_order_lines: int = 10,
        history_capacity: int = 2_000,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        self.warehouses = warehouses
        self.customers_per_district = customers_per_district
        self.items = items
        self.order_capacity = order_capacity
        self.max_order_lines = max_order_lines
        self.history_capacity = history_capacity
        self.mix = dict(mix) if mix else dict(DEFAULT_MIX)
        self.districts = warehouses * DISTRICTS_PER_WAREHOUSE

    # -- schema & data ------------------------------------------------------

    def create_schema(self, catalog) -> None:
        from repro.kvs.catalog import TableSpec

        w = self.warehouses
        d = self.districts
        orders = d * self.order_capacity
        catalog.add_table(TableSpec(TABLE_WAREHOUSE, "warehouse", w, 96))
        catalog.add_table(TableSpec(TABLE_DISTRICT, "district", d, 96))
        catalog.add_table(
            TableSpec(
                TABLE_CUSTOMER, "customer", d * self.customers_per_district, 672
            )
        )
        catalog.add_table(TableSpec(TABLE_HISTORY, "history", self.history_capacity, 46))
        catalog.add_table(TableSpec(TABLE_NEW_ORDER, "new_order", orders, 8))
        catalog.add_table(TableSpec(TABLE_ORDERS, "orders", orders, 24))
        catalog.add_table(
            TableSpec(
                TABLE_ORDER_LINE, "order_line", orders * self.max_order_lines, 54
            )
        )
        catalog.add_table(TableSpec(TABLE_ITEM, "item", self.items, 82))
        catalog.add_table(TableSpec(TABLE_STOCK, "stock", w * self.items, 320))

    def load(self, catalog, memory_nodes: Dict[int, Any], rng: random.Random) -> None:
        catalog.load(
            memory_nodes,
            TABLE_WAREHOUSE,
            ((w, {"ytd": 0, "tax": rng.randint(0, 20) / 100}) for w in range(self.warehouses)),
        )
        catalog.load(
            memory_nodes,
            TABLE_DISTRICT,
            (
                (
                    (w, d),
                    {"next_o_id": 1, "ytd": 0, "tax": rng.randint(0, 20) / 100},
                )
                for w in range(self.warehouses)
                for d in range(DISTRICTS_PER_WAREHOUSE)
            ),
        )
        catalog.load(
            memory_nodes,
            TABLE_CUSTOMER,
            (
                (
                    (w, d, c),
                    {"balance": -10, "ytd_payment": 10, "discount": rng.randint(0, 50) / 100},
                )
                for w in range(self.warehouses)
                for d in range(DISTRICTS_PER_WAREHOUSE)
                for c in range(self.customers_per_district)
            ),
        )
        catalog.load(
            memory_nodes,
            TABLE_ITEM,
            (
                (i, {"price": rng.randint(100, 10_000), "name": f"item-{i}"})
                for i in range(self.items)
            ),
        )
        catalog.load(
            memory_nodes,
            TABLE_STOCK,
            (
                ((w, i), {"quantity": rng.randint(10, 100), "ytd": 0, "order_cnt": 0})
                for w in range(self.warehouses)
                for i in range(self.items)
            ),
        )

    # -- key helpers ----------------------------------------------------------------

    def _order_slot_key(self, w: int, d: int, o_id: int):
        return (w, d, o_id % self.order_capacity)

    def _warehouse(self, rng: random.Random) -> int:
        return rng.randrange(self.warehouses)

    def _district(self, rng: random.Random) -> int:
        return rng.randrange(DISTRICTS_PER_WAREHOUSE)

    def _customer(self, rng: random.Random) -> int:
        return rng.randrange(self.customers_per_district)

    # -- transactions ------------------------------------------------------------------

    def _home(self, user: int):
        """Map a population user id onto (warehouse, district, customer).

        Consecutive users share a district, so a Zipf-skewed population
        concentrates traffic on a few hot districts — exactly the
        contention the district ``next_o_id`` counter serializes.
        """
        customer = user % self.customers_per_district
        district_index = (user // self.customers_per_district) % self.districts
        warehouse = district_index // DISTRICTS_PER_WAREHOUSE
        district = district_index % DISTRICTS_PER_WAREHOUSE
        return warehouse, district, customer

    def next_transaction(self, rng: random.Random) -> Callable:
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng)

    def user_transaction(self, user: int, rng: random.Random) -> Callable:
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng, home=self._home(user))

    def _txn_new_order(self, rng: random.Random, home=None) -> Callable:
        w, d, c = home if home is not None else (
            self._warehouse(rng), self._district(rng), self._customer(rng)
        )
        line_count = rng.randint(5, self.max_order_lines)
        lines = []
        for _ in range(line_count):
            item = rng.randrange(self.items)
            # 1% of lines are supplied by a remote warehouse.
            supply_w = w
            if self.warehouses > 1 and rng.random() < 0.01:
                supply_w = rng.choice(
                    [other for other in range(self.warehouses) if other != w]
                )
            lines.append((item, supply_w, rng.randint(1, 10)))

        def logic(tx):
            warehouse = yield from tx.read("warehouse", w)
            customer = yield from tx.read("customer", (w, d, c))
            district = yield from tx.read_for_update("district", (w, d))
            o_id = district["next_o_id"]
            tx.write("district", (w, d), {**district, "next_o_id": o_id + 1})

            total = 0
            for number, (item_id, supply_w, quantity) in enumerate(lines, start=1):
                item = yield from tx.read("item", item_id)
                stock = yield from tx.read_for_update("stock", (supply_w, item_id))
                new_quantity = stock["quantity"] - quantity
                if new_quantity < 10:
                    new_quantity += 91
                tx.write(
                    "stock",
                    (supply_w, item_id),
                    {
                        **stock,
                        "quantity": new_quantity,
                        "ytd": stock["ytd"] + quantity,
                        "order_cnt": stock["order_cnt"] + 1,
                    },
                )
                total += item["price"] * quantity
                tx.write(
                    "order_line",
                    (*self._order_slot_key(w, d, o_id), number),
                    {"item": item_id, "supply_w": supply_w, "qty": quantity,
                     "amount": item["price"] * quantity},
                )
            discounted = total * (1 - customer["discount"])
            taxed = discounted * (1 + warehouse["tax"])
            tx.write(
                "orders",
                self._order_slot_key(w, d, o_id),
                {"o_id": o_id, "customer": c, "lines": len(lines), "carrier": None},
            )
            tx.write("new_order", self._order_slot_key(w, d, o_id), {"o_id": o_id})
            # The allocated order id travels in the result so workload-
            # level monitors can check per-district id consistency.
            return {"kind": "new_order", "w": w, "d": d, "o_id": o_id, "total": taxed}

        return logic

    def _txn_payment(self, rng: random.Random, home=None) -> Callable:
        w, d, c = home if home is not None else (
            self._warehouse(rng), self._district(rng), self._customer(rng)
        )
        # 15% of payments come through a remote warehouse's customer.
        customer_w, customer_d = w, d
        if self.warehouses > 1 and rng.random() < 0.15:
            customer_w = rng.choice(
                [other for other in range(self.warehouses) if other != w]
            )
            customer_d = self._district(rng)
        amount = rng.randint(100, 5_000)
        history_key = rng.randrange(self.history_capacity)

        def logic(tx):
            warehouse = yield from tx.read_for_update("warehouse", w)
            tx.write("warehouse", w, {**warehouse, "ytd": warehouse["ytd"] + amount})
            district = yield from tx.read_for_update("district", (w, d))
            tx.write("district", (w, d), {**district, "ytd": district["ytd"] + amount})
            customer = yield from tx.read_for_update(
                "customer", (customer_w, customer_d, c)
            )
            tx.write(
                "customer",
                (customer_w, customer_d, c),
                {
                    **customer,
                    "balance": customer["balance"] - amount,
                    "ytd_payment": customer["ytd_payment"] + amount,
                },
            )
            tx.write(
                "history",
                history_key,
                {"w": w, "d": d, "c": c, "amount": amount},
            )
            return None

        return logic

    def _txn_order_status(self, rng: random.Random, home=None) -> Callable:
        w, d = home[:2] if home is not None else (
            self._warehouse(rng), self._district(rng)
        )
        o_guess = rng.randrange(self.order_capacity)

        def logic(tx):
            order = yield from tx.read("orders", (w, d, o_guess))
            if order is None:
                return None
            keys = [(w, d, o_guess, number) for number in range(1, order["lines"] + 1)]
            lines = yield from tx.read_many("order_line", keys)
            return {"order": order, "lines": [line for line in lines if line]}

        return logic

    def _txn_delivery(self, rng: random.Random, home=None) -> Callable:
        w, d = home[:2] if home is not None else (
            self._warehouse(rng), self._district(rng)
        )
        o_guess = rng.randrange(self.order_capacity)
        carrier = rng.randint(1, 10)

        def logic(tx):
            pending = yield from tx.read("new_order", (w, d, o_guess))
            if pending is None:
                return None  # nothing to deliver at this slot
            order = yield from tx.read_for_update("orders", (w, d, o_guess))
            if order is None:
                return None
            tx.delete("new_order", (w, d, o_guess))
            tx.write("orders", (w, d, o_guess), {**order, "carrier": carrier})
            amount = 0
            for number in range(1, order["lines"] + 1):
                line = yield from tx.read("order_line", (w, d, o_guess, number))
                if line is not None:
                    amount += line["amount"]
            customer = yield from tx.read_for_update(
                "customer", (w, d, order["customer"])
            )
            tx.write(
                "customer",
                (w, d, order["customer"]),
                {**customer, "balance": customer["balance"] + amount},
            )
            return order["o_id"]

        return logic

    def _txn_stock_level(self, rng: random.Random, home=None) -> Callable:
        w, d = home[:2] if home is not None else (
            self._warehouse(rng), self._district(rng)
        )
        threshold = rng.randint(10, 20)
        probe_items = [rng.randrange(self.items) for _ in range(10)]

        def logic(tx):
            _district = yield from tx.read("district", (w, d))
            stocks = yield from tx.read_many(
                "stock", [(w, item_id) for item_id in probe_items]
            )
            return sum(
                1
                for stock in stocks
                if stock is not None and stock["quantity"] < threshold
            )

        return logic
