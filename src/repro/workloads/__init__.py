"""OLTP workloads: TPC-C, TATP, SmallBank, and the microbenchmark."""

from repro.workloads.base import Workload
from repro.workloads.microbench import MicroBenchmark
from repro.workloads.smallbank import SmallBank
from repro.workloads.tatp import Tatp
from repro.workloads.tpcc import TpcC

__all__ = ["MicroBenchmark", "SmallBank", "Tatp", "TpcC", "Workload"]
