"""The paper's microbenchmark: 8B keys, 40B values, tunable write ratio.

Used for Fig 6 (PILL steady-state overhead), Fig 7 (MTTF sweep), Fig 8
(fail-over throughput), and Figs 13-14 (hot-object contention with
1 000 / 100 000 hot keys). ``hot_keys`` shrinks the accessed keyspace
to create contention; ``write_ratio`` sweeps the read/write mix;
``rmw=False`` issues blind pipelined writes (the 100%-write
configuration of §6.1).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.util.zipf import ZipfSampler
from repro.workloads.base import Workload

__all__ = ["MicroBenchmark"]

TABLE_KV = 0


class MicroBenchmark(Workload):
    """Single-table key-value microbenchmark."""

    name = "microbench"

    def __init__(
        self,
        num_keys: int = 100_000,
        value_size: int = 40,
        write_ratio: float = 1.0,
        ops_per_txn: int = 2,
        hot_keys: Optional[int] = None,
        zipf_theta: float = 0.0,
        rmw: bool = False,
    ) -> None:
        if not 0.0 <= write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if ops_per_txn < 1:
            raise ValueError("ops_per_txn must be >= 1")
        if hot_keys is not None and not 0 < hot_keys <= num_keys:
            raise ValueError("hot_keys must be in (0, num_keys]")
        self.num_keys = num_keys
        self.value_size = value_size
        self.write_ratio = write_ratio
        self.ops_per_txn = ops_per_txn
        self.hot_keys = hot_keys if hot_keys is not None else num_keys
        self.zipf_theta = zipf_theta
        self.rmw = rmw
        self._zipf: Optional[ZipfSampler] = None
        if zipf_theta > 0:
            self._zipf = ZipfSampler(self.hot_keys, zipf_theta, random.Random(7))

    # -- schema & data -------------------------------------------------------

    def create_schema(self, catalog) -> None:
        from repro.kvs.catalog import TableSpec

        catalog.add_table(
            TableSpec(
                table_id=TABLE_KV,
                name="kv",
                max_keys=self.num_keys,
                value_size=self.value_size,
            )
        )

    def load(self, catalog, memory_nodes: Dict[int, Any], rng: random.Random) -> None:
        catalog.load(
            memory_nodes, TABLE_KV, ((key, 0) for key in range(self.num_keys))
        )

    # -- transactions -------------------------------------------------------------

    def _sample_key(self, rng: random.Random) -> int:
        if self._zipf is not None:
            return self._zipf.sample_with(rng)
        return rng.randrange(self.hot_keys)

    def next_transaction(self, rng: random.Random) -> Callable:
        keys = []
        while len(keys) < self.ops_per_txn:
            key = self._sample_key(rng)
            if key not in keys:
                keys.append(key)
        is_write = [rng.random() < self.write_ratio for _ in keys]
        stamp = rng.getrandbits(30)

        if self.rmw:

            def rmw_logic(tx):
                for key, write in zip(keys, is_write):
                    if write:
                        value = yield from tx.read_for_update("kv", key)
                        tx.write("kv", key, (value or 0) + 1)
                    else:
                        yield from tx.read("kv", key)
                return None

            return rmw_logic

        def blind_logic(tx):
            for key, write in zip(keys, is_write):
                if write:
                    tx.write("kv", key, stamp)
                else:
                    yield from tx.read("kv", key)
            return None

        if any(not write for write in is_write):
            return blind_logic

        # Pure blind writes: no reads, so plain (non-generator) logic.
        def pure_write_logic(tx):
            for key in keys:
                tx.write("kv", key, stamp)
            return None

        return pure_write_logic
