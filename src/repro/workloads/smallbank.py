"""SmallBank: the banking OLTP benchmark (§4.1).

Two tables keyed by account id — ``savings`` and ``checking`` — with
16-byte balance values, and the standard six transaction profiles.
The default mix is ~85% writes, matching the paper's characterisation.

The money-conservation invariant (transfers move balance without
creating or destroying it) is what the integration tests check; the
``conserving_only`` flag restricts the mix to balance-neutral
transactions so the global total is exactly preserved.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.workloads.base import Workload

__all__ = ["SmallBank", "TABLE_SAVINGS", "TABLE_CHECKING"]

TABLE_SAVINGS = 0
TABLE_CHECKING = 1

# Standard SmallBank mix (H-Store distribution); ~85% of transactions
# write at least one balance.
DEFAULT_MIX = {
    "transact_savings": 15,
    "deposit_checking": 15,
    "send_payment": 25,
    "write_check": 15,
    "amalgamate": 15,
    "balance": 15,
}

INITIAL_BALANCE = 10_000


class SmallBank(Workload):
    """The SmallBank workload over the DKVS transactional API."""

    name = "smallbank"

    def __init__(
        self,
        accounts: int = 10_000,
        value_size: int = 16,
        hot_accounts: Optional[int] = None,
        mix: Optional[Dict[str, float]] = None,
        conserving_only: bool = False,
    ) -> None:
        if accounts < 2:
            raise ValueError("need at least two accounts")
        self.accounts = accounts
        self.value_size = value_size
        self.hot_accounts = hot_accounts if hot_accounts is not None else accounts
        if not 2 <= self.hot_accounts <= accounts:
            raise ValueError("hot_accounts must be in [2, accounts]")
        if conserving_only:
            self.mix = {"send_payment": 60, "amalgamate": 25, "balance": 15}
        else:
            self.mix = dict(mix) if mix else dict(DEFAULT_MIX)

    # -- schema & data ------------------------------------------------------

    def create_schema(self, catalog) -> None:
        from repro.kvs.catalog import TableSpec

        catalog.add_table(
            TableSpec(TABLE_SAVINGS, "savings", self.accounts, self.value_size)
        )
        catalog.add_table(
            TableSpec(TABLE_CHECKING, "checking", self.accounts, self.value_size)
        )

    def load(self, catalog, memory_nodes: Dict[int, Any], rng: random.Random) -> None:
        items = ((account, INITIAL_BALANCE) for account in range(self.accounts))
        catalog.load(memory_nodes, TABLE_SAVINGS, items)
        items = ((account, INITIAL_BALANCE) for account in range(self.accounts))
        catalog.load(memory_nodes, TABLE_CHECKING, items)

    def total_balance(self, catalog, memory_nodes) -> int:
        """Sum of all balances on primary replicas (invariant probe)."""
        total = 0
        for table_id in (TABLE_SAVINGS, TABLE_CHECKING):
            for account in range(self.accounts):
                slot = catalog.slot_for(table_id, account)
                primary = catalog.primary(table_id, slot)
                entry = memory_nodes[primary].slot(table_id, slot)
                if entry.present:
                    total += entry.value
        return total

    # -- transactions -------------------------------------------------------------

    def _account(
        self, rng: random.Random, home: Optional[int] = None
    ) -> int:
        return home if home is not None else rng.randrange(self.hot_accounts)

    def _two_accounts(self, rng: random.Random, home: Optional[int] = None):
        first = self._account(rng, home)
        second = rng.randrange(self.hot_accounts)
        while second == first:
            second = rng.randrange(self.hot_accounts)
        return first, second

    def next_transaction(self, rng: random.Random) -> Callable:
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng)

    def user_transaction(self, user: int, rng: random.Random) -> Callable:
        """One transaction on behalf of *user*: the primary account is
        the user's home account, so a skewed user population produces
        the matching skewed key-access pattern."""
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng, home=user % self.hot_accounts)

    def _txn_transact_savings(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        account = self._account(rng, home)
        amount = rng.randint(1, 100)

        def logic(tx):
            balance = yield from tx.read_for_update("savings", account)
            tx.write("savings", account, (balance or 0) + amount)
            return None

        return logic

    def _txn_deposit_checking(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        account = self._account(rng, home)
        amount = rng.randint(1, 100)

        def logic(tx):
            balance = yield from tx.read_for_update("checking", account)
            tx.write("checking", account, (balance or 0) + amount)
            return None

        return logic

    def _txn_send_payment(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sender, receiver = self._two_accounts(rng, home)
        amount = rng.randint(1, 50)

        def logic(tx):
            from_balance = yield from tx.read_for_update("checking", sender)
            if (from_balance or 0) < amount:
                tx.abort("insufficient funds")
            to_balance = yield from tx.read_for_update("checking", receiver)
            tx.write("checking", sender, from_balance - amount)
            tx.write("checking", receiver, (to_balance or 0) + amount)
            return None

        return logic

    def _txn_write_check(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        account = self._account(rng, home)
        amount = rng.randint(1, 50)

        def logic(tx):
            savings = yield from tx.read("savings", account)
            checking = yield from tx.read_for_update("checking", account)
            penalty = 1 if (savings or 0) + (checking or 0) < amount else 0
            tx.write("checking", account, (checking or 0) - amount - penalty)
            return None

        return logic

    def _txn_amalgamate(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        source, destination = self._two_accounts(rng, home)

        def logic(tx):
            savings = yield from tx.read_for_update("savings", source)
            checking = yield from tx.read_for_update("checking", source)
            dest_checking = yield from tx.read_for_update("checking", destination)
            moved = (savings or 0) + (checking or 0)
            tx.write("savings", source, 0)
            tx.write("checking", source, 0)
            tx.write("checking", destination, (dest_checking or 0) + moved)
            return None

        return logic

    def _txn_balance(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        account = self._account(rng, home)

        def logic(tx):
            savings = yield from tx.read("savings", account)
            checking = yield from tx.read("checking", account)
            return (savings or 0) + (checking or 0)

        return logic
