"""TATP: the telecom application transaction processing benchmark.

Four tables (subscriber, access_info, special_facility,
call_forwarding) with 48-byte values and the standard seven-profile
mix, ~80% of which is read-only (§4.1 "workload characteristics").

Keys follow the benchmark's structure: subscribers are dense ids;
access-info and special-facility rows are keyed by (subscriber id,
type 1..4); call-forwarding rows by (subscriber id, sf type,
start hour in {0, 8, 16}).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.workloads.base import Workload

__all__ = ["Tatp"]

TABLE_SUBSCRIBER = 0
TABLE_ACCESS_INFO = 1
TABLE_SPECIAL_FACILITY = 2
TABLE_CALL_FORWARDING = 3

# The standard TATP mix: 80% reads / 20% updates+inserts+deletes.
DEFAULT_MIX = {
    "get_subscriber_data": 35,
    "get_new_destination": 10,
    "get_access_data": 35,
    "update_subscriber_data": 2,
    "update_location": 14,
    "insert_call_forwarding": 2,
    "delete_call_forwarding": 2,
}

START_HOURS = (0, 8, 16)
SF_TYPES = (1, 2, 3, 4)


class Tatp(Workload):
    """The TATP workload over the DKVS transactional API."""

    name = "tatp"

    def __init__(
        self,
        subscribers: int = 10_000,
        value_size: int = 48,
        mix: Optional[Dict[str, float]] = None,
    ) -> None:
        if subscribers < 1:
            raise ValueError("need at least one subscriber")
        self.subscribers = subscribers
        self.value_size = value_size
        self.mix = dict(mix) if mix else dict(DEFAULT_MIX)

    # -- schema & data ------------------------------------------------------

    def create_schema(self, catalog) -> None:
        from repro.kvs.catalog import TableSpec

        n = self.subscribers
        catalog.add_table(TableSpec(TABLE_SUBSCRIBER, "subscriber", n, self.value_size))
        catalog.add_table(
            TableSpec(TABLE_ACCESS_INFO, "access_info", 4 * n, self.value_size)
        )
        catalog.add_table(
            TableSpec(
                TABLE_SPECIAL_FACILITY, "special_facility", 4 * n, self.value_size
            )
        )
        catalog.add_table(
            TableSpec(
                TABLE_CALL_FORWARDING, "call_forwarding", 12 * n, self.value_size
            )
        )

    def load(self, catalog, memory_nodes: Dict[int, Any], rng: random.Random) -> None:
        catalog.load(
            memory_nodes,
            TABLE_SUBSCRIBER,
            (
                (sid, {"bits": rng.getrandbits(10), "location": rng.getrandbits(32)})
                for sid in range(self.subscribers)
            ),
        )
        access_rows = []
        facility_rows = []
        forwarding_rows = []
        for sid in range(self.subscribers):
            # Each subscriber has 1-4 access-info and special-facility
            # rows; each active facility has 0-3 call-forwarding rows.
            for ai_type in rng.sample(SF_TYPES, rng.randint(1, 4)):
                access_rows.append(((sid, ai_type), {"data": rng.getrandbits(16)}))
            for sf_type in rng.sample(SF_TYPES, rng.randint(1, 4)):
                active = rng.random() < 0.85
                facility_rows.append(((sid, sf_type), {"is_active": active}))
                for hour in rng.sample(START_HOURS, rng.randint(0, 3)):
                    forwarding_rows.append(
                        ((sid, sf_type, hour), {"numberx": rng.getrandbits(32)})
                    )
        catalog.load(memory_nodes, TABLE_ACCESS_INFO, access_rows)
        catalog.load(memory_nodes, TABLE_SPECIAL_FACILITY, facility_rows)
        catalog.load(memory_nodes, TABLE_CALL_FORWARDING, forwarding_rows)

    # -- transactions -------------------------------------------------------------

    def _subscriber(
        self, rng: random.Random, home: Optional[int] = None
    ) -> int:
        return home if home is not None else rng.randrange(self.subscribers)

    def next_transaction(self, rng: random.Random) -> Callable:
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng)

    def user_transaction(self, user: int, rng: random.Random) -> Callable:
        """One transaction on behalf of *user*: every profile keys off
        the subscriber id, so the user's home subscriber carries the
        population's skew straight into the key space."""
        kind = self.pick(rng, self.mix)
        builder = getattr(self, f"_txn_{kind}")
        return builder(rng, home=user % self.subscribers)

    def _txn_get_subscriber_data(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)

        def logic(tx):
            row = yield from tx.read("subscriber", sid)
            return row

        return logic

    def _txn_get_new_destination(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        sf_type = rng.choice(SF_TYPES)
        hour = rng.choice(START_HOURS)

        def logic(tx):
            facility = yield from tx.read("special_facility", (sid, sf_type))
            if facility is None or not facility.get("is_active"):
                return None
            forwarding = yield from tx.read("call_forwarding", (sid, sf_type, hour))
            return forwarding

        return logic

    def _txn_get_access_data(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        ai_type = rng.choice(SF_TYPES)

        def logic(tx):
            row = yield from tx.read("access_info", (sid, ai_type))
            return row

        return logic

    def _txn_update_subscriber_data(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        sf_type = rng.choice(SF_TYPES)
        new_bits = rng.getrandbits(10)

        def logic(tx):
            row = yield from tx.read_for_update("subscriber", sid)
            if row is None:
                tx.abort("missing subscriber")
            tx.write("subscriber", sid, {**row, "bits": new_bits})
            facility = yield from tx.read_for_update("special_facility", (sid, sf_type))
            if facility is not None:
                tx.write(
                    "special_facility",
                    (sid, sf_type),
                    {**facility, "data_a": rng.getrandbits(8)},
                )
            return None

        return logic

    def _txn_update_location(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        location = rng.getrandbits(32)

        def logic(tx):
            row = yield from tx.read_for_update("subscriber", sid)
            if row is None:
                tx.abort("missing subscriber")
            tx.write("subscriber", sid, {**row, "location": location})
            return None

        return logic

    def _txn_insert_call_forwarding(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        sf_type = rng.choice(SF_TYPES)
        hour = rng.choice(START_HOURS)
        number = rng.getrandbits(32)

        def logic(tx):
            facility = yield from tx.read("special_facility", (sid, sf_type))
            if facility is None:
                tx.abort("no such facility")
            existing = yield from tx.read("call_forwarding", (sid, sf_type, hour))
            if existing is not None:
                tx.abort("row already exists")
            tx.insert("call_forwarding", (sid, sf_type, hour), {"numberx": number})
            return None

        return logic

    def _txn_delete_call_forwarding(
        self, rng: random.Random, home: Optional[int] = None
    ) -> Callable:
        sid = self._subscriber(rng, home)
        sf_type = rng.choice(SF_TYPES)
        hour = rng.choice(START_HOURS)

        def logic(tx):
            existing = yield from tx.read("call_forwarding", (sid, sf_type, hour))
            if existing is None:
                tx.abort("no row to delete")
            tx.delete("call_forwarding", (sid, sf_type, hour))
            return None

        return logic
