"""Command-line interface: run demos, litmus campaigns, and experiments.

Usage (also via ``python -m repro``)::

    python -m repro quickstart
    python -m repro litmus --protocol pandora --crash-probability 0.4
    python -m repro steady --workload smallbank --protocol tradlog
    python -m repro failover --workload tpcc --crash memory
    python -m repro recovery-latency --coordinators 1 8 32 64
    python -m repro perf --collapsed kernel.folded
    python -m repro perf --bench --baseline benchmarks/results/BENCH_KERNEL.json
    python -m repro load --sweep --workload smallbank --html curves.html
    python -m repro load --offered 300000 --protocols ford --oracle --progress
    python -m repro contention --protocols lotus vote1pc --thetas 1.5
    python -m repro contention --baseline benchmarks/results/BENCH_CONTENTION.json
    python -m repro obs-report --compare BENCH_LOAD.json fresh.json

Every command prints the same tables/series the benchmark harness
writes, so the paper's experiments are reproducible without pytest.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.bench.harness import (
    run_failover,
    run_recovery_latency,
    run_steady_state,
)
from repro.bench.report import format_series, format_table
from repro.workloads import MicroBenchmark, SmallBank, Tatp, TpcC

__all__ = ["main", "build_parser"]

PROTOCOLS = ("pandora", "baseline", "ford", "tradlog", "lotus", "vote1pc")


def _add_sanitize_flag(parser) -> None:
    parser.add_argument(
        "--sanitize", action="store_true",
        help="enable the PILL protocol sanitizer (repro.analysis): "
             "shadow the lock table at the verb layer and fail the run "
             "on any lock/log-discipline violation",
    )


def _add_obs_flags(parser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of the run to PATH "
             "(open in chrome://tracing or ui.perfetto.dev); "
             "PATH ending in .jsonl writes one event per line instead",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="print the observability report (per-verb counts, "
             "per-phase latency histograms, recovery metrics)",
    )


def _build_obs(args):
    """An Obs facade when ``--trace``/``--metrics``/``--snapshot`` ask
    for one, else None. The flight recorder rides along whenever the
    facade exists — it is what the JSONL export, the obs-report
    subcommand, and BENCH snapshots are derived from."""
    wants = (
        getattr(args, "trace", None)
        or getattr(args, "metrics", False)
        or getattr(args, "snapshot", None)
    )
    if not wants:
        return None
    from repro.obs import Obs

    if getattr(args, "trace", None):
        # Open now so a bad path fails before the run, not after it.
        try:
            args._trace_handle = open(args.trace, "w")
        except OSError as error:
            raise SystemExit(f"cannot write trace to {args.trace!r}: {error}")
    return Obs(trace=bool(getattr(args, "trace", None)), flight=True)


def _finish_obs(obs, args, commits=None) -> None:
    if obs is None:
        return
    if args.trace:
        with args._trace_handle as handle:
            if args.trace.endswith(".jsonl"):
                # Full export: run meta + tracer events + flight records,
                # the format ``repro obs-report`` consumes.
                obs.export_jsonl(handle)
            else:
                obs.tracer.export_chrome(handle)
        print(
            f"trace: {len(obs.tracer)} events, "
            f"{len(obs.flight.attempts)} flight records -> {args.trace}"
        )
    if args.metrics:
        print()
        print(obs.report(commits if commits is not None else obs.commit_count()))
        if obs.flight.attempts:
            from repro.obs.report import from_obs, print_report

            print()
            print_report([from_obs(obs)])


def _workload_factory(name: str, write_ratio: float) -> Callable:
    factories: Dict[str, Callable] = {
        "micro": lambda: MicroBenchmark(num_keys=10_000, write_ratio=write_ratio),
        "smallbank": lambda: SmallBank(accounts=5_000),
        "tatp": lambda: Tatp(subscribers=2_000),
        "tpcc": lambda: TpcC(warehouses=2, customers_per_district=100, items=1_000),
    }
    try:
        return factories[name]
    except KeyError:
        raise SystemExit(
            f"unknown workload {name!r}; choose from {sorted(factories)}"
        ) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pandora (EDBT 2025) reproduction — simulated DKVS experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("quickstart", help="run the crash-and-recover demo")

    litmus = sub.add_parser("litmus", help="run the litmus validation suite")
    litmus.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    litmus.add_argument("--rounds", type=int, default=30)
    litmus.add_argument("--crash-probability", type=float, default=0.4)
    litmus.add_argument("--seed", type=int, default=5)
    _add_sanitize_flag(litmus)

    steady = sub.add_parser("steady", help="steady-state throughput")
    steady.add_argument("--workload", default="micro")
    steady.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    steady.add_argument("--write-ratio", type=float, default=1.0)
    steady.add_argument("--duration-ms", type=float, default=20.0)
    steady.add_argument(
        "--snapshot", metavar="NAME", default=None,
        help="write benchmarks/results/BENCH_<NAME>.json with the run's "
             "throughput, latency, and flight-recorder accounting",
    )
    _add_sanitize_flag(steady)
    _add_obs_flags(steady)

    failover = sub.add_parser("failover", help="crash a node mid-run")
    failover.add_argument("--workload", default="micro")
    failover.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    failover.add_argument("--crash", default="compute", choices=("compute", "memory"))
    failover.add_argument("--write-ratio", type=float, default=1.0)
    failover.add_argument("--reuse", action="store_true",
                          help="restart the failed compute node (reuse resources)")
    _add_sanitize_flag(failover)
    _add_obs_flags(failover)

    latency = sub.add_parser(
        "recovery-latency", help="Table 2: recovery latency sweep"
    )
    latency.add_argument("--workload", default="micro")
    latency.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    latency.add_argument(
        "--coordinators", type=int, nargs="+", default=[1, 8, 32, 64]
    )
    latency.add_argument("--write-ratio", type=float, default=1.0)
    _add_obs_flags(latency)

    chaos = sub.add_parser(
        "chaos",
        help="seeded multi-fault chaos campaign over the recovery path",
    )
    chaos.add_argument(
        "--seeds", type=int, default=25,
        help="number of consecutive seeds to run (default 25; "
             "any bank >= 5 spans all five fault families)",
    )
    chaos.add_argument(
        "--seed-base", type=int, default=0,
        help="first seed of the bank (default 0)",
    )
    chaos.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    chaos.add_argument(
        "--replay", metavar="SCHEDULE.json", default=None,
        help="replay one schedule artifact instead of generating a bank",
    )
    chaos.add_argument(
        "--shrink", action="store_true",
        help="delta-debug each failing schedule to a locally-minimal "
             "fault set before reporting it",
    )
    chaos.add_argument(
        "--out", metavar="DIR", default=None,
        help="write failing (minimized, with --shrink) schedules to DIR "
             "as replayable JSON artifacts",
    )
    chaos.add_argument(
        "--fd-redetect-interval", type=float, default=2.0, metavar="MS",
        help="quiet period (ms) before a dead node whose recovery died "
             "mid-flight is re-declared failed (default 2.0; <= 0 "
             "disables re-detection)",
    )
    _add_sanitize_flag(chaos)

    perf = sub.add_parser(
        "perf",
        help="wall-clock kernel profiling and events/sec benchmarks",
    )
    perf.add_argument(
        "--bench", action="store_true",
        help="run the events/sec fleet sweep (coordinators x key space) "
             "instead of a profiled steady-state run",
    )
    perf.add_argument("--workload", default="micro")
    perf.add_argument("--protocol", default="pandora", choices=PROTOCOLS)
    perf.add_argument("--write-ratio", type=float, default=1.0)
    perf.add_argument("--duration-ms", type=float, default=20.0)
    perf.add_argument(
        "--top", type=int, default=20,
        help="rows in the hottest-sites table (default 20)",
    )
    perf.add_argument(
        "--collapsed", metavar="PATH", default=None,
        help="write collapsed stacks to PATH (the 'a;b;c <ns>' format "
             "flamegraph.pl and speedscope ingest)",
    )
    perf.add_argument(
        "--repeats", type=int, default=3,
        help="with --bench: wall-time repeats per fleet (best is kept)",
    )
    perf.add_argument(
        "--snapshot", metavar="NAME", default=None,
        help="with --bench: write benchmarks/results/BENCH_<NAME>.json",
    )
    perf.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="with --bench: compare events/sec against a committed "
             "BENCH_KERNEL.json and exit 1 on regression",
    )
    perf.add_argument(
        "--tolerance", type=float, default=None,
        help="fractional events/sec drop allowed vs the baseline "
             "(default: the baseline's own tolerance field, 0.25)",
    )
    perf.add_argument(
        "--compare", nargs=2, metavar=("OLD.json", "NEW.json"), default=None,
        help="render a per-fleet delta table between two BENCH_*.json "
             "snapshots (events/sec, wall us/event, step drift)",
    )

    report = sub.add_parser(
        "obs-report",
        help="render flight-recorder reports from --trace *.jsonl exports",
    )
    report.add_argument(
        "paths", nargs="*", metavar="TRACE.jsonl",
        help="one or more JSONL trace exports (repro <cmd> --trace out.jsonl)",
    )
    report.add_argument(
        "--html", metavar="PATH", default=None,
        help="also write a self-contained HTML report to PATH",
    )
    report.add_argument(
        "--check", action="store_true",
        help="exit 1 if any run violates the §4 logging claim",
    )
    report.add_argument(
        "--compare", nargs=2, metavar=("A.json", "B.json"), default=None,
        help="print a delta table between two BENCH_*.json snapshots "
             "(load sweeps or steady-state payloads) instead of a "
             "flight-recorder report",
    )

    from repro.load.arrivals import ARRIVAL_KINDS

    load = sub.add_parser(
        "load",
        help="open-loop load observatory: latency-vs-offered-load curves "
             "with live SLO monitors and workload invariants",
    )
    load.add_argument("--workload", default="smallbank")
    load.add_argument(
        "--protocols", nargs="+", default=["pandora", "ford", "tradlog"],
        choices=PROTOCOLS, metavar="PROTO",
        help="protocols to sweep over the same offered grid "
             "(default: pandora ford tradlog)",
    )
    load.add_argument(
        "--sweep", action="store_true",
        help="walk the default offered grid (multiples of estimated "
             "closed-loop capacity); this is the default when --offered "
             "is not given",
    )
    load.add_argument(
        "--offered", type=float, nargs="+", default=None, metavar="TPS",
        help="explicit offered rates (tps) instead of the capacity grid",
    )
    load.add_argument(
        "--arrivals", default="poisson", choices=sorted(ARRIVAL_KINDS),
        help="arrival process shaping the open-loop request stream",
    )
    load.add_argument(
        "--users", type=int, default=256,
        help="Zipf-skewed user population size (default 256)",
    )
    load.add_argument(
        "--theta", type=float, default=0.99,
        help="Zipf skew over users (default 0.99)",
    )
    load.add_argument("--duration-ms", type=float, default=10.0)
    load.add_argument(
        "--oracle", action="store_true",
        help="run end-of-run consistency checks: the chaos oracle plus "
             "the workload-level invariants (money conservation for "
             "smallbank, order-id consistency for tpcc)",
    )
    load.add_argument(
        "--crash-at-ms", type=float, default=None, metavar="MS",
        help="crash compute node 0 at this point in the measured window "
             "(chaos under load; pair with --oracle)",
    )
    load.add_argument(
        "--slo-p99-us", type=float, default=None, metavar="US",
        help="rolling-window p99 target; breaches are counted live",
    )
    load.add_argument(
        "--slo-abort-rate", type=float, default=None, metavar="FRAC",
        help="rolling-window abort-rate target (fraction, e.g. 0.05)",
    )
    load.add_argument(
        "--progress", action="store_true",
        help="print live SLO gauge lines during the run and per-point "
             "sweep progress",
    )
    load.add_argument(
        "--snapshot", metavar="NAME", default=None,
        help="write benchmarks/results/BENCH_<NAME>.json with the curves",
    )
    load.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare against a committed BENCH_LOAD.json and exit 1 on "
             "regression (throughput floor, CO-p99 ceiling, exact commits)",
    )
    load.add_argument(
        "--tolerance", type=float, default=None,
        help="fractional drift allowed vs the baseline "
             "(default: the baseline's own tolerance field)",
    )
    load.add_argument(
        "--html", metavar="PATH", default=None,
        help="write an HTML report with SVG curve plots to PATH",
    )
    load.add_argument("--seed", type=int, default=42)

    from repro.load.contention import CONTENTION_PROTOCOLS, CONTENTION_THETAS

    contention = sub.add_parser(
        "contention",
        help="hot-key contention sweep: the 1k-key RMW microbenchmark "
             "at several Zipf skews across the full protocol zoo",
    )
    contention.add_argument(
        "--protocols", nargs="+", default=list(CONTENTION_PROTOCOLS),
        choices=PROTOCOLS, metavar="PROTO",
        help="protocols to sweep "
             f"(default: {' '.join(CONTENTION_PROTOCOLS)})",
    )
    contention.add_argument(
        "--thetas", type=float, nargs="+",
        default=list(CONTENTION_THETAS), metavar="S",
        help="Zipf skews over the hot keyspace "
             f"(default: {' '.join(str(t) for t in CONTENTION_THETAS)})",
    )
    contention.add_argument(
        "--offered", type=float, nargs="+",
        default=[150_000.0, 600_000.0], metavar="TPS",
        help="offered rates per (protocol, theta) pair "
             "(default: 150000 600000 — one sub-saturation point and "
             "one past the knee)",
    )
    contention.add_argument("--duration-ms", type=float, default=5.0)
    contention.add_argument(
        "--users", type=int, default=64,
        help="user population size (default 64)",
    )
    contention.add_argument(
        "--progress", action="store_true",
        help="print per-point progress lines during the sweep",
    )
    contention.add_argument(
        "--snapshot", metavar="NAME", default=None,
        help="write benchmarks/results/BENCH_<NAME>.json with the curves",
    )
    contention.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="compare against a committed BENCH_CONTENTION.json and "
             "exit 1 on regression (throughput floor, p99/abort-rate "
             "ceilings, exact commits)",
    )
    contention.add_argument(
        "--tolerance", type=float, default=None,
        help="fractional drift allowed vs the baseline "
             "(default: the baseline's own tolerance field)",
    )
    contention.add_argument(
        "--html", metavar="PATH", default=None,
        help="write an HTML report with SVG curve plots to PATH",
    )
    contention.add_argument("--seed", type=int, default=42)
    return parser


def _run_quickstart() -> int:
    from repro import Cluster, ClusterConfig

    workload = MicroBenchmark(num_keys=10_000, write_ratio=1.0)
    cluster = Cluster(ClusterConfig(protocol="pandora", seed=7), workload)
    cluster.start()
    cluster.run(until=0.010)
    cluster.crash_compute(0, at=0.010)
    cluster.run(until=0.040)
    record = cluster.recovery.records[0]
    stats = cluster.aggregate_stats()
    print(
        format_table(
            "Quickstart: compute crash at t=10ms under Pandora",
            ["metric", "value"],
            [
                ("detected at", f"{record.detected_at * 1e3:.2f} ms"),
                ("log-recovery latency", f"{record.log_recovery_latency * 1e6:.0f} us"),
                ("rolled forward / back", f"{record.rolled_forward} / {record.rolled_back}"),
                ("commits", stats.commits),
                ("stray locks stolen", stats.locks_stolen),
            ],
        )
    )
    return 0


def _cmd_litmus(args) -> int:
    from repro.litmus import LITMUS_SUITE, LitmusRunner

    failed = 0
    sanitizer_violations = 0
    for spec in LITMUS_SUITE():
        runner = LitmusRunner(
            spec,
            protocol=args.protocol,
            rounds=args.rounds,
            crash_probability=args.crash_probability,
            seed=args.seed,
            sanitize=args.sanitize,
        )
        report = runner.run()
        print(report.summary())
        if not report.passed:
            failed += 1
            for violation in report.violations[:3]:
                print(f"    {violation.description}")
        sanitizer = runner.cluster.sanitizer
        if sanitizer is not None and sanitizer.violations:
            sanitizer_violations += len(sanitizer.violations)
            print(f"    sanitizer: {len(sanitizer.violations)} violation(s)")
            for violation in sanitizer.violations[:3]:
                print(f"      [{violation.code}] {violation.message}")
    if sanitizer_violations:
        print(f"sanitizer flagged {sanitizer_violations} violation(s) total")
    return 1 if (failed or sanitizer_violations) else 0


def _cmd_steady(args) -> int:
    factory = _workload_factory(args.workload, args.write_ratio)
    obs = _build_obs(args)
    result = run_steady_state(
        factory, args.protocol, duration=args.duration_ms * 1e-3, obs=obs,
        sanitize=args.sanitize,
    )
    print(result.row())
    if args.snapshot:
        from repro.bench.report import bench_snapshot_payload, write_bench_snapshot

        write_bench_snapshot(args.snapshot, bench_snapshot_payload(result, obs))
    _finish_obs(obs, args, commits=result.commits)
    return 0


def _cmd_failover(args) -> int:
    factory = _workload_factory(args.workload, args.write_ratio)
    obs = _build_obs(args)
    result = run_failover(
        factory,
        args.protocol,
        crash_kind=args.crash,
        reuse_resources=args.reuse,
        obs=obs,
        sanitize=args.sanitize,
    )
    print(
        format_series(
            f"fail-over timeline ({args.workload}, {args.protocol}, "
            f"{args.crash} crash{', reuse' if args.reuse else ''})",
            result.series,
            markers=[(result.crash_at, "crash")],
        )
    )
    print(
        f"pre={result.pre_rate / 1e6:.3f} Mtps  "
        f"during={result.during_rate / 1e6:.3f}  "
        f"post={result.post_rate / 1e6:.3f}"
    )
    _finish_obs(obs, args)
    return 0


def _cmd_recovery_latency(args) -> int:
    factory = _workload_factory(args.workload, args.write_ratio)
    obs = _build_obs(args)
    rows = []
    for coordinators in args.coordinators:
        result = run_recovery_latency(
            factory,
            coordinators_per_node=coordinators,
            protocol=args.protocol,
            crash_at=6e-3,
            obs=obs,
        )
        rows.append((coordinators, f"{result.latency * 1e6:9.1f}"))
    print(
        format_table(
            f"log-recovery latency ({args.workload}, {args.protocol})",
            ["coordinators/node", "latency (us)"],
            rows,
        )
    )
    _finish_obs(obs, args)
    return 0


def _cmd_chaos(args) -> int:
    import os
    from dataclasses import replace

    from repro.chaos import (
        Schedule,
        generate_schedule,
        run_schedule,
        shrink_schedule,
    )

    if args.replay:
        with open(args.replay) as handle:
            schedules = [Schedule.from_json(handle.read())]
    else:
        schedules = [
            replace(generate_schedule(seed), protocol=args.protocol)
            for seed in range(args.seed_base, args.seed_base + args.seeds)
        ]

    redetect_interval = args.fd_redetect_interval * 1e-3
    failures = 0
    for schedule in schedules:
        result = run_schedule(
            schedule,
            sanitize=args.sanitize,
            fd_redetect_interval=redetect_interval,
        )
        print(result.summary())
        if result.ok:
            continue
        failures += 1
        for violation in result.violations[:5]:
            print(f"    [{violation.code}] {violation.detail}")
        artifact = schedule
        if args.shrink:
            def fails(
                candidate,
                _sanitize=args.sanitize,
                _redetect=redetect_interval,
            ):
                return not run_schedule(
                    candidate,
                    sanitize=_sanitize,
                    fd_redetect_interval=_redetect,
                ).ok

            artifact, runs = shrink_schedule(schedule, fails=fails)
            print(
                f"    shrunk {len(schedule.faults)} -> "
                f"{len(artifact.faults)} fault(s) in {runs} run(s)"
            )
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"chaos-seed{schedule.seed}.json")
            with open(path, "w") as handle:
                handle.write(artifact.to_json() + "\n")
            print(f"    wrote {path}")
    total = len(schedules)
    print(f"chaos campaign: {total - failures}/{total} schedule(s) clean")
    return 1 if failures else 0


def _cmd_perf(args) -> int:
    from repro.bench import kernelperf

    if args.compare:
        import json as json_module
        import os

        from repro.obs.report import compare_snapshots

        old_path, new_path = args.compare
        snapshots = []
        for path in (old_path, new_path):
            try:
                with open(path) as handle:
                    snapshots.append(json_module.load(handle))
            except (OSError, ValueError) as error:
                raise SystemExit(f"cannot read snapshot {path!r}: {error}")
        print(
            compare_snapshots(
                snapshots[0],
                snapshots[1],
                label_before=os.path.basename(old_path),
                label_after=os.path.basename(new_path),
            )
        )
        return 0

    if args.bench:
        results = kernelperf.run_suite(repeats=args.repeats)
        print(kernelperf.format_suite(results))
        payload = kernelperf.suite_payload(
            results,
            tolerance=(
                args.tolerance
                if args.tolerance is not None
                else kernelperf.DEFAULT_TOLERANCE
            ),
        )
        if args.snapshot:
            from repro.bench.report import write_bench_snapshot

            write_bench_snapshot(args.snapshot, payload)
        if args.baseline:
            import json as json_module

            try:
                with open(args.baseline) as handle:
                    baseline = json_module.load(handle)
            except (OSError, ValueError) as error:
                raise SystemExit(
                    f"cannot read baseline {args.baseline!r}: {error}"
                )
            failures = kernelperf.compare_to_baseline(
                payload, baseline, tolerance=args.tolerance
            )
            if failures:
                print("kernel-perf regression vs baseline:")
                for failure in failures:
                    print(f"  {failure}")
                return 1
            print(f"kernel-perf: within tolerance of {args.baseline}")
        return 0

    # Profiled steady-state run: wall-time attribution per subsystem /
    # site / txn phase. A lightweight Obs (no tracer, no flight) rides
    # along purely so TxnTrace.focus asserts phases to the profiler.
    from repro.obs import Obs
    from repro.obs.profile import KernelProfiler

    factory = _workload_factory(args.workload, args.write_ratio)
    profiler = KernelProfiler()
    obs = Obs(trace=False, flight=False)
    profiler.run_begin()
    result = run_steady_state(
        factory,
        args.protocol,
        duration=args.duration_ms * 1e-3,
        obs=obs,
        profiler=profiler,
    )
    profiler.run_end()
    print(result.row())
    print()
    print(profiler.report(top=args.top))
    print(
        "note: 'run wall' brackets cluster build + run; use "
        "`repro perf --bench` for clean events/sec numbers."
    )
    if args.collapsed:
        try:
            with open(args.collapsed, "w") as handle:
                for line in profiler.collapsed():
                    handle.write(line + "\n")
        except OSError as error:
            raise SystemExit(
                f"cannot write collapsed stacks to {args.collapsed!r}: {error}"
            )
        print(f"collapsed stacks -> {args.collapsed}")
    return 0


def _load_workload_setup(name: str, oracle: bool):
    """(factory, monitor_factory) for one ``repro load`` run.

    The load sizes are smaller than the steady-state ones: open-loop
    points build a fresh cluster per (protocol, offered) pair, and the
    Zipf population concentrates traffic on a hot subset anyway.
    With ``--oracle``, smallbank switches to its conserving-only mix so
    the money-conservation invariant is exact, and tpcc gains the
    order-id monitor.
    """
    from repro.load import ConservationMonitor, OrderIdMonitor

    if name == "smallbank":
        factory = lambda: SmallBank(  # noqa: E731
            accounts=2_000, hot_accounts=500, conserving_only=oracle
        )
        monitors = (lambda w: [ConservationMonitor(w)]) if oracle else None
        return factory, monitors
    if name == "tatp":
        return (lambda: Tatp(subscribers=2_000)), None
    if name == "tpcc":
        factory = lambda: TpcC(  # noqa: E731
            warehouses=2, customers_per_district=100, items=1_000
        )
        monitors = (lambda w: [OrderIdMonitor(w)]) if oracle else None
        return factory, monitors
    if name == "micro":
        return (lambda: MicroBenchmark(num_keys=10_000, write_ratio=1.0)), None
    raise SystemExit(
        f"unknown workload {name!r}; "
        "choose from ['micro', 'smallbank', 'tatp', 'tpcc']"
    )


def _cmd_load(args) -> int:
    from repro.load import (
        SloMonitor,
        compare_to_baseline,
        format_curves,
        make_arrivals,
        run_sweep,
        sweep_payload,
    )

    factory, monitor_factory = _load_workload_setup(args.workload, args.oracle)
    progress = print if args.progress else None
    slo_factory = None
    if args.slo_p99_us or args.slo_abort_rate or args.progress:
        slo_factory = lambda: SloMonitor(  # noqa: E731
            p99_target=(
                args.slo_p99_us * 1e-6 if args.slo_p99_us else None
            ),
            abort_rate_target=args.slo_abort_rate,
            progress=progress,
        )
    crash_compute = []
    if args.crash_at_ms is not None:
        crash_compute.append((0, args.crash_at_ms * 1e-3))
    curves = run_sweep(
        factory,
        protocols=args.protocols,
        grid=args.offered,
        duration=args.duration_ms * 1e-3,
        arrivals=make_arrivals(args.arrivals),
        users=args.users,
        zipf_theta=args.theta,
        monitor_factory=monitor_factory,
        check_oracle=args.oracle,
        progress=progress,
        slo_factory=slo_factory,
        crash_compute=crash_compute,
        seed=args.seed,
    )
    print(format_curves(curves))
    payload = sweep_payload(
        curves,
        tolerance=(
            args.tolerance if args.tolerance is not None else 0.25
        ),
    )
    if args.snapshot:
        from repro.bench.report import write_bench_snapshot

        write_bench_snapshot(args.snapshot, payload)
    if args.html:
        from repro.obs.report import render_load_html

        try:
            with open(args.html, "w") as handle:
                handle.write(render_load_html(payload))
        except OSError as error:
            raise SystemExit(
                f"cannot write HTML report to {args.html!r}: {error}"
            )
        print(f"html report -> {args.html}")
    violations = sum(
        len(point.violations) for curve in curves for point in curve.points
    )
    if violations:
        print(f"load oracle: {violations} violation(s) — see tables above")
    if args.baseline:
        import json as json_module

        try:
            with open(args.baseline) as handle:
                baseline = json_module.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot read baseline {args.baseline!r}: {error}"
            )
        failures = compare_to_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        if failures:
            print("load regression vs baseline:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"load: within tolerance of {args.baseline}")
    return 1 if violations else 0


def _cmd_contention(args) -> int:
    from repro.load import (
        compare_contention_to_baseline,
        contention_payload,
        format_contention,
        run_contention_sweep,
    )

    curves = run_contention_sweep(
        protocols=args.protocols,
        thetas=args.thetas,
        grid=args.offered,
        duration=args.duration_ms * 1e-3,
        users=args.users,
        seed=args.seed,
        progress=print if args.progress else None,
    )
    print(format_contention(curves))
    payload = contention_payload(
        curves,
        tolerance=args.tolerance if args.tolerance is not None else 0.25,
    )
    if args.snapshot:
        from repro.bench.report import write_bench_snapshot

        write_bench_snapshot(args.snapshot, payload)
    if args.html:
        from repro.obs.report import render_load_html

        try:
            with open(args.html, "w") as handle:
                handle.write(
                    render_load_html(payload, title="Hot-key contention sweep")
                )
        except OSError as error:
            raise SystemExit(
                f"cannot write HTML report to {args.html!r}: {error}"
            )
        print(f"html report -> {args.html}")
    if args.baseline:
        import json as json_module

        try:
            with open(args.baseline) as handle:
                baseline = json_module.load(handle)
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"cannot read baseline {args.baseline!r}: {error}"
            )
        failures = compare_contention_to_baseline(
            payload, baseline, tolerance=args.tolerance
        )
        if failures:
            print("contention regression vs baseline:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"contention: within tolerance of {args.baseline}")
    return 0


def _cmd_obs_report(args) -> int:
    from repro.obs.report import (
        check_log_write_claim,
        load_jsonl,
        print_report,
        render_html,
    )

    if args.compare:
        import json as json_module

        from repro.obs.report import compare_snapshots

        payloads = []
        for path in args.compare:
            try:
                with open(path) as handle:
                    payloads.append(json_module.load(handle))
            except (OSError, ValueError) as error:
                raise SystemExit(f"cannot read snapshot {path!r}: {error}")
        print(
            compare_snapshots(
                payloads[0],
                payloads[1],
                label_before=args.compare[0],
                label_after=args.compare[1],
            )
        )
        if not args.paths:
            return 0
    elif not args.paths:
        raise SystemExit(
            "obs-report needs TRACE.jsonl paths or --compare A.json B.json"
        )

    runs = []
    for path in args.paths:
        try:
            runs.append(load_jsonl(path))
        except OSError as error:
            raise SystemExit(f"cannot read trace {path!r}: {error}")
    print_report(runs)
    if args.html:
        html = render_html(runs)
        try:
            with open(args.html, "w") as handle:
                handle.write(html)
        except OSError as error:
            raise SystemExit(f"cannot write HTML report to {args.html!r}: {error}")
        print(f"html report -> {args.html}")
    if args.check:
        violations = sum(
            claim["violations"] for run in runs for claim in check_log_write_claim(run)
        )
        if violations:
            print(f"logging claim check FAILED: {violations} violation(s)")
            return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "quickstart": lambda a: _run_quickstart(),
        "litmus": _cmd_litmus,
        "steady": _cmd_steady,
        "failover": _cmd_failover,
        "recovery-latency": _cmd_recovery_latency,
        "chaos": _cmd_chaos,
        "perf": _cmd_perf,
        "obs-report": _cmd_obs_report,
        "load": _cmd_load,
        "contention": _cmd_contention,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
