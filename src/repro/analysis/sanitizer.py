"""Online PILL protocol sanitizer — a lockset checker for RDMA verbs.

In the spirit of lockset race detectors (Eraser), the sanitizer shadows
the cluster's lock table at the verb layer and asserts the paper's
lock/log discipline on every simulated verb, online:

``PILL-STEAL``   a CAS that replaces a held lock word is legal only
                 when the embedded owner id is in the failed-ids bitset
                 (§3.1.2) — or when it is recovery's owner-conditioned
                 release.
``PILL-WRITE``   ``write_object`` may only move an object *forward*
                 (version-advancing) while the issuing compute holds
                 the object's lock (§2.3 / §3.1.5).
``PILL-LOG``     an undo-log record may only cover objects its issuer
                 currently holds — the lock-to-log order (§3.1.5).
``PILL-APPLY``   a version-advancing ``write_object`` requires a valid
                 landed log record covering the object at (at least)
                 that version: the write-set is durably logged before
                 any in-place update (§3.1.5, the decision point).
``PILL-DECIDE``  unlocking an object with a still-valid undo record and
                 no commit evidence loses the abort decision (§3.1.5:
                 aborts truncate their records *before* unlocking).
``PILL-UNLOCK``  only the lock's owner (or recovery) may release it —
                 FORD's complicit abort violates exactly this.
``PILL-OVERWRITE`` lock words are acquired by CAS, never by direct
                 write of a nonzero word.
``PILL-TRUNCATE`` whole-region log truncation belongs to recovery
                 (§3.2.3); engines invalidate individual records.

The sanitizer hooks two layers:

* ``MemoryNode.apply`` (``before_verb``/``after_verb``) — state checks
  against ground truth at the atomic execution point;
* ``QueuePair.post`` (``on_post``) — compute-side *ordering* checks
  (PILL-DECIDE), where the engine's post order is ground truth even
  though arrivals at different memory nodes may interleave.

It mirrors the ``NOOP_OBS`` pattern: disabled runs use the slotted
:data:`repro.analysis.NOOP_SANITIZER` singleton and stay bit-identical
(the sanitizer is passive — it never schedules events or touches RNG
state). Violations carry the recent verb timeline and, when an ``Obs``
tracer is attached, also drop an instant event into the trace.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.protocol.locks import (
    ANONYMOUS_OWNER,
    is_locked,
    is_ticket_word,
    owner_of,
)

__all__ = [
    "SanitizerViolation",
    "PillSanitizer",
    "DEFAULT_RECOVERY_ID",
    "STEAL_LIVE_OWNER",
    "WRITE_WITHOUT_LOCK",
    "WRITE_WITHOUT_LOG",
    "LOG_WITHOUT_LOCK",
    "UNLOCK_BEFORE_TRUNCATE",
    "UNLOCK_BY_NON_OWNER",
    "LOCK_OVERWRITE",
    "NONRECOVERY_TRUNCATE",
]

# Violation codes (stable identifiers; tests and CI match on these).
STEAL_LIVE_OWNER = "PILL-STEAL"
WRITE_WITHOUT_LOCK = "PILL-WRITE"
WRITE_WITHOUT_LOG = "PILL-APPLY"
LOG_WITHOUT_LOCK = "PILL-LOG"
UNLOCK_BEFORE_TRUNCATE = "PILL-DECIDE"
UNLOCK_BY_NON_OWNER = "PILL-UNLOCK"
LOCK_OVERWRITE = "PILL-OVERWRITE"
NONRECOVERY_TRUNCATE = "PILL-TRUNCATE"

# Mirrors repro.cluster.builder.RECOVERY_SERVER_ID (kept as a literal
# here so the sanitizer never imports the builder it is wired into).
DEFAULT_RECOVERY_ID = 10_000

# Lock-intent records (tradlog's pre-lock log) carry txn_id == -1 and
# 4-tuple entries; they are exempt from undo-record invariants.
_LOCK_INTENT_TXN = -1


class SanitizerViolation(AssertionError):
    """A PILL invariant broke; carries the recent verb timeline."""

    def __init__(
        self,
        code: str,
        message: str,
        time: float = 0.0,
        compute: Optional[int] = None,
        node: Optional[int] = None,
        verb: Optional[str] = None,
        timeline: Iterable[str] = (),
    ) -> None:
        self.code = code
        self.message = message
        self.time = time
        self.compute = compute
        self.node = node
        self.verb = verb
        self.timeline = list(timeline)
        lines = [
            f"[{code}] {message} "
            f"(t={time * 1e6:.2f}us compute={compute} memory={node} verb={verb})"
        ]
        if self.timeline:
            lines.append("recent verbs (oldest first):")
            lines.extend(f"  {entry}" for entry in self.timeline)
        super().__init__("\n".join(lines))


class _TrackedRecord:
    """Compute-side view of one posted undo-log record copy."""

    __slots__ = ("record", "coord_id", "node_id", "covers", "record_id")

    def __init__(self, record, node_id: int, covers: Dict[Tuple[int, int], int]) -> None:
        self.record = record  # pins the object so id() stays unique
        self.coord_id = record.coord_id
        self.node_id = node_id
        self.covers = covers
        self.record_id: Optional[int] = None


class PillSanitizer:
    """Shadow lock table + undo-record tracker asserting PILL online.

    ``strict=True`` raises :class:`SanitizerViolation` at the violating
    verb (unit-test mode); ``strict=False`` collects violations in
    :attr:`violations` so buggy runs complete and report at the end
    (cluster / mutation-harness mode). Either way the verb executes —
    the sanitizer observes, it never alters simulation behaviour.
    """

    enabled = True

    def __init__(
        self,
        memory_nodes: Dict[int, Any],
        failed_ids: Any = frozenset(),
        recovery_id: int = DEFAULT_RECOVERY_ID,
        sim: Any = None,
        obs: Any = None,
        strict: bool = True,
        timeline_depth: int = 64,
    ) -> None:
        self.memory_nodes = memory_nodes
        # Anything supporting ``in`` (IdAllocator.failed Bitset, a set).
        self.failed_ids = failed_ids
        self.recovery_id = recovery_id
        self.sim = sim
        self.obs = obs
        self.strict = strict
        self.violations: List[SanitizerViolation] = []
        self._timeline: deque = deque(maxlen=timeline_depth)
        # Shadow lockset: (table, slot) -> (holder compute id, lock word).
        self._locks: Dict[Tuple[int, int], Tuple[int, int]] = {}
        # Lock-transition event log consumed by the race detector
        # (repro.analysis.races): (ts, table, slot, event, compute,
        # word) with event in {"grant", "steal", "release",
        # "overwrite"}. Append-only, never read by the sanitizer.
        self.lock_events: List[Tuple[float, int, int, str, int, int]] = []
        # Posted-record tracking for the compute-side ordering check.
        self._records_by_obj: Dict[int, _TrackedRecord] = {}
        self._records_by_id: Dict[Tuple[int, int, int], _TrackedRecord] = {}
        self._records_by_coord: Dict[int, List[_TrackedRecord]] = {}
        # Logical records (coord, txn) with at least one invalidation
        # posted: the decision reached the log before any unlock.
        self._decided: set = set()
        # dict-as-ordered-set: insertion order keeps reports deterministic
        self._coords_on_compute: Dict[int, Dict[int, bool]] = {}
        # Highest version posted via write_object, per compute per object.
        self._written: Dict[Tuple[int, Tuple[int, int]], int] = {}
        # LOTUS: slots under ticket-queue management (the lock server
        # re-grants on release, so the shadow lockset resyncs from
        # ground truth there), and the coord-id -> compute-node map
        # learned from faa_ticket posts (ticket words name the holding
        # *coordinator*; the lockset names the issuing *compute*).
        self._ticket_slots: set = set()
        self._coord_compute: Dict[int, int] = {}

    # -- helpers -------------------------------------------------------------

    def _now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def _trace(self, layer: str, compute: int, node: int, kind: str, args: Tuple) -> None:
        brief = repr(args)
        if len(brief) > 96:
            brief = brief[:93] + "..."
        self._timeline.append(
            f"{self._now() * 1e6:10.3f}us {layer:5s} c{compute}->m{node} {kind} {brief}"
        )

    def _violate(
        self, code: str, message: str, compute: int, node: int, verb: str
    ) -> None:
        violation = SanitizerViolation(
            code,
            message,
            time=self._now(),
            compute=compute,
            node=node,
            verb=verb,
            timeline=self._timeline,
        )
        self.violations.append(violation)
        if self.obs is not None:
            self.obs.tracer.instant(
                "sanitizer", code, self._now(), args={"message": message}
            )
        if self.strict:
            raise violation

    def _is_failed(self, coord_id: int) -> bool:
        return coord_id in self.failed_ids

    def _txn_entries(self, record) -> List[Tuple[int, int, int]]:
        """(table, slot, new_version) triples of a txn undo record."""
        triples = []
        for entry in record.entries:
            if len(entry) >= 5:
                triples.append((entry[0], entry[1], entry[4]))
        return triples

    def _has_landed_record(
        self, lock_word: int, table_id: int, slot: int, version: int
    ) -> bool:
        """A valid undo record covering (table, slot) at >= *version*
        exists in some alive log region — i.e. the write-set was
        durably logged before this in-place update (§3.1.5)."""
        owner = owner_of(lock_word) if is_locked(lock_word) else ANONYMOUS_OWNER
        for memory in self.memory_nodes.values():
            if not memory.alive:
                continue
            if owner != ANONYMOUS_OWNER:
                regions = [memory.log_regions.get(owner)]
            else:
                # Anonymous lock words (FORD/tradlog) cannot be
                # attributed; accept a covering record from any region.
                regions = list(memory.log_regions.values())
            for region in regions:
                if region is None or not region.header_valid:
                    continue
                for record in reversed(region.records):
                    if not record.valid or record.txn_id == _LOCK_INTENT_TXN:
                        continue
                    for entry_table, entry_slot, new_version in self._txn_entries(record):
                        if (
                            entry_table == table_id
                            and entry_slot == slot
                            and new_version >= version
                        ):
                            return True
        return False

    # -- compute-side hook (queue-pair post order) ---------------------------

    def on_post(self, compute_id: int, node_id: int, kind: str, args: Tuple, now: float) -> None:
        self._trace("post", compute_id, node_id, kind, args)
        if kind == "write_log":
            record = args[0]
            if record.txn_id == _LOCK_INTENT_TXN:
                return
            covers: Dict[Tuple[int, int], int] = {}
            for entry in record.entries:
                if len(entry) < 9:
                    continue
                # Changeless entries (read_for_update never followed by
                # a write: new_value None, not a delete) commit without
                # any write_object, so they cannot demand one.
                if entry[6] is None and entry[8]:
                    continue
                covers[(entry[0], entry[1])] = entry[4]
            tracked = _TrackedRecord(record, node_id, covers)
            self._records_by_obj[id(record)] = tracked
            self._records_by_coord.setdefault(record.coord_id, []).append(tracked)
            self._coords_on_compute.setdefault(compute_id, {})[record.coord_id] = True
        elif kind == "invalidate_log":
            coord_id, record_id = args
            tracked = self._records_by_id.get((node_id, coord_id, record_id))
            if tracked is not None:
                self._decided.add((coord_id, tracked.record.txn_id))
                self._drop_record(tracked)
        elif kind == "truncate_log_region":
            (coord_id,) = args
            for tracked in list(self._records_by_coord.get(coord_id, ())):
                if tracked.node_id == node_id:
                    self._decided.add((coord_id, tracked.record.txn_id))
                    self._drop_record(tracked)
        elif kind in ("write_object", "vote_write"):
            table_id, slot, version = args[0], args[1], args[2]
            key = (compute_id, (table_id, slot))
            if version > self._written.get(key, -1):
                self._written[key] = version
        elif kind == "write_lock":
            table_id, slot, word = args
            if word == 0 and compute_id != self.recovery_id:
                self._check_unlock_order(compute_id, node_id, table_id, slot)

    def _check_unlock_order(
        self, compute_id: int, node_id: int, table_id: int, slot: int
    ) -> None:
        """PILL-DECIDE: at unlock-post time, every still-valid record of
        this compute covering the object must either have had its
        invalidation posted first (abort decided) or be justified by a
        posted commit write at the logged version (commit decided)."""
        address = (table_id, slot)
        applied = self._written.get((compute_id, address), -1)
        for coord_id in self._coords_on_compute.get(compute_id, ()):
            for tracked in list(self._records_by_coord.get(coord_id, ())):
                needed = tracked.covers.get(address)
                if needed is None or applied >= needed:
                    continue
                if (coord_id, tracked.record.txn_id) in self._decided:
                    # A sibling copy's invalidation was already posted:
                    # the abort decision reached the log first. The
                    # engine cannot invalidate copies it was never
                    # acked (dead log node / ack in flight at a crash,
                    # §3.2.5), so one posted invalidation is proof.
                    continue
                host = self.memory_nodes.get(tracked.node_id)
                if host is None or not host.alive:
                    # The copy died with its log node; the engine can
                    # neither invalidate it nor is recovery misled by
                    # it. Forget it (a restore resets the region).
                    self._drop_record(tracked)
                    continue
                if tracked.record_id is None:
                    # Still in flight: its ack cannot have reached the
                    # compute, so the engine does not know this copy
                    # exists (interrupted-attempt cleanup, §3.2.5).
                    continue
                self._violate(
                    UNLOCK_BEFORE_TRUNCATE,
                    f"unlock of table {table_id} slot {slot} posted while undo "
                    f"record (coord {coord_id}, txn {tracked.record.txn_id}) is "
                    f"still valid and no commit write at version {needed} was "
                    "posted — the abort decision was lost (§3.1.5)",
                    compute=compute_id,
                    node=node_id,
                    verb="write_lock",
                )
                return

    def _drop_record(self, tracked: _TrackedRecord) -> None:
        self._records_by_obj.pop(id(tracked.record), None)
        if tracked.record_id is not None:
            self._records_by_id.pop(
                (tracked.node_id, tracked.coord_id, tracked.record_id), None
            )
        siblings = self._records_by_coord.get(tracked.coord_id)
        if siblings is not None:
            try:
                siblings.remove(tracked)
            except ValueError:
                pass

    # -- memory-side hooks (atomic execution point) --------------------------

    def before_verb(self, node, src: int, kind: str, args: Tuple) -> None:
        self._trace("exec", src, node.node_id, kind, args)
        if kind == "cas_lock":
            self._before_cas(node, src, args)
        elif kind == "write_lock":
            self._before_write_lock(node, src, args)
        elif kind == "write_object":
            self._before_write_object(node, src, args)
        elif kind == "vote_write":
            self._before_vote_write(node, src, args)
        elif kind == "write_log":
            self._before_write_log(node, src, args)
        elif kind == "truncate_log_region":
            if src != self.recovery_id:
                self._violate(
                    NONRECOVERY_TRUNCATE,
                    f"log-region truncation issued by compute {src}; only the "
                    "recovery server truncates whole regions (§3.2.3)",
                    compute=src,
                    node=node.node_id,
                    verb=kind,
                )

    def after_verb(self, node, src: int, kind: str, args: Tuple, result: Any) -> None:
        if kind == "cas_lock":
            table_id, slot, expected, desired = args
            if result == expected:  # the CAS succeeded
                if desired == 0:
                    self._locks.pop((table_id, slot), None)
                    event = "release"
                else:
                    self._locks[(table_id, slot)] = (src, desired)
                    event = "grant" if expected == 0 else "steal"
                self.lock_events.append(
                    (self._now(), table_id, slot, event, src, desired)
                )
                if desired == 0 and (table_id, slot) in self._ticket_slots:
                    self._resync_ticket_slot(node, table_id, slot)
        elif kind == "write_lock":
            table_id, slot, word = args
            if word == 0:
                self._locks.pop((table_id, slot), None)
                event = "release"
            else:
                self._locks[(table_id, slot)] = (src, word)
                event = "overwrite"
            self.lock_events.append(
                (self._now(), table_id, slot, event, src, word)
            )
            if word == 0 and (table_id, slot) in self._ticket_slots:
                self._resync_ticket_slot(node, table_id, slot)
        elif kind == "faa_ticket":
            table_id, slot, coord_id = args
            self._coord_compute[coord_id] = src
            ticket, _word = result
            if ticket >= 0:
                self._ticket_slots.add((table_id, slot))
                self._resync_ticket_slot(node, table_id, slot)
        elif kind == "cancel_ticket":
            table_id, slot = args[0], args[1]
            if (table_id, slot) in self._ticket_slots:
                self._resync_ticket_slot(node, table_id, slot)
        elif kind == "write_log":
            record = args[0]
            tracked = self._records_by_obj.get(id(record))
            if tracked is not None and tracked.record_id is None:
                tracked.record_id = result
                self._records_by_id[(node.node_id, record.coord_id, result)] = tracked

    def _resync_ticket_slot(self, node, table_id: int, slot: int) -> None:
        """Re-read a queue-managed slot's ground-truth word.

        The lock server re-grants on release (queue advance), so the
        holder can change without any grant verb. Resyncing keeps the
        shadow lockset's holder — and therefore PILL-WRITE /
        PILL-UNLOCK — meaningful under LOTUS.
        """
        key = (table_id, slot)
        word = node.tables[table_id].locks[slot]
        previous = self._locks.get(key)
        if word == 0:
            self._locks.pop(key, None)
            self._ticket_slots.discard(key)
            return
        if not is_ticket_word(word):
            return  # foreign word (e.g. a restore reset it); leave as-is
        holder = self._coord_compute.get(owner_of(word), -1)
        self._locks[key] = (holder, word)
        if previous is None or previous[1] != word:
            self.lock_events.append(
                (self._now(), table_id, slot, "grant", holder, word)
            )

    def _before_vote_write(self, node, src: int, args: Tuple) -> None:
        """vote1pc apply: holder-checked like ``write_object``, but the
        decision lives in replica state, so no landed undo record is
        demanded (the point of the logless 1PC)."""
        if src == self.recovery_id:
            return
        table_id, slot = args[0], args[1]
        held = self._locks.get((table_id, slot))
        if held is None or held[0] != src:
            holder = "nobody" if held is None else f"compute {held[0]}"
            self._violate(
                WRITE_WITHOUT_LOCK,
                f"vote_write to table {table_id} slot {slot} by compute "
                f"{src} while the lock is held by {holder}",
                compute=src,
                node=node.node_id,
                verb="vote_write",
            )

    def _before_cas(self, node, src: int, args: Tuple) -> None:
        table_id, slot, expected, desired = args
        if expected == 0 or src == self.recovery_id:
            # Fresh acquisition, or recovery's owner-conditioned
            # release/steal — recovery only ever CASes words of
            # coordinators it has just marked failed.
            return
        owner = owner_of(expected)
        if owner == ANONYMOUS_OWNER:
            self._violate(
                STEAL_LIVE_OWNER,
                f"CAS replaces anonymous lock word {expected:#x} on table "
                f"{table_id} slot {slot}; anonymous locks carry no owner id "
                "and can never be proven stray (§3.1.1)",
                compute=src,
                node=node.node_id,
                verb="cas_lock",
            )
            return
        if not self._is_failed(owner):
            self._violate(
                STEAL_LIVE_OWNER,
                f"CAS replaces lock of live coordinator {owner} on table "
                f"{table_id} slot {slot} (owner not in the failed-ids "
                "bitset, §3.1.2)",
                compute=src,
                node=node.node_id,
                verb="cas_lock",
            )

    def _before_write_lock(self, node, src: int, args: Tuple) -> None:
        table_id, slot, word = args
        if word != 0:
            self._violate(
                LOCK_OVERWRITE,
                f"direct write of nonzero lock word {word:#x} to table "
                f"{table_id} slot {slot}; locks are acquired by CAS only",
                compute=src,
                node=node.node_id,
                verb="write_lock",
            )
            return
        held = self._locks.get((table_id, slot))
        if held is not None and src != self.recovery_id and held[0] != src:
            self._violate(
                UNLOCK_BY_NON_OWNER,
                f"compute {src} releases table {table_id} slot {slot} held by "
                f"compute {held[0]} (word {held[1]:#x}) — complicit abort "
                "(Table 1 C1)",
                compute=src,
                node=node.node_id,
                verb="write_lock",
            )

    def _before_write_object(self, node, src: int, args: Tuple) -> None:
        if src == self.recovery_id:
            return  # recovery's roll-forward/back repairs are exempt
        table_id, slot, version = args[0], args[1], args[2]
        held = self._locks.get((table_id, slot))
        if held is None or held[0] != src:
            holder = "nobody" if held is None else f"compute {held[0]}"
            self._violate(
                WRITE_WITHOUT_LOCK,
                f"write_object to table {table_id} slot {slot} by compute "
                f"{src} while the lock is held by {holder}",
                compute=src,
                node=node.node_id,
                verb="write_object",
            )
            return
        current = node.tables[table_id][slot].version
        if version > current and not self._has_landed_record(
            held[1], table_id, slot, version
        ):
            # Version-advancing writes must be durably logged first;
            # undo writes (restoring an old image) are exempt — their
            # log regions may have died with the memory node.
            self._violate(
                WRITE_WITHOUT_LOG,
                f"commit write of table {table_id} slot {slot} version "
                f"{version} with no valid landed undo record covering it "
                "(§3.1.5: log before any in-place update)",
                compute=src,
                node=node.node_id,
                verb="write_object",
            )

    def _before_write_log(self, node, src: int, args: Tuple) -> None:
        record = args[0]
        if record.txn_id == _LOCK_INTENT_TXN:
            return  # tradlog lock-intent records precede the CAS by design
        for table_id, slot, _new_version in self._txn_entries(record):
            held = self._locks.get((table_id, slot))
            if held is None or held[0] != src:
                holder = "nobody" if held is None else f"compute {held[0]}"
                self._violate(
                    LOG_WITHOUT_LOCK,
                    f"undo record of txn {record.txn_id} covers table "
                    f"{table_id} slot {slot} which is held by {holder}, not "
                    f"by issuer compute {src} (lock-to-log order, §3.1.5)",
                    compute=src,
                    node=node.node_id,
                    verb="write_log",
                )
                return
