"""Mutation-testing harness for the PILL sanitizer.

Each mutant is a deliberately broken Pandora engine (or a re-enabled
FORD bug flag) run through a small hand-wired rig with the sanitizer in
collect mode. The harness asserts two things per mutant:

* the sanitizer reports the expected violation code, and
* the *same scenario* under the unmutated engine reports nothing —
  so a detection is evidence of the mutation, not of a trigger-happy
  checker.

Run with ``python -m repro.analysis mutants``; the CLI exits nonzero
unless every mutant is caught and every control run is clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.sanitizer import (
    LOG_WITHOUT_LOCK,
    STEAL_LIVE_OWNER,
    UNLOCK_BEFORE_TRUNCATE,
    UNLOCK_BY_NON_OWNER,
    WRITE_WITHOUT_LOCK,
    PillSanitizer,
)
from repro.cluster.node import ComputeNode
from repro.kvs.catalog import Catalog, TableSpec
from repro.kvs.placement import Placement
from repro.memory.node import LogRecord, MemoryNode
from repro.protocol.coordinator import Coordinator, CoordinatorConfig
from repro.protocol.locks import is_locked
from repro.protocol.pandora import PandoraProtocol, pandora_factory
from repro.protocol.types import BugFlags
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.verbs import Verbs
from repro.sim import Simulator

__all__ = [
    "MutantResult",
    "MutantRig",
    "MUTANTS",
    "run_mutation_harness",
    "render_results",
]


class _NoWorkload:
    """Rig coordinators are driven manually; this is never called."""

    def next_transaction(self, rng):  # pragma: no cover
        raise RuntimeError("mutant rig transactions are submitted directly")


class MutantRig:
    """ProtocolRig twin with a collect-mode sanitizer wired in.

    (``tests/protocol/conftest.py`` holds the original; the harness
    ships inside the package so CI can run it without pytest.)
    """

    def __init__(
        self,
        engine_factory: Callable,
        memory_nodes: int = 2,
        compute_nodes: int = 2,
        replication: int = 2,
        keys: int = 64,
    ) -> None:
        self.sim = Simulator()
        self.network = Network(NetworkConfig(jitter=0.0), random.Random(11))
        self.memory = {i: MemoryNode(i) for i in range(memory_nodes)}
        self.placement = Placement(
            list(self.memory), replication_degree=replication, partitions=16
        )
        self.catalog = Catalog(self.placement)
        self.catalog.add_table(TableSpec(0, "kv", max_keys=keys + 16, value_size=8))
        self.catalog.provision(self.memory.values())
        self.catalog.load(self.memory, 0, ((k, 0) for k in range(keys)))

        self.sanitizer = PillSanitizer(
            self.memory, failed_ids=frozenset(), sim=self.sim, strict=False
        )
        for node in self.memory.values():
            node.sanitizer = self.sanitizer

        self.nodes = []
        self.coordinators = []
        for node_id in range(compute_nodes):
            verbs = Verbs(
                self.sim, node_id, self.network, self.memory, sanitizer=self.sanitizer
            )
            node = ComputeNode(self.sim, node_id, verbs, self.catalog)
            self.nodes.append(node)
            coordinator = Coordinator(
                node,
                node_id,
                engine_factory,
                _NoWorkload(),
                random.Random(1000 + node_id),
                CoordinatorConfig(max_attempts=1),
            )
            node.add_coordinator(coordinator)
            self.coordinators.append(coordinator)

    def submit(self, coordinator, logic, delay: float = 0.0):
        """Start one transaction (optionally after *delay*); its Process."""
        if delay <= 0.0:
            return self.sim.process(
                coordinator.run_transaction(logic),
                name=f"txn-c{coordinator.coord_id}",
            )
        started: List = []

        def kick() -> None:
            started.append(
                self.sim.process(
                    coordinator.run_transaction(logic),
                    name=f"txn-c{coordinator.coord_id}",
                )
            )

        self.sim.call_at(delay, kick)
        return started


# -- the mutants ---------------------------------------------------------------


class StealAnyLockEngine(PandoraProtocol):
    """MUTANT: treats *every* held lock as stray (skips the failed-ids
    check), so the second CAS steals locks from live coordinators."""

    name = "mutant-steal-any"

    def _is_stray(self, word: int) -> bool:
        return is_locked(word)


class WriteWithoutLockEngine(PandoraProtocol):
    """MUTANT: the acquire path only *reads* the object and pretends
    the lock was taken — commits then update replicas lock-free."""

    name = "mutant-no-lock"

    def _acquire_inner(self, tx, intent):
        table_id, slot = intent.table_id, intent.slot
        primary = self.placement.primary(table_id, slot)
        _lock, version, present, value = yield self.verbs.read_object(
            primary, table_id, slot
        )
        intent.locked = True
        intent.lock_node = primary
        intent.old_version = version
        intent.old_value = value
        intent.old_present = present
        intent.lock_result = (True, "")


class EagerLogEngine(PandoraProtocol):
    """MUTANT: posts the coalesced undo record *before* the lock
    barrier (log-before-lock/validate), covering intents whose CAS has
    not succeeded — or never will."""

    name = "mutant-eager-log"

    def _lock_barrier(self, tx):
        self._post_eager_log(tx)
        yield from super()._lock_barrier(tx)

    def _post_eager_log(self, tx) -> None:
        # _lock_barrier runs exactly once per attempt, so no reentry
        # guard is needed (Txn is slotted — no ad-hoc attributes).
        if not tx.write_set:
            return
        entries = tuple(intent.log_entry() for intent in tx.write_set.values())
        value_sizes = {
            spec.table_id: spec.value_size for spec in self.catalog.tables.values()
        }
        for node in self.catalog.log_nodes(self.coord_id):
            record = LogRecord(
                coord_id=self.coord_id, txn_id=tx.txn_id, entries=entries
            )
            ack = self.verbs.write_log(node, record, record.size_bytes(value_sizes))
            tx.log_acks.append(ack)
            self._remember_log_copy(tx, node, ack)

    def _post_coalesced_log(self, tx) -> None:
        return  # superseded by the eager post


def _factory_for(engine_class: type) -> Callable:
    def factory(coordinator):
        return engine_class(coordinator, bugs=BugFlags.fixed())

    return factory


# -- scenarios -----------------------------------------------------------------
#
# Each scenario drives a fixed interleaving through a rig built with
# *engine_factory* and returns the rig (whose sanitizer holds whatever
# violations were observed). The same scenario doubles as its own
# control when run with the unmutated pandora factory.


def _scenario_contended_write(engine_factory: Callable) -> MutantRig:
    """c0 holds key 3 for 80us mid-transaction; c1 blind-writes it."""
    rig = MutantRig(engine_factory)

    def holder(tx):
        yield from tx.read_for_update("kv", 3)
        yield rig.sim.timeout(80e-6)
        tx.write("kv", 3, 99)

    def writer(tx):
        tx.write("kv", 3, 7)

    rig.submit(rig.coordinators[0], holder)
    rig.submit(rig.coordinators[1], writer, delay=10e-6)
    rig.sim.run()
    return rig


def _scenario_single_write(engine_factory: Callable) -> MutantRig:
    """One uncontended read-modify-write transaction."""
    rig = MutantRig(engine_factory)

    def rmw(tx):
        value = yield from tx.read("kv", 5)
        tx.write("kv", 5, (value or 0) + 1)

    rig.submit(rig.coordinators[0], rmw)
    rig.sim.run()
    return rig


def _scenario_validation_abort(engine_factory: Callable) -> MutantRig:
    """c0 reads key 2, stalls, writes key 9; c1 bumps key 2 meanwhile —
    c0's validation fails and it must abort *after* logging."""
    rig = MutantRig(engine_factory)

    def stalled(tx):
        yield from tx.read("kv", 2)
        yield rig.sim.timeout(40e-6)
        tx.write("kv", 9, 42)

    def bumper(tx):
        tx.write("kv", 2, 1)

    rig.submit(rig.coordinators[0], stalled)
    rig.submit(rig.coordinators[1], bumper, delay=5e-6)
    rig.sim.run()
    return rig


def _scenario_conflict_abort(engine_factory: Callable) -> MutantRig:
    """c0 holds key 3; c1 tries keys 3 and 11 — key 3 conflicts, so c1
    aborts while key 3 is still legitimately held by c0."""
    rig = MutantRig(engine_factory)

    def holder(tx):
        yield from tx.read_for_update("kv", 3)
        yield rig.sim.timeout(60e-6)
        tx.write("kv", 3, 99)

    def loser(tx):
        tx.write("kv", 3, 1)
        tx.write("kv", 11, 2)

    rig.submit(rig.coordinators[0], holder)
    rig.submit(rig.coordinators[1], loser, delay=5e-6)
    rig.sim.run()
    return rig


@dataclass
class MutantSpec:
    """One seeded protocol mutation and how the sanitizer must react."""

    name: str
    description: str
    engine_factory: Callable
    scenario: Callable[[Callable], MutantRig]
    expected_code: str
    # Bug-flag mutants reuse the stock engine, so their control factory
    # is the same engine with the flag off.
    control_factory: Callable = field(default_factory=lambda: pandora_factory(None))


MUTANTS: List[MutantSpec] = [
    MutantSpec(
        name="steal-without-failed-check",
        description="second CAS steals a live coordinator's lock",
        engine_factory=_factory_for(StealAnyLockEngine),
        scenario=_scenario_contended_write,
        expected_code=STEAL_LIVE_OWNER,
    ),
    MutantSpec(
        name="write-without-lock",
        description="commit writes replicas without ever locking",
        engine_factory=_factory_for(WriteWithoutLockEngine),
        scenario=_scenario_single_write,
        expected_code=WRITE_WITHOUT_LOCK,
    ),
    MutantSpec(
        name="log-before-lock",
        description="coalesced undo record posted before the lock barrier",
        engine_factory=_factory_for(EagerLogEngine),
        scenario=_scenario_contended_write,
        expected_code=LOG_WITHOUT_LOCK,
    ),
    MutantSpec(
        name="lost-abort-decision",
        description="abort unlocks without truncating its undo records",
        engine_factory=pandora_factory(BugFlags(lost_decision=True)),
        scenario=_scenario_validation_abort,
        expected_code=UNLOCK_BEFORE_TRUNCATE,
    ),
    MutantSpec(
        name="complicit-abort",
        description="abort releases write-set locks it never acquired",
        engine_factory=pandora_factory(BugFlags(complicit_abort=True)),
        scenario=_scenario_conflict_abort,
        expected_code=UNLOCK_BY_NON_OWNER,
    ),
]


@dataclass
class MutantResult:
    """Outcome of one mutant + its control run."""

    name: str
    description: str
    expected_code: str
    caught: bool
    codes: List[str]
    control_clean: bool
    control_codes: List[str]

    @property
    def passed(self) -> bool:
        return self.caught and self.control_clean


def run_mutation_harness(only: Optional[List[str]] = None) -> List[MutantResult]:
    """Run every mutant and its control; returns one result per mutant."""
    results = []
    for spec in MUTANTS:
        if only and spec.name not in only:
            continue
        mutant_rig = spec.scenario(spec.engine_factory)
        codes = [violation.code for violation in mutant_rig.sanitizer.violations]
        control_rig = spec.scenario(spec.control_factory)
        control_codes = [
            violation.code for violation in control_rig.sanitizer.violations
        ]
        results.append(
            MutantResult(
                name=spec.name,
                description=spec.description,
                expected_code=spec.expected_code,
                caught=spec.expected_code in codes,
                codes=codes,
                control_clean=not control_codes,
                control_codes=control_codes,
            )
        )
    return results


def render_results(results: List[MutantResult]) -> str:
    lines = []
    for result in results:
        verdict = "caught" if result.caught else "MISSED"
        control = "clean" if result.control_clean else "NOISY"
        lines.append(
            f"{result.name:28s} want={result.expected_code:14s} "
            f"{verdict:7s} got={','.join(sorted(set(result.codes))) or '-'} "
            f"control={control}"
        )
        if not result.control_clean:
            lines.append(f"{'':28s} control codes: {sorted(set(result.control_codes))}")
    passed = sum(1 for result in results if result.passed)
    lines.append(f"{passed}/{len(results)} mutants detected with clean controls")
    return "\n".join(lines)
