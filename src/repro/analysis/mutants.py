"""Mutation-testing harness for the protocol-discipline checkers.

Two kinds of mutants prove the checkers actually check:

**Dynamic mutants** — deliberately broken Pandora engines (or
re-enabled FORD bug flags) run through a small hand-wired rig with the
PILL sanitizer in collect mode and a flight recorder attached. The
harness asserts, per mutant:

* the sanitizer reports the expected violation code,
* where a race signature is expected, the lockset detector
  (:mod:`repro.analysis.races`) finds it in the recorded flight, and
* the *same scenario* under the unmutated engine reports nothing —
  so a detection is evidence of the mutation, not of a trigger-happy
  checker.

**Static mutants** — source-level edits of the shipped engine files
(drop a drain loop, delete a crash point, strip a ``finally``) linted
through :func:`repro.analysis.protolint.run_protolint` via its overlay
API, without touching disk. Each must trip its targeted PROTO rule
while the unmutated tree stays clean. The first one re-introduces the
PR 4 abort-path lock leak and must be flagged **statically** — no
simulation run required.

Run with ``python -m repro.analysis mutants``; the CLI exits nonzero
unless every mutant is caught and every control run is clean.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.analysis.protolint import _repo_root, run_protolint
from repro.analysis.races import analyze_attempts
from repro.analysis.sanitizer import (
    LOG_WITHOUT_LOCK,
    STEAL_LIVE_OWNER,
    UNLOCK_BEFORE_TRUNCATE,
    UNLOCK_BY_NON_OWNER,
    WRITE_WITHOUT_LOCK,
    PillSanitizer,
)
from repro.cluster.node import ComputeNode
from repro.kvs.catalog import Catalog, TableSpec
from repro.kvs.placement import Placement
from repro.memory.node import LogRecord, MemoryNode
from repro.protocol.coordinator import Coordinator, CoordinatorConfig
from repro.protocol.locks import is_locked
from repro.protocol.pandora import PandoraProtocol, pandora_factory
from repro.protocol.types import BugFlags
from repro.obs import Obs
from repro.rdma.network import Network, NetworkConfig
from repro.rdma.verbs import Verbs
from repro.sim import Simulator

__all__ = [
    "MutantResult",
    "MutantRig",
    "MUTANTS",
    "STATIC_MUTANTS",
    "StaticMutantResult",
    "StaticMutantSpec",
    "run_mutation_harness",
    "run_static_mutants",
    "render_results",
]


class _NoWorkload:
    """Rig coordinators are driven manually; this is never called."""

    def next_transaction(self, rng):  # pragma: no cover
        raise RuntimeError("mutant rig transactions are submitted directly")


class MutantRig:
    """ProtocolRig twin with a collect-mode sanitizer wired in.

    (``tests/protocol/conftest.py`` holds the original; the harness
    ships inside the package so CI can run it without pytest.)
    """

    def __init__(
        self,
        engine_factory: Callable,
        memory_nodes: int = 2,
        compute_nodes: int = 2,
        replication: int = 2,
        keys: int = 64,
    ) -> None:
        self.sim = Simulator()
        self.network = Network(NetworkConfig(jitter=0.0), random.Random(11))
        self.memory = {i: MemoryNode(i) for i in range(memory_nodes)}
        self.placement = Placement(
            list(self.memory), replication_degree=replication, partitions=16
        )
        self.catalog = Catalog(self.placement)
        self.catalog.add_table(TableSpec(0, "kv", max_keys=keys + 16, value_size=8))
        self.catalog.provision(self.memory.values())
        self.catalog.load(self.memory, 0, ((k, 0) for k in range(keys)))

        self.sanitizer = PillSanitizer(
            self.memory, failed_ids=frozenset(), sim=self.sim, strict=False
        )
        for node in self.memory.values():
            node.sanitizer = self.sanitizer

        # Flight recorder for the dynamic race detector (tracer off —
        # only the per-attempt verb/lock records matter here). Obs's
        # hot-path metric caches live behind set_run_meta.
        self.obs = Obs(trace=False, flight=True)
        self.obs.set_run_meta(harness="mutants")

        self.nodes = []
        self.coordinators = []
        for node_id in range(compute_nodes):
            verbs = Verbs(
                self.sim,
                node_id,
                self.network,
                self.memory,
                obs=self.obs,
                sanitizer=self.sanitizer,
            )
            node = ComputeNode(self.sim, node_id, verbs, self.catalog)
            self.nodes.append(node)
            coordinator = Coordinator(
                node,
                node_id,
                engine_factory,
                _NoWorkload(),
                random.Random(1000 + node_id),
                CoordinatorConfig(max_attempts=1),
            )
            node.add_coordinator(coordinator)
            self.coordinators.append(coordinator)

    def submit(self, coordinator, logic, delay: float = 0.0):
        """Start one transaction (optionally after *delay*); its Process."""
        if delay <= 0.0:
            return self.sim.process(
                coordinator.run_transaction(logic),
                name=f"txn-c{coordinator.coord_id}",
            )
        started: List = []

        def kick() -> None:
            started.append(
                self.sim.process(
                    coordinator.run_transaction(logic),
                    name=f"txn-c{coordinator.coord_id}",
                )
            )

        self.sim.call_at(delay, kick)
        return started


# -- the mutants ---------------------------------------------------------------


class StealAnyLockEngine(PandoraProtocol):
    """MUTANT: treats *every* held lock as stray (skips the failed-ids
    check), so the second CAS steals locks from live coordinators."""

    name = "mutant-steal-any"

    def _is_stray(self, word: int) -> bool:
        return is_locked(word)


class WriteWithoutLockEngine(PandoraProtocol):
    """MUTANT: the acquire path only *reads* the object and pretends
    the lock was taken — commits then update replicas lock-free."""

    name = "mutant-no-lock"

    def _acquire_inner(self, tx, intent):
        table_id, slot = intent.table_id, intent.slot
        primary = self.placement.primary(table_id, slot)
        _lock, version, present, value = yield self.verbs.read_object(
            primary, table_id, slot
        )
        intent.locked = True
        intent.lock_node = primary
        intent.old_version = version
        intent.old_value = value
        intent.old_present = present
        intent.lock_result = (True, "")


class EagerLogEngine(PandoraProtocol):
    """MUTANT: posts the coalesced undo record *before* the lock
    barrier (log-before-lock/validate), covering intents whose CAS has
    not succeeded — or never will."""

    name = "mutant-eager-log"

    def _lock_barrier(self, tx):
        self._post_eager_log(tx)
        yield from super()._lock_barrier(tx)

    def _post_eager_log(self, tx) -> None:
        # _lock_barrier runs exactly once per attempt, so no reentry
        # guard is needed (Txn is slotted — no ad-hoc attributes).
        if not tx.write_set:
            return
        entries = tuple(intent.log_entry() for intent in tx.write_set.values())
        value_sizes = {
            spec.table_id: spec.value_size for spec in self.catalog.tables.values()
        }
        for node in self.catalog.log_nodes(self.coord_id):
            record = LogRecord(
                coord_id=self.coord_id, txn_id=tx.txn_id, entries=entries
            )
            ack = self.verbs.write_log(node, record, record.size_bytes(value_sizes))
            tx.log_acks.append(ack)
            self._remember_log_copy(tx, node, ack)

    def _post_coalesced_log(self, tx) -> None:
        return  # superseded by the eager post


def _factory_for(engine_class: type) -> Callable:
    def factory(coordinator):
        return engine_class(coordinator, bugs=BugFlags.fixed())

    return factory


# -- scenarios -----------------------------------------------------------------
#
# Each scenario drives a fixed interleaving through a rig built with
# *engine_factory* and returns the rig (whose sanitizer holds whatever
# violations were observed). The same scenario doubles as its own
# control when run with the unmutated pandora factory.


def _scenario_contended_write(engine_factory: Callable) -> MutantRig:
    """c0 holds key 3 for 80us mid-transaction; c1 blind-writes it."""
    rig = MutantRig(engine_factory)

    def holder(tx):
        yield from tx.read_for_update("kv", 3)
        yield rig.sim.timeout(80e-6)
        tx.write("kv", 3, 99)

    def writer(tx):
        tx.write("kv", 3, 7)

    rig.submit(rig.coordinators[0], holder)
    rig.submit(rig.coordinators[1], writer, delay=10e-6)
    rig.sim.run()
    return rig


def _scenario_single_write(engine_factory: Callable) -> MutantRig:
    """One uncontended read-modify-write transaction."""
    rig = MutantRig(engine_factory)

    def rmw(tx):
        value = yield from tx.read("kv", 5)
        tx.write("kv", 5, (value or 0) + 1)

    rig.submit(rig.coordinators[0], rmw)
    rig.sim.run()
    return rig


def _scenario_validation_abort(engine_factory: Callable) -> MutantRig:
    """c0 reads key 2, stalls, writes key 9; c1 bumps key 2 meanwhile —
    c0's validation fails and it must abort *after* logging."""
    rig = MutantRig(engine_factory)

    def stalled(tx):
        yield from tx.read("kv", 2)
        yield rig.sim.timeout(40e-6)
        tx.write("kv", 9, 42)

    def bumper(tx):
        tx.write("kv", 2, 1)

    rig.submit(rig.coordinators[0], stalled)
    rig.submit(rig.coordinators[1], bumper, delay=5e-6)
    rig.sim.run()
    return rig


def _scenario_conflict_abort(engine_factory: Callable) -> MutantRig:
    """c0 holds key 3; c1 tries keys 3 and 11 — key 3 conflicts, so c1
    aborts while key 3 is still legitimately held by c0."""
    rig = MutantRig(engine_factory)

    def holder(tx):
        yield from tx.read_for_update("kv", 3)
        yield rig.sim.timeout(60e-6)
        tx.write("kv", 3, 99)

    def loser(tx):
        tx.write("kv", 3, 1)
        tx.write("kv", 11, 2)

    rig.submit(rig.coordinators[0], holder)
    rig.submit(rig.coordinators[1], loser, delay=5e-6)
    rig.sim.run()
    return rig


@dataclass
class MutantSpec:
    """One seeded protocol mutation and how the sanitizer must react."""

    name: str
    description: str
    engine_factory: Callable
    scenario: Callable[[Callable], MutantRig]
    expected_code: str
    # Bug-flag mutants reuse the stock engine, so their control factory
    # is the same engine with the flag off.
    control_factory: Callable = field(default_factory=lambda: pandora_factory(None))
    # When set, the lockset detector must also find this race code in
    # the mutant run's flight records (and none in the control's) —
    # the dynamic cross-check of the same discipline.
    expected_race: Optional[str] = None


MUTANTS: List[MutantSpec] = [
    MutantSpec(
        name="steal-without-failed-check",
        description="second CAS steals a live coordinator's lock",
        engine_factory=_factory_for(StealAnyLockEngine),
        scenario=_scenario_contended_write,
        expected_code=STEAL_LIVE_OWNER,
        expected_race="RACE-DOUBLE-GRANT",
    ),
    MutantSpec(
        name="write-without-lock",
        description="commit writes replicas without ever locking",
        engine_factory=_factory_for(WriteWithoutLockEngine),
        scenario=_scenario_single_write,
        expected_code=WRITE_WITHOUT_LOCK,
        expected_race="RACE-UNLOCKED-WRITE",
    ),
    MutantSpec(
        name="log-before-lock",
        description="coalesced undo record posted before the lock barrier",
        engine_factory=_factory_for(EagerLogEngine),
        scenario=_scenario_contended_write,
        expected_code=LOG_WITHOUT_LOCK,
    ),
    MutantSpec(
        name="lost-abort-decision",
        description="abort unlocks without truncating its undo records",
        engine_factory=pandora_factory(BugFlags(lost_decision=True)),
        scenario=_scenario_validation_abort,
        expected_code=UNLOCK_BEFORE_TRUNCATE,
    ),
    MutantSpec(
        name="complicit-abort",
        description="abort releases write-set locks it never acquired",
        engine_factory=pandora_factory(BugFlags(complicit_abort=True)),
        scenario=_scenario_conflict_abort,
        expected_code=UNLOCK_BY_NON_OWNER,
    ),
]


@dataclass
class MutantResult:
    """Outcome of one dynamic mutant + its control run."""

    name: str
    description: str
    expected_code: str
    caught: bool
    codes: List[str]
    control_clean: bool
    control_codes: List[str]
    # Lockset-detector cross-check (None when the mutant has no
    # expected race signature).
    expected_race: Optional[str] = None
    race_caught: bool = True
    race_codes: List[str] = field(default_factory=list)
    control_race_codes: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return (
            self.caught
            and self.control_clean
            and self.race_caught
            and not self.control_race_codes
        )


def run_mutation_harness(only: Optional[List[str]] = None) -> List[MutantResult]:
    """Run every dynamic mutant and its control; one result per mutant."""
    results = []
    for spec in MUTANTS:
        if only and spec.name not in only:
            continue
        mutant_rig = spec.scenario(spec.engine_factory)
        codes = [violation.code for violation in mutant_rig.sanitizer.violations]
        race_codes = [
            race.code
            for race in analyze_attempts(mutant_rig.obs.flight.attempts).races
        ]
        control_rig = spec.scenario(spec.control_factory)
        control_codes = [
            violation.code for violation in control_rig.sanitizer.violations
        ]
        control_race_codes = [
            race.code
            for race in analyze_attempts(control_rig.obs.flight.attempts).races
        ]
        results.append(
            MutantResult(
                name=spec.name,
                description=spec.description,
                expected_code=spec.expected_code,
                caught=spec.expected_code in codes,
                codes=codes,
                control_clean=not control_codes,
                control_codes=control_codes,
                expected_race=spec.expected_race,
                race_caught=(
                    spec.expected_race is None or spec.expected_race in race_codes
                ),
                race_codes=race_codes,
                control_race_codes=control_race_codes,
            )
        )
    return results


# -- static mutants ------------------------------------------------------------
#
# Source-level edits of the shipped engine files, linted through
# protolint's overlay API. `old` must match the shipped source exactly
# (a mismatch fails the mutant loudly — the mutation rotted), and
# `expected_rule` must appear among the findings. The shipped tree
# itself is the shared control and must lint clean.


@dataclass
class StaticMutantSpec:
    """One source-level mutation and the PROTO rule that must fire."""

    name: str
    description: str
    path: str  # repo-root-relative
    old: str  # verbatim shipped source to replace ...
    new: str  # ... with this mutated text
    expected_rule: str


STATIC_MUTANTS: List[StaticMutantSpec] = [
    StaticMutantSpec(
        name="abort-allof-drain",
        description=(
            "PR 4 regression: abort drains log acks with one all_of, so a "
            "dead log server's RdmaError skips the unlocks (lock leak)"
        ),
        path="src/repro/protocol/base.py",
        old=(
            "        for ack in tx.log_acks:\n"
            "            # A log copy posted to a server that died in flight fails\n"
            "            # with RdmaError; the abort must survive that — this runs\n"
            "            # inside the TxnAbort handler, so an escaping RdmaError\n"
            "            # would skip the unlocks below and leak every held lock\n"
            "            # under a *live* coordinator id (unstealable by PILL).\n"
            "            try:\n"
            "                yield ack\n"
            "            except RdmaError:\n"
            "                continue\n"
        ),
        new=(
            "        if tx.log_acks:\n"
            "            yield self.sim.all_of(tx.log_acks)\n"
        ),
        expected_rule="PROTO001",
    ),
    StaticMutantSpec(
        name="skip-recover-drain",
        description=(
            "recover_interrupted releases locks without draining in-flight "
            "log acks first"
        ),
        path="src/repro/protocol/base.py",
        old=(
            "        # Drain in-flight log acks (they all resolve: a copy to a dead\n"
            "        # node fails at arrival) so the release below can invalidate\n"
            "        # every copy we learn about — otherwise a valid undo record\n"
            "        # outlives the unlock and recovery could mistake the aborted\n"
            "        # txn for an in-flight one (§3.1.5 discipline, §3.2.5 path).\n"
            "        for ack in tx.log_acks:\n"
            "            if ack.triggered:\n"
            "                continue\n"
            "            try:\n"
            "                yield ack\n"
            "            except RdmaError:\n"
            "                pass\n"
        ),
        new="",
        expected_rule="PROTO002",
    ),
    StaticMutantSpec(
        name="drop-crash-point",
        description=(
            "the abort_unlocked crash point is deleted while the litmus "
            "runner and chaos schedules still target it"
        ),
        path="src/repro/protocol/base.py",
        old=(
            '        checkpoint = self._cp("abort_unlocked")\n'
            "        if checkpoint is not None:\n"
            "            yield checkpoint\n"
        ),
        new="",
        expected_rule="PROTO004",
    ),
    StaticMutantSpec(
        name="unguarded-acquire",
        description=(
            "the strategy-layer acquire loses its RdmaError guard, so a "
            "yield between the lock CAS and the log post can escape the "
            "method with no in-module handler"
        ),
        path="src/repro/protocol/strategies.py",
        old=(
            "        try:\n"
            "            yield from self._acquire_flow(tx, intent)\n"
            "        except RdmaError:\n"
            "            raise\n"
        ),
        new="        yield from self._acquire_flow(tx, intent)\n",
        expected_rule="PROTO005",
    ),
    StaticMutantSpec(
        name="claim-leak-no-finally",
        description=(
            "_recover_compute drops its finally, leaking the in-progress "
            "claim when the recovery process is killed mid-flight"
        ),
        path="src/repro/recovery/manager.py",
        old=(
            "        try:\n"
            "            yield from self._recover_compute_inner(node)\n"
            "        finally:\n"
            "            # Runs on normal completion AND when this recovery process\n"
            "            # is itself killed mid-flight (GeneratorExit): the claim\n"
            "            # must be released either way, or the node becomes\n"
            "            # unrecoverable forever — no re-detection can start (the\n"
            '            # key is still "in progress") and restart_compute defers\n'
            "            # in a loop waiting for it to clear. Re-running recovery\n"
            "            # from scratch is safe because every step is idempotent\n"
            "            # (§3.2.3).\n"
            "            self._in_progress.discard(key)\n"
            "            self._processes.pop(key, None)\n"
        ),
        new=(
            "        yield from self._recover_compute_inner(node)\n"
            "        self._in_progress.discard(key)\n"
            "        self._processes.pop(key, None)\n"
        ),
        expected_rule="PROTO006",
    ),
]


@dataclass
class StaticMutantResult:
    """Outcome of one static (protolint overlay) mutant."""

    name: str
    description: str
    expected_rule: str
    applied: bool  # the `old` text still matches the shipped source
    caught: bool
    rules: List[str]
    control_clean: bool
    control_rules: List[str]

    @property
    def passed(self) -> bool:
        return self.applied and self.caught and self.control_clean


def run_static_mutants(
    only: Optional[List[str]] = None,
) -> List[StaticMutantResult]:
    """Lint every static mutant via protolint's overlay API."""
    root = _repo_root()
    # One shared control: the shipped tree must lint clean, or a
    # "caught" verdict on a mutant proves nothing.
    control_rules = [finding.rule for finding in run_protolint(root=root)]
    control_clean = not control_rules
    results = []
    for spec in STATIC_MUTANTS:
        if only and spec.name not in only:
            continue
        abspath = os.path.join(root, spec.path)
        try:
            with open(abspath, "r") as handle:
                shipped = handle.read()
        except OSError:
            shipped = ""
        applied = spec.old in shipped
        rules: List[str] = []
        caught = False
        if applied:
            overlay = {abspath: shipped.replace(spec.old, spec.new)}
            rules = [
                finding.rule
                for finding in run_protolint(root=root, overlay=overlay)
            ]
            caught = spec.expected_rule in rules
        results.append(
            StaticMutantResult(
                name=spec.name,
                description=spec.description,
                expected_rule=spec.expected_rule,
                applied=applied,
                caught=caught,
                rules=rules,
                control_clean=control_clean,
                control_rules=control_rules,
            )
        )
    return results


def render_results(
    results: List[MutantResult],
    static_results: Optional[List[StaticMutantResult]] = None,
) -> str:
    lines = []
    for result in results:
        verdict = "caught" if result.caught else "MISSED"
        control = "clean" if result.control_clean else "NOISY"
        line = (
            f"{result.name:28s} want={result.expected_code:14s} "
            f"{verdict:7s} got={','.join(sorted(set(result.codes))) or '-'} "
            f"control={control}"
        )
        if result.expected_race is not None:
            race = "race-hit" if result.race_caught else "RACE-MISSED"
            line += f" {race}"
        lines.append(line)
        if not result.control_clean:
            lines.append(f"{'':28s} control codes: {sorted(set(result.control_codes))}")
        if result.control_race_codes:
            lines.append(
                f"{'':28s} control races: {sorted(set(result.control_race_codes))}"
            )
    passed = sum(1 for result in results if result.passed)
    lines.append(f"{passed}/{len(results)} mutants detected with clean controls")
    if static_results is not None:
        for result in static_results:
            if not result.applied:
                lines.append(
                    f"{result.name:28s} want={result.expected_rule:14s} "
                    f"STALE (mutation no longer matches the shipped source)"
                )
                continue
            verdict = "caught" if result.caught else "MISSED"
            control = "clean" if result.control_clean else "NOISY"
            lines.append(
                f"{result.name:28s} want={result.expected_rule:14s} "
                f"{verdict:7s} got={','.join(sorted(set(result.rules))) or '-'} "
                f"control={control}"
            )
        passed = sum(1 for result in static_results if result.passed)
        lines.append(
            f"{passed}/{len(static_results)} static mutants flagged by protolint"
        )
    return "\n".join(lines)
