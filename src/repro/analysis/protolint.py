"""repro.analysis.protolint — protocol-discipline analyzer for engine code.

Every protocol bug shipped so far belongs to one family: a resource
acquired on one path is not released/drained/awaited on another — the
abort-path lock leak, the un-drained log acks in ``recover_interrupted``,
the ``_in_progress`` claim leaked on a mid-recovery kill. The chaos
campaign and PILL sanitizer find these *dynamically*, one schedule at a
time; protolint proves the disciplines on **all** paths of an engine in
milliseconds, the way the paper argues invariants per-phase rather than
per-execution.

It lowers each engine method to a generator-aware CFG
(:mod:`repro.analysis.cfg` — yields as suspension points with typed
exception resumption edges, ``GeneratorExit`` kill edges, ``finally``
duplication) and runs a may-dataflow over four facts:

* ``LOCKED`` — the attempt's write-set locks may be held,
* ``LOGU`` — posted log-write (undo record) acks may be un-drained,
* ``OBJU`` — posted object-write (apply/undo image) acks may be
  un-acked,
* ``CASP`` — a CAS lock-acquire is in flight with no log posted yet.

Rules
-----
PROTO001  every lock acquire reaches a release / invalidate-before-
          unlock / explicit recovery hand-off on every path, including
          abort and exception edges. Checked at protocol entry points
          (``run_attempt``, ``recover_interrupted``, spawned recovery
          generators). A ``GeneratorExit`` escape is the sanctioned
          hand-off: the coordinator is dead, so its lock words are
          stray and PILL-stealable / released by log recovery.
PROTO002  every posted log-write ack is awaited or drained before any
          lock release executes.
PROTO003  object-write (undo/apply image) acks are drained before
          release — same machinery as PROTO002, different verb class.
PROTO004  every ``self._cp("...")`` crash point declared by an engine
          is referenced by a chaos schedule, the litmus CRASH_POINTS
          list, or a test — and vice versa (cross-file check).
PROTO005  no yield between a CAS lock-acquire and the corresponding
          log post unless an interrupt handler is registered: the
          ``RdmaError`` must be caught in-method or by every caller.
PROTO006  every ``_in_progress.add`` claim pairs with a spawned
          generator all of whose exits (normal, exception, *kill*)
          pass a ``_in_progress.discard``/``.pop`` — the PR 4 claim
          leak, as a type.
PROTO007  a fallible yield inside an ``except`` handler body must not
          let ``RdmaError`` escape the method — the handler owes
          cleanup that the escape would skip.
PROTO008  suppression hygiene: unknown rule codes and stale
          suppressions are themselves findings (not suppressible).

Scope and contracts
-------------------
The analysis is intra-procedural with bottom-up function summaries for
intra-class ``self._x()`` calls; entry states come from an explicit
contract table (``CONTRACTS``) mirroring the engine's documented
preconditions (e.g. ``_commit`` runs after the decision point drained
the log acks; ``_abort`` owns draining them itself). ``_acquire`` /
``_acquire_inner`` transfer lock ownership to the caller's write-set
(``intent.locked``), whose release discipline is checked at the entry
points — so they are not themselves PROTO001 subjects (they are the
PROTO005 subjects instead). ``AssertionError`` is excluded from
summaries: engine asserts are oracle checks, not protocol edges.
Cross-method OBJU propagation on exception edges is out of scope (the
apply/interrupt race is resolved by ``recover_interrupted``'s
``apply_done`` protocol, covered dynamically by the PILL sanitizer).

Suppressions: ``# protolint: disable=PROTO001 -- reason`` on the
flagged line or the line above (simlint only honours same-line).
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .cfg import (
    CFG,
    CFGNode,
    build_cfg,
    dotted_name,
    stmt_yield_values,
)

__all__ = [
    "Finding",
    "RULES",
    "run_protolint",
    "render_text",
    "render_json",
    "load_baseline",
    "filter_baseline",
    "write_baseline",
    "DEFAULT_ENGINE_GLOBS",
]

RULES: Dict[str, str] = {
    "PROTO001": "lock acquire must reach release or recovery hand-off on every path",
    "PROTO002": "posted log-write acks must be drained before locks are released",
    "PROTO003": "object-write (undo/apply image) acks must be drained before release",
    "PROTO004": "declared crash points and chaos/test references must match",
    "PROTO005": "no unprotected yield between CAS-acquire and its log post",
    "PROTO006": "recovery claims must be released on every exit, including kills",
    "PROTO007": "fallible yield in an except handler must not leak RdmaError",
    "PROTO008": "suppression hygiene (unknown codes, stale suppressions)",
}

DEFAULT_ENGINE_GLOBS = ("src/repro/protocol/*.py", "src/repro/recovery/*.py")

# Exceptions whose engine-level escape is sanctioned (GeneratorExit:
# the process was killed, PILL/log recovery owns the locks) or not a
# protocol edge (AssertionError: oracle check on impossible states).
_EXEMPT_ESCAPES = frozenset({"GeneratorExit"})
_ORACLE_EXCS = frozenset({"AssertionError"})

_FALLIBLE = ("RdmaError", "LinkRevokedError", "GeneratorExit")
_KILL_ONLY = ("GeneratorExit",)
_APP_LOGIC_RAISES = (
    "Exception", "TxnAbort", "RdmaError", "LinkRevokedError", "GeneratorExit",
)

_SUPPRESS_RE = re.compile(
    r"#\s*protolint:\s*disable(?:=([A-Z0-9,\s]+))?(?:\s*--\s*(.*))?"
)


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


# ---------------------------------------------------------------------------
# Per-method source model: provenance, effects, contracts
# ---------------------------------------------------------------------------

# Container/value provenance tags.
_TAG_CRASH_POINT = "crash_point"
_TAG_PROC = "proc"
_TAG_LOG_ACK = "log_ack"
_TAG_OBJ_ACK = "obj_ack"
_TAG_APP_LOGIC = "app_logic"


@dataclass
class Contract:
    """Documented entry-state preconditions for one engine method."""

    entry_facts: FrozenSet[str] = frozenset()
    entry_point: bool = False
    # Parameter name whose `is None` guard vacates contract facts (no
    # transaction => no locks to release).
    tx_guard: Optional[str] = None


CONTRACTS: Dict[str, Contract] = {
    "run_attempt": Contract(entry_point=True),
    "recover_interrupted": Contract(
        entry_facts=frozenset({"LOCKED", "LOGU"}),
        entry_point=True,
        tx_guard="tx",
    ),
    # Called only from run_attempt after the decision point drained
    # the log acks (section 3.1.5 lock-to-log order).
    "_commit": Contract(entry_facts=frozenset({"LOCKED"})),
    # The abort path owns draining the acks itself.
    "_abort": Contract(entry_facts=frozenset({"LOCKED", "LOGU"})),
    "_best_effort_release": Contract(entry_facts=frozenset({"LOCKED"})),
    # Spawned recovery generators: roots with no caller.
    "_recover_compute": Contract(entry_point=True),
    "_recover_memory": Contract(entry_point=True),
    "_restore_memory": Contract(entry_point=True),
}


@dataclass
class Effects:
    """Head-scope effects of one CFG node's statement."""

    establishes_lock: bool = False
    releases_all: bool = False
    release_loop: bool = False  # For subtree releases -> clear on "false"
    release_site: bool = False
    release_direct: bool = False  # release verb posted by this method
    # Callees that release LOCKED on the caller's behalf; PROTO002/003
    # exempt them when their own summary shows they drain acks first.
    release_callees: List[str] = field(default_factory=list)
    posts_log: bool = False
    posts_obj: bool = False
    drains_log: bool = False
    drains_obj: bool = False
    loop_over_log: bool = False
    loop_over_obj: bool = False
    test_log: bool = False
    test_obj: bool = False
    cas_acquire: bool = False
    clears_casp: bool = False
    tx_none_guard: bool = False
    adds_claim: bool = False
    discards_claim: bool = False
    callees: List[str] = field(default_factory=list)  # executed self-calls


@dataclass
class Summary:
    """Bottom-up summary of one method, under its contract entry."""

    raises: Set[str] = field(default_factory=set)
    is_generator: bool = False
    # fact -> possibly active at normal exit
    at_exit: Dict[str, bool] = field(default_factory=dict)
    # fact -> {exc: possibly active when exc escapes}
    on_raise: Dict[str, Dict[str, bool]] = field(default_factory=dict)
    touches: Set[str] = field(default_factory=set)

    def fact_on_raise(self, fact: str, exc: str) -> bool:
        return self.on_raise.get(fact, {}).get(exc, False)


def _head_exprs(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions evaluated by the node itself (not its body)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _calls_in(tree: ast.AST) -> List[ast.Call]:
    return [n for n in ast.walk(tree) if isinstance(n, ast.Call)]


def _is_release_call(call: ast.Call) -> bool:
    name = dotted_name(call.func) or ""
    if name.endswith(".write_lock") and len(call.args) >= 4:
        arg = call.args[3]
        return isinstance(arg, ast.Constant) and arg.value == 0
    if name.endswith(".cas_lock") and len(call.args) >= 5:
        arg = call.args[4]
        return isinstance(arg, ast.Constant) and arg.value == 0
    return False


def _is_cas_acquire(call: ast.Call) -> bool:
    name = dotted_name(call.func) or ""
    if not name.endswith(".cas_lock") or len(call.args) < 5:
        return False
    arg = call.args[4]
    return not (isinstance(arg, ast.Constant) and arg.value == 0)


def _self_call_name(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name and name.startswith("self.") and name.count(".") == 1:
        return name.split(".", 1)[1]
    return None


class MethodModel:
    """One analyzed function: AST + provenance + a CFG + effects."""

    def __init__(self, func: ast.FunctionDef, class_name: str) -> None:
        self.func = func
        self.class_name = class_name
        self.name = func.name
        self.params = {
            arg.arg for arg in func.args.args + func.args.kwonlyargs
        }
        self.is_generator = any(
            stmt_yield_values(stmt)
            for node in ast.walk(func)
            if isinstance(node, ast.stmt)
            for stmt in [node]
        )
        self.provenance: Dict[str, Set[str]] = {}
        self._collect_provenance()
        self.handler_ranges = self._handler_ranges()
        self.contract = CONTRACTS.get(self.name, Contract())
        self.cfg: Optional[CFG] = None
        self.effects: Dict[int, Effects] = {}

    # -- provenance -----------------------------------------------------------

    def _tag(self, name: str, tag: str) -> None:
        self.provenance.setdefault(name, set()).add(tag)

    def _value_tags(self, value: ast.AST) -> Set[str]:
        tags: Set[str] = set()
        if isinstance(value, ast.Call):
            name = dotted_name(value.func) or ""
            if name.endswith("._cp"):
                tags.add(_TAG_CRASH_POINT)
            elif name.endswith(".process"):
                tags.add(_TAG_PROC)
            elif name.endswith(".write_log"):
                tags.add(_TAG_LOG_ACK)
            elif name.endswith(".write_object"):
                tags.add(_TAG_OBJ_ACK)
            elif name in self.params:
                tags.add(_TAG_APP_LOGIC)
        elif isinstance(value, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            for gen in value.generators:
                iter_name = dotted_name(gen.iter) or ""
                if iter_name.endswith("lock_procs"):
                    tags.add(_TAG_PROC)
            if isinstance(value.elt, ast.Call):
                tags |= self._value_tags(value.elt)
        return tags

    def _collect_provenance(self) -> None:
        for node in ast.walk(self.func):
            if isinstance(node, ast.Assign):
                tags = self._value_tags(node.value)
                for target in node.targets:
                    if isinstance(target, ast.Name) and tags:
                        for tag in tags:
                            self._tag(target.id, tag)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func) or ""
                if name.endswith(".append") and node.args:
                    owner = name.rsplit(".", 1)[0]
                    if "." not in owner:
                        tags = self._value_tags(node.args[0])
                        for tag in tags & {_TAG_LOG_ACK, _TAG_OBJ_ACK}:
                            self._tag(owner, tag)

    def _container_tags(self, expr: ast.AST) -> Set[str]:
        """Ack-container classification of a reference expression."""
        tags: Set[str] = set()
        name = dotted_name(expr)
        if name is not None:
            if name.endswith("log_acks"):
                tags.add(_TAG_LOG_ACK)
            base = name.split(".")[0]
            if "." not in name:
                tags |= self.provenance.get(base, set())
        return tags

    def _expr_refs_container(self, expr: ast.AST, tag: str) -> bool:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)):
                if tag in self._container_tags(node):
                    return True
        return False

    def _handler_ranges(self) -> List[Tuple[int, int, str]]:
        ranges = []
        for node in ast.walk(self.func):
            if isinstance(node, ast.ExceptHandler):
                start = node.body[0].lineno if node.body else node.lineno
                end = max(
                    getattr(n, "end_lineno", n.lineno)
                    for n in ast.walk(node)
                    if hasattr(n, "lineno")
                )
                caught = dotted_name(node.type) if node.type else "BaseException"
                ranges.append((start, end, caught or "Exception"))
        return ranges

    def in_handler(self, lineno: int) -> Optional[str]:
        for start, end, caught in self.handler_ranges:
            if start <= lineno <= end:
                return caught
        return None

    # -- yield classification -------------------------------------------------

    def yield_raises(
        self, stmt: ast.stmt, summaries: Dict[str, Summary]
    ) -> Set[str]:
        raises: Set[str] = set()
        for expr in stmt_yield_values(stmt):
            raises |= self._one_yield_raises(expr, summaries)
        return raises

    def _one_yield_raises(
        self, expr: ast.expr, summaries: Dict[str, Summary]
    ) -> Set[str]:
        value = expr.value
        if isinstance(expr, ast.YieldFrom):
            if isinstance(value, ast.Call):
                callee = _self_call_name(value)
                if callee is not None and callee in summaries:
                    return set(summaries[callee].raises) | {"GeneratorExit"}
                return set(_FALLIBLE)
            if isinstance(value, ast.Name):
                tags = self.provenance.get(value.id, set())
                if _TAG_APP_LOGIC in tags:
                    return set(_APP_LOGIC_RAISES)
            return set(_FALLIBLE)
        # Plain `yield <expr>`.
        if value is None:
            return set(_KILL_ONLY)
        if isinstance(value, ast.Name):
            tags = self.provenance.get(value.id, set())
            if tags and tags <= {_TAG_CRASH_POINT}:
                return set(_KILL_ONLY)
            if tags and tags <= {_TAG_PROC}:
                return set(_KILL_ONLY)
        if isinstance(value, ast.Call):
            name = dotted_name(value.func) or ""
            if name.endswith(".timeout"):
                return set(_KILL_ONLY)
            if name.endswith(".all_of") and value.args:
                arg = value.args[0]
                if isinstance(arg, ast.Name):
                    tags = self.provenance.get(arg.id, set())
                    if tags and tags <= {_TAG_PROC}:
                        return set(_KILL_ONLY)
                if isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    tags = self._value_tags(arg)
                    if tags and tags <= {_TAG_PROC}:
                        return set(_KILL_ONLY)
        return set(_FALLIBLE)

    def raises_for(self, summaries: Dict[str, Summary]):
        """The ``raises_for`` callback handed to the CFG builder."""

        def _raises(stmt: ast.stmt) -> Iterable[str]:
            raises = self.yield_raises(stmt, summaries)
            # Synchronous raises from executed self-calls and from
            # calling application logic directly (non-generator logic
            # runs at call time).
            for expr in _head_exprs(stmt):
                for call in _calls_in(expr):
                    if any(
                        call is y.value
                        or (y.value is not None and call in ast.walk(y.value))
                        for y in stmt_yield_values(stmt)
                        if isinstance(y, ast.YieldFrom)
                    ):
                        continue  # handled via the yield-from summary
                    callee = _self_call_name(call)
                    if callee is not None and callee in summaries:
                        if not summaries[callee].is_generator:
                            raises |= summaries[callee].raises
                    elif (
                        isinstance(call.func, ast.Name)
                        and call.func.id in self.params
                    ):
                        raises |= set(_APP_LOGIC_RAISES) - {"GeneratorExit"}
            return sorted(raises)

        return _raises

    # -- effects --------------------------------------------------------------

    def _executed_callees(
        self, stmt: ast.stmt, summaries: Dict[str, Summary]
    ) -> List[str]:
        """Self-calls whose body runs at this node: plain calls to
        non-generators, and yield-from'd generator calls."""
        callees = []
        yielded_from = set()
        for y in stmt_yield_values(stmt):
            if isinstance(y, ast.YieldFrom) and isinstance(y.value, ast.Call):
                name = _self_call_name(y.value)
                if name is not None:
                    yielded_from.add(id(y.value))
                    if name in summaries:
                        callees.append(name)
        for expr in _head_exprs(stmt):
            for call in _calls_in(expr):
                if id(call) in yielded_from:
                    continue
                name = _self_call_name(call)
                if name in summaries and not summaries[name].is_generator:
                    callees.append(name)
        return callees

    def compute_effects(
        self, cfg: CFG, summaries: Dict[str, Summary]
    ) -> Dict[int, Effects]:
        effects: Dict[int, Effects] = {}
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or isinstance(stmt, ast.ExceptHandler):
                effects[node.node_id] = Effects()
                continue
            eff = Effects()
            head = _head_exprs(stmt)
            head_calls = [c for expr in head for c in _calls_in(expr)]
            for call in head_calls:
                name = dotted_name(call.func) or ""
                if _is_release_call(call):
                    eff.releases_all = True
                    eff.release_site = True
                    eff.release_direct = True
                if _is_cas_acquire(call):
                    eff.cas_acquire = True
                if name.endswith(".write_log"):
                    eff.posts_log = True
                    eff.clears_casp = True
                if name.endswith(".write_object"):
                    eff.posts_obj = True
                if ".sim.process" in name or name == "self.sim.process":
                    pass
                if "._in_progress.add" in name:
                    eff.adds_claim = True
                if (
                    "._in_progress.discard" in name
                    or "._in_progress.pop" in name
                ):
                    eff.discards_claim = True
                if isinstance(call.func, ast.Name) and call.func.id in self.params:
                    eff.establishes_lock = True  # app logic may spawn locks
            # Assignments to intent.lock_result resolve the acquire.
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    tname = dotted_name(target) or ""
                    if tname.endswith(".lock_result"):
                        eff.clears_casp = True
            # Executed intra-class callees.
            eff.callees = self._executed_callees(stmt, summaries)
            for callee in eff.callees:
                summary = summaries[callee]
                if callee == "_lock_barrier":
                    eff.establishes_lock = True
                if self._summary_releases(summary):
                    eff.release_site = True
                    eff.release_callees.append(callee)
            # yield-from of application logic.
            for y in stmt_yield_values(stmt):
                if isinstance(y, ast.YieldFrom) and isinstance(y.value, ast.Name):
                    if _TAG_APP_LOGIC in self.provenance.get(y.value.id, set()):
                        eff.establishes_lock = True
            # For-loop whose subtree releases: cleared once exhausted.
            if isinstance(stmt, ast.For):
                subtree_release = any(
                    _is_release_call(c) for c in _calls_in(stmt)
                ) or any(
                    summaries.get(name) is not None
                    and self._summary_releases(summaries[name])
                    for c in _calls_in(stmt)
                    for name in [_self_call_name(c)]
                    if name is not None and name in summaries
                    and not summaries[name].is_generator
                )
                if subtree_release:
                    eff.release_loop = True
                tags = self._container_tags(stmt.iter)
                eff.loop_over_log = _TAG_LOG_ACK in tags
                eff.loop_over_obj = _TAG_OBJ_ACK in tags
            if isinstance(stmt, (ast.If, ast.While)):
                test = stmt.test
                eff.test_log = self._expr_refs_container(test, _TAG_LOG_ACK)
                eff.test_obj = self._expr_refs_container(test, _TAG_OBJ_ACK)
                if (
                    self.contract.tx_guard
                    and isinstance(test, ast.Compare)
                    and isinstance(test.left, ast.Name)
                    and test.left.id == self.contract.tx_guard
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Is)
                    and isinstance(test.comparators[0], ast.Constant)
                    and test.comparators[0].value is None
                ):
                    eff.tx_none_guard = True
            # Drains: a yield whose expression references an ack
            # container awaits (all of) it.
            for y in stmt_yield_values(stmt):
                if isinstance(y, ast.YieldFrom) or y.value is None:
                    continue
                if self._expr_refs_container(y.value, _TAG_LOG_ACK):
                    eff.drains_log = True
                if self._expr_refs_container(y.value, _TAG_OBJ_ACK):
                    eff.drains_obj = True
            effects[node.node_id] = eff
        return effects

    @staticmethod
    def _summary_releases(summary: Summary) -> bool:
        return "LOCKED" in summary.touches and not summary.at_exit.get(
            "LOCKED", True
        )


# ---------------------------------------------------------------------------
# May-dataflow over the CFG
# ---------------------------------------------------------------------------

# A state maps fact -> frozenset of origin lines (0 = held at entry by
# contract). An absent fact is inactive. Join = per-fact union.
State = Dict[str, FrozenSet[int]]

_NORMAL_LABELS = ("", "true", "false", "return")


def _join(into: State, other: State) -> bool:
    changed = False
    for fact, origins in other.items():
        have = into.get(fact)
        if have is None:
            into[fact] = origins
            changed = True
        elif not origins <= have:
            into[fact] = have | origins
            changed = True
    return changed


def _transfer(
    node: CFGNode,
    label: str,
    state: State,
    effects: Dict[int, Effects],
    summaries: Dict[str, Summary],
) -> State:
    eff = effects.get(node.node_id)
    if eff is None:
        return dict(state)
    out = dict(state)
    exc = label if label not in _NORMAL_LABELS else None

    def _clear(fact: str) -> None:
        out.pop(fact, None)

    def _set(fact: str) -> None:
        out[fact] = out.get(fact, frozenset()) | {node.lineno}

    # 1. clears
    if eff.releases_all:
        _clear("LOCKED")
    if label == "false" and eff.release_loop:
        _clear("LOCKED")
    if exc is None and eff.drains_log:
        _clear("LOGU")
    if exc is None and eff.drains_obj:
        _clear("OBJU")
    if label == "false" and (eff.loop_over_log or eff.test_log):
        _clear("LOGU")
    if label == "false" and (eff.loop_over_obj or eff.test_obj):
        _clear("OBJU")
    if eff.clears_casp:
        _clear("CASP")
    if label == "true" and eff.tx_none_guard:
        # tx is None: the contract facts are vacuous (no transaction).
        for fact in list(out):
            if out[fact] == frozenset({0}):
                _clear(fact)

    # 2. executed-callee transforms (facts the callee touches)
    for callee in eff.callees:
        summary = summaries[callee]
        for fact in ("LOCKED", "LOGU", "OBJU"):
            if fact not in summary.touches:
                continue
            if exc is None:
                active = summary.at_exit.get(fact, False)
            else:
                active = summary.fact_on_raise(fact, exc)
            if active:
                if fact not in out:
                    out[fact] = frozenset({node.lineno})
            else:
                _clear(fact)

    # 3. establishes / posts
    if eff.establishes_lock:
        _set("LOCKED")
    if eff.posts_log:
        _set("LOGU")
    if eff.posts_obj:
        _set("OBJU")
    if eff.cas_acquire:
        _set("CASP")
    return out


def _run_dataflow(
    cfg: CFG,
    effects: Dict[int, Effects],
    summaries: Dict[str, Summary],
    entry_facts: FrozenSet[str],
) -> Dict[int, State]:
    states: Dict[int, State] = {
        cfg.entry.node_id: {fact: frozenset({0}) for fact in entry_facts}
    }
    worklist = [cfg.entry]
    iterations = 0
    while worklist and iterations < 100_000:
        iterations += 1
        node = worklist.pop()
        in_state = states.get(node.node_id, {})
        for target, label in node.succs:
            out = _transfer(node, label, in_state, effects, summaries)
            have = states.get(target.node_id)
            if have is None:
                # First visit: record even an empty state so propagation
                # continues through fact-free regions of the graph.
                states[target.node_id] = out
                worklist.append(target)
            elif _join(have, out):
                worklist.append(target)
    return states


def _terminal_states(
    cfg: CFG,
    states: Dict[int, State],
    effects: Dict[int, Effects],
    summaries: Dict[str, Summary],
) -> List[Tuple[CFGNode, str, CFGNode, State]]:
    """(source node, edge label, terminal, state-on-edge) for every
    edge into exit / raise_exit / kill_exit."""
    rows = []
    terminals = {cfg.exit.node_id, cfg.raise_exit.node_id, cfg.kill_exit.node_id}
    for node in cfg.nodes:
        if node.node_id not in states:
            continue
        for target, label in node.succs:
            if target.node_id in terminals:
                out = _transfer(
                    node, label, states[node.node_id], effects, summaries
                )
                rows.append((node, label, target, out))
    return rows


def _summarize(
    model: MethodModel,
    cfg: CFG,
    states: Dict[int, State],
    effects: Dict[int, Effects],
    summaries: Dict[str, Summary],
) -> Summary:
    summary = Summary(is_generator=model.is_generator)
    touched: Set[str] = set()
    for eff in effects.values():
        if eff.establishes_lock or eff.releases_all or eff.release_loop:
            touched.add("LOCKED")
        if eff.posts_log or eff.drains_log or eff.loop_over_log or eff.test_log:
            touched.add("LOGU")
        if eff.posts_obj or eff.drains_obj or eff.loop_over_obj or eff.test_obj:
            touched.add("OBJU")
        for callee in eff.callees:
            touched |= summaries[callee].touches
    summary.touches = touched
    for fact in ("LOCKED", "LOGU", "OBJU"):
        summary.at_exit[fact] = False
        summary.on_raise[fact] = {}
    for node, label, terminal, state in _terminal_states(
        cfg, states, effects, summaries
    ):
        if terminal is cfg.exit:
            for fact in ("LOCKED", "LOGU", "OBJU"):
                if fact in state:
                    summary.at_exit[fact] = True
        else:
            exc = label if label not in _NORMAL_LABELS else "Exception"
            if exc in _ORACLE_EXCS:
                continue
            summary.raises.add(exc)
            for fact in ("LOCKED", "LOGU", "OBJU"):
                if fact in state:
                    summary.on_raise[fact][exc] = True
    return summary


# ---------------------------------------------------------------------------
# Violation path reconstruction (for PROTO001 anchors)
# ---------------------------------------------------------------------------

def _leak_paths(
    cfg: CFG,
    effects: Dict[int, Effects],
    summaries: Dict[str, Summary],
    entry_facts: FrozenSet[str],
) -> List[Tuple[CFGNode, str, List[Tuple[CFGNode, str]]]]:
    """Search (node, locked?) states for paths reaching exit/raise_exit
    with LOCKED held. Returns (terminal, escaping label, path) rows,
    one per distinct anchor."""
    start = (cfg.entry.node_id, "LOCKED" in entry_facts)
    parents: Dict[Tuple[int, bool], Tuple[Tuple[int, bool], CFGNode, str]] = {}
    seen = {start}
    queue = [start]
    by_id = {node.node_id: node for node in cfg.nodes}
    terminal_ids = {cfg.exit.node_id, cfg.raise_exit.node_id}
    hits: List[Tuple[CFGNode, str, Tuple[int, bool], CFGNode]] = []
    hit_keys: Set[Tuple[int, str]] = set()
    while queue:
        state = queue.pop(0)
        node_id, locked = state
        node = by_id[node_id]
        in_state: State = {"LOCKED": frozenset({0})} if locked else {}
        for target, label in node.succs:
            out = _transfer(node, label, in_state, effects, summaries)
            if target.node_id in terminal_ids:
                # Record EVERY escaping edge that still carries LOCKED —
                # distinct raise sites share the terminal node, so this
                # must not be gated on first-visit.
                key = (node.node_id, label)
                if (
                    "LOCKED" in out
                    and label != "GeneratorExit"
                    and key not in hit_keys
                ):
                    hit_keys.add(key)
                    hits.append((target, label, state, node))
                continue
            nxt = (target.node_id, "LOCKED" in out)
            if nxt not in seen:
                seen.add(nxt)
                parents[nxt] = (state, node, label)
                queue.append(nxt)
    rows = []
    for terminal, label, state, last in hits:
        path: List[Tuple[CFGNode, str]] = []
        cursor = state
        while cursor in parents:
            cursor, node, lab = parents[cursor]
            path.append((node, lab))
        path.reverse()
        path.append((last, label))
        rows.append((terminal, label, path))
    return rows


def _anchor(path: List[Tuple[CFGNode, str]]) -> Tuple[CFGNode, str]:
    """The node that last (re-)originated the escaping exception: the
    last node on the path whose outgoing label is an exception and
    differs from its incoming label."""
    best = path[-1] if path else (None, "")
    prev_label = ""
    for node, label in path:
        if label not in _NORMAL_LABELS and label != prev_label:
            best = (node, label)
        prev_label = label
    return best


# ---------------------------------------------------------------------------
# Per-file analysis driver
# ---------------------------------------------------------------------------

class ModuleAnalysis:
    """Analyze one source file: every method of every class, plus
    module-level functions (as methods of a pseudo-class)."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.models: Dict[str, MethodModel] = {}
        self.summaries: Dict[str, Summary] = {}
        self.states: Dict[str, Dict[int, State]] = {}
        self.cfgs: Dict[str, CFG] = {}
        self._collect()

    def _collect(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self.models[item.name] = MethodModel(item, node.name)
            elif isinstance(node, ast.FunctionDef):
                self.models[node.name] = MethodModel(node, "<module>")

    def _topo_order(self) -> List[str]:
        """Callees before callers over the intra-module call graph."""
        calls: Dict[str, Set[str]] = {}
        for name, model in self.models.items():
            callees = set()
            for call in _calls_in(model.func):
                callee = _self_call_name(call)
                if callee is not None and callee in self.models:
                    callees.add(callee)
            calls[name] = callees - {name}
        order: List[str] = []
        visiting: Set[str] = set()
        done: Set[str] = set()

        def visit(name: str) -> None:
            if name in done or name in visiting:
                return  # cycles fall back to whatever summary exists
            visiting.add(name)
            for callee in sorted(calls.get(name, ())):
                visit(callee)
            visiting.discard(name)
            done.add(name)
            order.append(name)

        for name in sorted(self.models):
            visit(name)
        return order

    def analyze(self) -> None:
        for name in self._topo_order():
            model = self.models[name]
            cfg = build_cfg(model.func, model.raises_for(self.summaries))
            effects = model.compute_effects(cfg, self.summaries)
            states = _run_dataflow(
                cfg, effects, self.summaries, model.contract.entry_facts
            )
            self.cfgs[name] = cfg
            self.states[name] = states
            model.effects = effects
            model.cfg = cfg
            self.summaries[name] = _summarize(
                model, cfg, states, effects, self.summaries
            )

    # -- rules ---------------------------------------------------------------

    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for name, model in self.models.items():
            out.extend(self._check_proto001(name, model))
            out.extend(self._check_proto002_003(name, model))
            out.extend(self._check_proto005(name, model))
            out.extend(self._check_proto006(name, model))
            out.extend(self._check_proto007(name, model))
        return out

    def _fmt_origins(self, origins: FrozenSet[int]) -> str:
        if origins == frozenset({0}):
            return "held at entry (contract)"
        lines = sorted(line for line in origins if line)
        entry = " and at entry (contract)" if 0 in origins else ""
        return "acquired/posted at line " + ", ".join(map(str, lines)) + entry

    def _check_proto001(self, name: str, model: MethodModel) -> List[Finding]:
        if not model.contract.entry_point:
            return []
        cfg = self.cfgs[name]
        rows = _leak_paths(
            cfg, model.effects, self.summaries, model.contract.entry_facts
        )
        found: List[Finding] = []
        seen: Set[Tuple[int, str]] = set()
        # Origin detail from the full dataflow (with origin lines).
        states = self.states[name]
        for terminal, label, path in rows:
            node, exc = _anchor(path)
            if node is None:
                continue
            key = (node.lineno, exc or label)
            if key in seen:
                continue
            seen.add(key)
            origins: FrozenSet[int] = frozenset()
            for path_node, _lab in path:
                state = states.get(path_node.node_id, {})
                origins = origins | state.get("LOCKED", frozenset())
            how = (
                f"`{exc}` raised here escapes `{name}`"
                if terminal is cfg.raise_exit
                else f"`{name}` returns"
            )
            found.append(
                Finding(
                    self.path,
                    node.lineno,
                    0,
                    "PROTO001",
                    f"{how} while the write-set locks may still be held "
                    f"({self._fmt_origins(origins)}): no release, "
                    "invalidate-before-unlock, or recovery hand-off on "
                    "this path",
                )
            )
        return found

    def _check_proto002_003(self, name: str, model: MethodModel) -> List[Finding]:
        cfg = self.cfgs[name]
        states = self.states[name]
        found = []
        for node in cfg.stmt_nodes():
            eff = model.effects.get(node.node_id)
            if eff is None or not eff.release_site:
                continue
            state = states.get(node.node_id)
            if not state:
                continue
            for fact, rule, what in (
                ("LOGU", "PROTO002", "log-write"),
                ("OBJU", "PROTO003", "object-write"),
            ):
                origins = state.get(fact)
                if origins and not eff.release_direct:
                    # Release performed by a callee: exempt when every
                    # releasing callee drains this ack class itself
                    # before unlocking (e.g. _abort drains log acks,
                    # recover_interrupted drains both).
                    def _callee_drains(callee: str) -> bool:
                        summary = self.summaries[callee]
                        return fact in summary.touches and not (
                            summary.at_exit.get(fact, True)
                        )

                    if eff.release_callees and all(
                        _callee_drains(c) for c in eff.release_callees
                    ):
                        origins = None
                if origins:
                    found.append(
                        Finding(
                            self.path,
                            node.lineno,
                            0,
                            rule,
                            f"lock release in `{name}` executes while "
                            f"{what} acks may be un-drained "
                            f"({self._fmt_origins(origins)})",
                        )
                    )
        return found

    def _rdma_escapes(self, cfg: CFG, node: CFGNode) -> bool:
        """Does an RdmaError raised at *node* escape the method?"""
        queue = [t for t, label in node.succs if label == "RdmaError"]
        seen = set()
        while queue:
            cursor = queue.pop()
            if cursor.node_id in seen:
                continue
            seen.add(cursor.node_id)
            if cursor is cfg.raise_exit:
                return True
            for target, label in cursor.succs:
                if label == "RdmaError":
                    queue.append(target)
        return False

    def _callers_guard(self, name: str) -> bool:
        """Every intra-module caller wraps the call in try/except
        RdmaError (the _acquire pattern). False when no caller exists."""
        callers = []
        for other, model in self.models.items():
            if other == name:
                continue
            for call in _calls_in(model.func):
                if _self_call_name(call) == name:
                    callers.append((model, call))
        if not callers:
            return False
        for model, call in callers:
            guarded = False
            for node in ast.walk(model.func):
                if not isinstance(node, ast.Try):
                    continue
                in_body = any(
                    call in ast.walk(stmt) for stmt in node.body
                )
                if not in_body:
                    continue
                for handler in node.handlers:
                    caught = (
                        None
                        if handler.type is None
                        else dotted_name(handler.type)
                    )
                    if caught is None or caught.rsplit(".", 1)[-1] in (
                        "RdmaError",
                        "Exception",
                        "BaseException",
                    ):
                        guarded = True
            if not guarded:
                return False
        return True

    def _check_proto005(self, name: str, model: MethodModel) -> List[Finding]:
        cfg = self.cfgs[name]
        states = self.states[name]
        found = []
        raises_for = model.raises_for(self.summaries)
        for node in cfg.stmt_nodes():
            if not node.is_yield or node.stmt is None:
                continue
            state = states.get(node.node_id, {})
            if "CASP" not in state:
                continue
            if "RdmaError" not in raises_for(node.stmt):
                continue
            if not self._rdma_escapes(cfg, node):
                continue
            if self._callers_guard(name):
                continue
            origins = state["CASP"]
            found.append(
                Finding(
                    self.path,
                    node.lineno,
                    0,
                    "PROTO005",
                    f"yield in `{name}` suspends between the CAS "
                    f"lock-acquire ({self._fmt_origins(origins)}) and its "
                    "log post, and the RdmaError escapes with no "
                    "registered interrupt handler (not caught in-method "
                    "or by every caller)",
                )
            )
        return found

    def _check_proto006(self, name: str, model: MethodModel) -> List[Finding]:
        adds = [
            node
            for node in ast.walk(model.func)
            if isinstance(node, ast.Call)
            and "._in_progress.add" in (dotted_name(node.func) or "")
        ]
        if not adds:
            return []
        spawned: List[str] = []
        for call in _calls_in(model.func):
            fn = dotted_name(call.func) or ""
            if fn.endswith(".process") and call.args:
                inner = call.args[0]
                if isinstance(inner, ast.Call):
                    callee = _self_call_name(inner)
                    if callee is not None:
                        spawned.append(callee)
        found = []
        for add in adds:
            if not spawned:
                found.append(
                    Finding(
                        self.path,
                        add.lineno,
                        0,
                        "PROTO006",
                        f"`{name}` claims _in_progress but spawns no "
                        "generator that could release it on kill",
                    )
                )
                continue
            for gen_name in spawned:
                gen_model = self.models.get(gen_name)
                gen_cfg = self.cfgs.get(gen_name)
                if gen_model is None or gen_cfg is None:
                    continue
                leak = self._claim_leak_terminal(gen_cfg, gen_model)
                if leak is not None:
                    found.append(
                        Finding(
                            self.path,
                            add.lineno,
                            0,
                            "PROTO006",
                            f"claim added here is not released on the "
                            f"{leak} path of `{gen_name}`: no "
                            "_in_progress.discard/.pop runs before that "
                            "exit (a mid-recovery kill leaks the claim "
                            "and the node becomes unrecoverable)",
                        )
                    )
        return found

    def _claim_leak_terminal(
        self, cfg: CFG, model: MethodModel
    ) -> Optional[str]:
        """First terminal reachable without passing a discard node."""
        labels = {
            cfg.kill_exit.node_id: "kill (GeneratorExit)",
            cfg.raise_exit.node_id: "exception",
            cfg.exit.node_id: "normal-return",
        }
        queue = [cfg.entry]
        seen = set()
        while queue:
            node = queue.pop()
            if node.node_id in seen:
                continue
            seen.add(node.node_id)
            if node.node_id in labels:
                return labels[node.node_id]
            eff = model.effects.get(node.node_id)
            if eff is not None and eff.discards_claim:
                continue  # claim released; stop this path
            for target, _label in node.succs:
                queue.append(target)
        return None

    def _check_proto007(self, name: str, model: MethodModel) -> List[Finding]:
        cfg = self.cfgs[name]
        raises_for = model.raises_for(self.summaries)
        found = []
        for node in cfg.stmt_nodes():
            if not node.is_yield or node.stmt is None:
                continue
            handler = model.in_handler(node.lineno)
            if handler is None:
                continue
            if "RdmaError" not in raises_for(node.stmt):
                continue
            if not self._rdma_escapes(cfg, node):
                continue
            found.append(
                Finding(
                    self.path,
                    node.lineno,
                    0,
                    "PROTO007",
                    f"fallible yield inside `except {handler}` handler of "
                    f"`{name}`: an RdmaError here escapes the method, "
                    "skipping the cleanup this handler owes (guard it "
                    "per-event with try/except RdmaError)",
                )
            )
        return found


# ---------------------------------------------------------------------------
# PROTO004: cross-file crash-point coverage
# ---------------------------------------------------------------------------

def _declared_crash_points(
    analyses: List[ModuleAnalysis],
) -> Dict[str, Tuple[str, int]]:
    declared: Dict[str, Tuple[str, int]] = {}
    for analysis in analyses:
        for node in ast.walk(analysis.tree):
            if (
                isinstance(node, ast.Call)
                and (dotted_name(node.func) or "").endswith("._cp")
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                name = node.args[0].value
                declared.setdefault(name, (analysis.path, node.lineno))
    return declared


def _crash_point_lists(path: str, source: str) -> List[Tuple[str, int]]:
    """String literals inside *CRASH_POINTS* list/tuple assignments."""
    refs: List[Tuple[str, int]] = []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return refs
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        names = [
            t.id
            for t in node.targets
            if isinstance(t, ast.Name) and "CRASH_POINTS" in t.id
        ]
        if not names or not isinstance(node.value, (ast.List, ast.Tuple)):
            continue
        for element in node.value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                refs.append((element.value, element.lineno))
    return refs


def _json_points(blob: Any) -> List[str]:
    points = []
    if isinstance(blob, dict):
        for key, value in blob.items():
            if key in ("point", "crash_point") and isinstance(value, str):
                points.append(value)
            else:
                points.extend(_json_points(value))
    elif isinstance(blob, list):
        for item in blob:
            points.extend(_json_points(item))
    return points


def _read(path: str, overlay: Optional[Dict[str, str]]) -> Optional[str]:
    if overlay:
        resolved = os.path.abspath(path)
        for key, text in overlay.items():
            if os.path.abspath(key) == resolved:
                return text
    try:
        with open(path, "r") as handle:
            return handle.read()
    except OSError:
        return None


def _check_proto004(
    analyses: List[ModuleAnalysis],
    root: str,
    overlay: Optional[Dict[str, str]],
    relpath,
) -> List[Finding]:
    declared = _declared_crash_points(analyses)
    referenced: Set[str] = set()
    findings: List[Finding] = []

    list_files = [
        os.path.join(root, "src", "repro", "litmus", "runner.py"),
        os.path.join(root, "src", "repro", "chaos", "schedule.py"),
    ]
    for path in list_files:
        source = _read(path, overlay)
        if source is None:
            continue
        for name, line in _crash_point_lists(path, source):
            referenced.add(name)
            if name not in declared:
                findings.append(
                    Finding(
                        relpath(path),
                        line,
                        0,
                        "PROTO004",
                        f"crash point '{name}' is listed here but no "
                        "engine declares it via self._cp(...)",
                    )
                )

    schedules_dir = os.path.join(root, "tests", "chaos", "schedules")
    if os.path.isdir(schedules_dir):
        for entry in sorted(os.listdir(schedules_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(schedules_dir, entry)
            source = _read(path, overlay)
            if source is None:
                continue
            try:
                blob = json.loads(source)
            except ValueError:
                continue
            for name in _json_points(blob):
                referenced.add(name)
                if name not in declared:
                    findings.append(
                        Finding(
                            relpath(path),
                            1,
                            0,
                            "PROTO004",
                            f"chaos schedule references crash point "
                            f"'{name}' that no engine declares",
                        )
                    )

    # Tests referencing a declared point by literal name count as
    # coverage (regex scan; declared-direction only).
    tests_dir = os.path.join(root, "tests")
    pending = {name for name in declared if name not in referenced}
    if pending and os.path.isdir(tests_dir):
        for dirpath, _dirnames, filenames in os.walk(tests_dir):
            for filename in filenames:
                if not filename.endswith(".py"):
                    continue
                source = _read(os.path.join(dirpath, filename), overlay)
                if source is None:
                    continue
                for name in list(pending):
                    if f'"{name}"' in source or f"'{name}'" in source:
                        referenced.add(name)
                        pending.discard(name)
                if not pending:
                    break
            if not pending:
                break

    for name, (path, line) in sorted(declared.items()):
        if name not in referenced:
            findings.append(
                Finding(
                    relpath(path),
                    line,
                    0,
                    "PROTO004",
                    f"crash point '{name}' declared here is referenced by "
                    "no chaos schedule, litmus CRASH_POINTS list, or test "
                    "— it can never be exercised",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Suppressions + PROTO008
# ---------------------------------------------------------------------------

@dataclass
class Suppression:
    path: str
    line: int
    rules: Optional[Set[str]]  # None = all rules
    reason: str
    used: bool = False


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    out = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = match.group(1)
        rules = (
            None
            if codes is None
            else {code.strip() for code in codes.split(",") if code.strip()}
        )
        out.append(
            Suppression(path, lineno, rules, (match.group(2) or "").strip())
        )
    return out


def apply_suppressions(
    findings: List[Finding], suppressions: List[Suppression]
) -> Tuple[List[Finding], List[Finding]]:
    """Returns (kept findings, PROTO008 hygiene findings)."""
    by_anchor: Dict[Tuple[str, int], List[Suppression]] = {}
    hygiene: List[Finding] = []
    for sup in suppressions:
        if sup.rules is not None:
            unknown = sorted(code for code in sup.rules if code not in RULES)
            for code in unknown:
                hygiene.append(
                    Finding(
                        sup.path,
                        sup.line,
                        0,
                        "PROTO008",
                        f"suppression names unknown rule code '{code}'",
                    )
                )
        # A suppression on line L covers findings anchored at L and L+1
        # (same-line and next-line placement).
        by_anchor.setdefault((sup.path, sup.line), []).append(sup)
        by_anchor.setdefault((sup.path, sup.line + 1), []).append(sup)
    kept = []
    for finding in findings:
        if finding.rule == "PROTO008":
            kept.append(finding)  # hygiene findings are not suppressible
            continue
        matched = False
        for sup in by_anchor.get((finding.path, finding.line), ()):
            if sup.rules is None or finding.rule in sup.rules:
                sup.used = True
                matched = True
        if not matched:
            kept.append(finding)
    for sup in suppressions:
        if not sup.used:
            hygiene.append(
                Finding(
                    sup.path,
                    sup.line,
                    0,
                    "PROTO008",
                    "stale suppression: no protolint finding is anchored "
                    "on this or the next line"
                    + (f" (reason given: {sup.reason})" if sup.reason else ""),
                )
            )
    return kept, hygiene


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path: str) -> Set[Tuple[str, str, int, str]]:
    try:
        with open(path, "r") as handle:
            blob = json.load(handle)
    except (OSError, ValueError):
        return set()
    return {
        (f["path"], f["rule"], int(f["line"]), f["message"])
        for f in blob.get("findings", ())
    }


def filter_baseline(
    findings: List[Finding], baseline: Set[Tuple[str, str, int, str]]
) -> List[Finding]:
    return [
        f
        for f in findings
        if (f.path, f.rule, f.line, f.message) not in baseline
    ]


def write_baseline(findings: List[Finding], path: str) -> None:
    blob = {
        "version": 1,
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "rule": f.rule,
                "message": f.message,
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ],
    }
    with open(path, "w") as handle:
        json.dump(blob, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _repo_root() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def run_protolint(
    paths: Optional[List[str]] = None,
    overlay: Optional[Dict[str, str]] = None,
    root: Optional[str] = None,
) -> List[Finding]:
    """Analyze the engine files; returns findings after suppressions.

    ``overlay`` maps file paths to replacement source text — the
    mutation harness uses it to lint seeded mutants without touching
    disk. Paths in findings are repo-root-relative when possible.
    """
    root = root if root is not None else _repo_root()

    def relpath(path: str) -> str:
        try:
            rel = os.path.relpath(path, root)
        except ValueError:  # different drive (windows)
            return path
        return path if rel.startswith("..") else rel.replace(os.sep, "/")

    if paths is None:
        import glob as _glob

        paths = []
        for pattern in DEFAULT_ENGINE_GLOBS:
            paths.extend(sorted(_glob.glob(os.path.join(root, pattern))))
        # legacy.py is the frozen pre-refactor parity reference, not a
        # shipped engine: analyzing it would let its verbatim copies of
        # crash points / guard blocks mask mutations seeded into the
        # live engine files (PROTO004's cross-file name check).
        paths = [
            p
            for p in paths
            if not p.endswith("__init__.py") and not p.endswith("legacy.py")
        ]

    analyses: List[ModuleAnalysis] = []
    findings: List[Finding] = []
    suppressions: List[Suppression] = []
    for path in paths:
        source = _read(path, overlay)
        if source is None:
            continue
        rel = relpath(path)
        try:
            analysis = ModuleAnalysis(rel, source)
        except SyntaxError as error:
            findings.append(
                Finding(
                    rel,
                    error.lineno or 1,
                    0,
                    "PROTO001",
                    f"file does not parse: {error.msg}",
                )
            )
            continue
        analysis.analyze()
        analyses.append(analysis)
        findings.extend(analysis.findings())
        suppressions.extend(parse_suppressions(rel, source))

    findings.extend(_check_proto004(analyses, root, overlay, relpath))
    kept, hygiene = apply_suppressions(findings, suppressions)
    kept.extend(hygiene)
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return kept


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_text(findings: List[Finding]) -> str:
    if not findings:
        return "protolint: no violations"
    lines = [finding.render() for finding in findings]
    lines.append(f"protolint: {len(findings)} violation(s)")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    return json.dumps(
        {
            "tool": "protolint",
            "rules": RULES,
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                }
                for f in findings
            ],
            "count": len(findings),
        },
        indent=2,
    )
