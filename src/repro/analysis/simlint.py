"""simlint — an AST-based determinism linter for simulation code.

A discrete-event simulator is only as reproducible as its purity: one
wall-clock read or one iteration over an unordered ``set`` feeding the
event queue silently breaks seed-stable replays. ``simlint`` encodes
the project's purity rules as ~8 AST checks over stdlib ``ast`` (no
third-party dependencies) and is wired into CI next to ruff.

Rules (full rationale in ``docs/ANALYSIS.md``):

==========  ============================================================
SIM001      wall-clock access (``time.time``, ``datetime.now``, ...)
SIM002      module-level ``random.*`` call (thread a seeded
            ``random.Random`` explicitly instead)
SIM003      iteration over an unordered ``set`` expression
SIM004      mutable default argument
SIM005      bare ``except:``
SIM006      ``= None`` default whose annotation is not ``Optional``
SIM007      ``print()`` outside the CLI/report allowlist (use ``Obs``)
SIM008      nondeterministic entropy (``os.urandom``, ``uuid.uuid4``,
            ``secrets``, builtin ``hash()``)
==========  ============================================================

Suppression: append ``# simlint: disable=SIM003`` (comma-separate for
several rules) or a bare ``# simlint: disable`` to the flagged line.

Entry point: ``python -m repro.analysis lint [paths] [--format json]``.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]

RULES: Dict[str, str] = {
    "SIM001": "wall-clock access in simulation code (use the kernel's virtual time)",
    "SIM002": "module-level random.* call (thread a seeded random.Random explicitly)",
    "SIM003": "iteration over an unordered set expression (order is not deterministic)",
    "SIM004": "mutable default argument",
    "SIM005": "bare except (catch specific exceptions)",
    "SIM006": "parameter defaults to None but its annotation is not Optional",
    "SIM007": "print() outside the CLI/report allowlist (instrument via the Obs facade)",
    "SIM008": "nondeterministic entropy source",
}

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.sleep",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)

_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "random.SystemRandom",
    }
)

# random.<attr> calls on the *module-level* singleton that are allowed:
# constructing an explicit generator is exactly what SIM002 asks for.
_RANDOM_ALLOWED_ATTRS = frozenset({"Random"})

# Files whose whole job is writing to stdout for a human: the CLIs and
# the report renderers (bench tables/series, obs flight reports).
# Matched as normalized path suffixes on component boundaries, so a
# stray ``report.py`` elsewhere in the tree is NOT exempt.
_PRINT_ALLOWED_SUFFIXES = (
    "cli.py",
    "__main__.py",
    "repro/bench/report.py",
    "repro/obs/report.py",
)


def _print_allowed(path: str) -> bool:
    normalized = path.replace(os.sep, "/")
    return any(
        normalized == suffix or normalized.endswith("/" + suffix)
        for suffix in _PRINT_ALLOWED_SUFFIXES
    )

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})

_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable(?:=([A-Z0-9,\s]+))?")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed rule set (None = all rules)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            table[number] = None
        else:
            table[number] = {rule.strip() for rule in listed.split(",") if rule.strip()}
    return table


def _dotted_name(node: ast.AST) -> Optional[str]:
    """'a.b.c' for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_allows_none(node: Optional[ast.AST]) -> bool:
    """True if the annotation admits None (Optional/Union[...,None]/Any)."""
    if node is None:
        return False
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True
        if isinstance(node.value, str):
            # String annotation: accept if it names Optional/None/Any.
            text = node.value
            return "Optional" in text or "None" in text or text in ("Any", "object")
        return False
    if isinstance(node, ast.Name):
        return node.id in ("Any", "object", "None")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Any", "object")
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # PEP 604: X | None
        return _annotation_allows_none(node.left) or _annotation_allows_none(node.right)
    if isinstance(node, ast.Subscript):
        base = _dotted_name(node.value)
        tail = base.rsplit(".", 1)[-1] if base else ""
        if tail == "Optional":
            return True
        if tail == "Union":
            inner = node.slice
            elements = inner.elts if isinstance(inner, ast.Tuple) else [inner]
            return any(_annotation_allows_none(element) for element in elements)
    return False


def _is_set_expression(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, detail: str = "") -> None:
        message = RULES[rule] if not detail else f"{RULES[rule]}: {detail}"
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- call-based rules (SIM001/002/007/008) ------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            if dotted in _WALL_CLOCK_CALLS:
                self._flag(node, "SIM001", dotted)
            elif dotted in _ENTROPY_CALLS:
                self._flag(node, "SIM008", dotted)
            elif (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "random"
                and node.func.attr not in _RANDOM_ALLOWED_ATTRS
            ):
                self._flag(node, "SIM002", dotted)
        if isinstance(node.func, ast.Name):
            if node.func.id == "print" and not _print_allowed(self.path):
                self._flag(node, "SIM007")
            elif node.func.id == "hash":
                self._flag(
                    node, "SIM008", "builtin hash() is PYTHONHASHSEED-dependent for str"
                )
        self.generic_visit(node)

    # -- iteration over unordered sets (SIM003) -----------------------------

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expression(node.iter):
            self._flag(node.iter, "SIM003")
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        if _is_set_expression(node.iter):
            self._flag(node.iter, "SIM003")
        self.generic_visit(node)

    def _check_comprehensions(self, node) -> None:
        for generator in node.generators:
            if _is_set_expression(generator.iter):
                self._flag(generator.iter, "SIM003")

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehensions(node)
        self.generic_visit(node)

    # -- function signatures (SIM004/SIM006) --------------------------------

    def _check_signature(self, node) -> None:
        arguments = node.args
        positional = list(arguments.posonlyargs) + list(arguments.args)
        # defaults align with the tail of the positional parameter list.
        offset = len(positional) - len(arguments.defaults)
        pairs = [
            (positional[offset + index], default)
            for index, default in enumerate(arguments.defaults)
        ]
        pairs += [
            (argument, default)
            for argument, default in zip(arguments.kwonlyargs, arguments.kw_defaults)
            if default is not None
        ]
        for argument, default in pairs:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self._flag(default, "SIM004", f"parameter {argument.arg!r}")
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
            ):
                self._flag(default, "SIM004", f"parameter {argument.arg!r}")
            if (
                isinstance(default, ast.Constant)
                and default.value is None
                and argument.annotation is not None
                and not _annotation_allows_none(argument.annotation)
            ):
                self._flag(argument, "SIM006", f"parameter {argument.arg!r}")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_signature(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_signature(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_signature(node)
        self.generic_visit(node)

    # -- bare except (SIM005) -----------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._flag(node, "SIM005")
        self.generic_visit(node)


def lint_source(
    source: str, path: str = "<string>", select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint one source string; returns surviving findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                path=path,
                line=error.lineno or 1,
                col=error.offset or 0,
                rule="SIM000",
                message=f"syntax error: {error.msg}",
            )
        ]
    visitor = _Visitor(path)
    visitor.visit(tree)
    suppressed = _suppressions(source)
    selected = set(select) if select is not None else None
    findings = []
    for finding in visitor.findings:
        if selected is not None and finding.rule not in selected:
            continue
        rules_off = suppressed.get(finding.line, "unset")
        if rules_off is None:  # bare "# simlint: disable"
            continue
        if rules_off != "unset" and finding.rule in rules_off:
            continue
        findings.append(finding)
    return findings


def lint_file(path: str, select: Optional[Iterable[str]] = None) -> List[Finding]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path=path, select=select)


def _python_files(path: str) -> List[str]:
    if os.path.isfile(path):
        return [path]
    collected = []
    for root, directories, files in os.walk(path):
        directories.sort()  # deterministic traversal order
        for name in sorted(files):
            if name.endswith(".py"):
                collected.append(os.path.join(root, name))
    return collected


def lint_paths(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint files/directories; findings sorted by (path, line, col)."""
    findings: List[Finding] = []
    for path in paths:
        for filename in _python_files(path):
            findings.extend(lint_file(filename, select=select))
    findings.sort(key=lambda finding: (finding.path, finding.line, finding.col))
    return findings


def render_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    lines.append(f"simlint: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (one object per finding)."""
    payload = {
        "tool": "simlint",
        "rules": RULES,
        "findings": [asdict(finding) for finding in findings],
        "count": len(findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
