"""Entry point: ``python -m repro.analysis`` (also ``repro-analysis``).

Subcommands::

    python -m repro.analysis lint [paths...] [--format json] [--select SIM00x,...]
    python -m repro.analysis protolint [paths...] [--format json]
        [--baseline FILE] [--write-baseline]
    python -m repro.analysis races [traces...] [--format json]
    python -m repro.analysis mutants [--only name ...]

``lint``/``protolint`` exit nonzero if any finding survives (protolint
after subtracting the committed baseline); ``races`` exits nonzero if
any flight-recorder trace shows a lock-discipline race; ``mutants``
exits nonzero unless every seeded protocol mutation is detected and
every control run is clean. All are wired into CI (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _default_lint_paths() -> List[str]:
    """The installed ``repro`` package directory (i.e. ``src/repro``)."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_dir]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="determinism lint + PILL protocol sanitizer tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the simulation-purity linter")
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_",
        help="report format (json is machine-readable)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to enable (default: all)",
    )

    protolint = sub.add_parser(
        "protolint", help="run the protocol-discipline CFG analyzer"
    )
    protolint.add_argument(
        "paths", nargs="*", default=None,
        help="engine files to analyze (default: protocol/ + recovery/)",
    )
    protolint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_",
        help="report format (json is machine-readable)",
    )
    protolint.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline file of accepted findings "
        "(default: PROTOLINT_BASELINE.json at the repo root)",
    )
    protolint.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline file with the current findings",
    )

    races = sub.add_parser(
        "races", help="lockset race detector over flight-recorder traces"
    )
    races.add_argument(
        "traces", nargs="+",
        help="flight-recorder JSONL files to analyze",
    )
    races.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_",
        help="report format (json is machine-readable)",
    )

    mutants = sub.add_parser(
        "mutants", help="run the sanitizer mutation-testing harness"
    )
    mutants.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help="run only the named mutants (dynamic and static)",
    )
    mutants.add_argument(
        "--skip-static", action="store_true",
        help="skip the protolint overlay mutants (dynamic rigs only)",
    )
    return parser


def _cmd_lint(args) -> int:
    from repro.analysis.simlint import lint_paths, render_json, render_text

    paths = args.paths or _default_lint_paths()
    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    findings = lint_paths(paths, select=select)
    if args.format_ == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _cmd_protolint(args) -> int:
    from repro.analysis import protolint as pl

    findings = pl.run_protolint(paths=args.paths or None)
    root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    baseline_path = args.baseline or os.path.join(
        root, "PROTOLINT_BASELINE.json"
    )
    if args.write_baseline:
        pl.write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    findings = pl.filter_baseline(findings, pl.load_baseline(baseline_path))
    if args.format_ == "json":
        print(pl.render_json(findings))
    else:
        print(pl.render_text(findings))
    return 1 if findings else 0


def _cmd_races(args) -> int:
    from repro.analysis.races import (
        analyze_traces,
        render_json,
        render_text,
    )

    report = analyze_traces(args.traces)
    if args.format_ == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return 1 if report.races else 0


def _cmd_mutants(args) -> int:
    from repro.analysis.mutants import (
        render_results,
        run_mutation_harness,
        run_static_mutants,
    )

    results = run_mutation_harness(only=args.only)
    static_results = (
        None if args.skip_static else run_static_mutants(only=args.only)
    )
    print(render_results(results, static_results))
    if not results and not static_results:
        print("no mutants matched", file=sys.stderr)
        return 1
    ok = all(result.passed for result in results)
    if static_results is not None:
        ok = ok and all(result.passed for result in static_results)
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "lint": _cmd_lint,
        "protolint": _cmd_protolint,
        "races": _cmd_races,
        "mutants": _cmd_mutants,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
