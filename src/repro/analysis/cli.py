"""Entry point: ``python -m repro.analysis`` (also ``repro-analysis``).

Subcommands::

    python -m repro.analysis lint [paths...] [--format json] [--select SIM00x,...]
    python -m repro.analysis mutants [--only name ...]

``lint`` exits nonzero if any finding survives; ``mutants`` exits
nonzero unless every seeded protocol mutation is detected and every
control run is clean. Both are wired into CI (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _default_lint_paths() -> List[str]:
    """The installed ``repro`` package directory (i.e. ``src/repro``)."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return [package_dir]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description="determinism lint + PILL protocol sanitizer tooling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="run the simulation-purity linter")
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_",
        help="report format (json is machine-readable)",
    )
    lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to enable (default: all)",
    )

    mutants = sub.add_parser(
        "mutants", help="run the sanitizer mutation-testing harness"
    )
    mutants.add_argument(
        "--only", nargs="*", default=None, metavar="NAME",
        help="run only the named mutants",
    )
    return parser


def _cmd_lint(args) -> int:
    from repro.analysis.simlint import lint_paths, render_json, render_text

    paths = args.paths or _default_lint_paths()
    select = None
    if args.select:
        select = [rule.strip() for rule in args.select.split(",") if rule.strip()]
    findings = lint_paths(paths, select=select)
    if args.format_ == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def _cmd_mutants(args) -> int:
    from repro.analysis.mutants import render_results, run_mutation_harness

    results = run_mutation_harness(only=args.only)
    print(render_results(results))
    if not results:
        print("no mutants matched", file=sys.stderr)
        return 1
    return 0 if all(result.passed for result in results) else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {"lint": _cmd_lint, "mutants": _cmd_mutants}
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
