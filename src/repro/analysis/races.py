"""Lockset race detector over flight-recorder traces.

The dynamic half of the protocol-discipline contract that
:mod:`repro.analysis.protolint` proves statically: protolint argues
"every path of the engine releases what it acquires"; this module
checks real executions for the symptom those arguments rule out —
**conflicting, unsynchronized accesses to the same memory region by
different coordinators**.

Input is the flight-recorder JSONL that ``repro report`` /
``repro bench`` already emit (PR 3): one JSON object per engine
attempt, carrying the attempt's lock events (``acquired`` /
``released`` / ``steal`` / ``conflict``) and its posted verbs. Since
PR 7, region-addressed verbs (``cas_lock``, ``write_lock``,
``write_object``) carry an address detail, which is what lets a
``write_object`` be attributed to a ``(table, slot)`` region here.

The simulator is single-threaded over one virtual clock, so
happens-before between any two recorded events *is* timestamp order —
the detector builds per-region **ownership intervals**
``[acquired, released)`` per attempt and checks:

``RACE-DOUBLE-GRANT``
    two attempts from different coordinators hold overlapping
    ownership intervals on one region. A PILL steal from a *crashed*
    owner (§3.1.2) is the sanctioned exception and is exempted.

``RACE-CONFLICT``
    an in-place ``write_object`` posted by one coordinator while a
    *different* coordinator owns the region's lock.

``RACE-UNLOCKED-WRITE``
    an in-place ``write_object`` posted while *nobody* owns the
    region — the dynamic twin of the sanitizer's ``PILL-WRITE``.

The detector can also consume a live :class:`PillSanitizer`'s
``lock_events`` transition log (see :func:`analyze_lock_events`),
which sees *memory-side* lock-word transitions — including recovery
traffic that posts with no focused flight attempt. The mutation
harness cross-checks both views against the same seeded bugs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.flight import FlightAttempt

__all__ = [
    "Race",
    "RaceReport",
    "analyze_attempts",
    "analyze_traces",
    "analyze_lock_events",
    "load_flight_jsonl",
    "render_text",
    "render_json",
]


@dataclass(frozen=True)
class Race:
    """One detected race on one memory region."""

    code: str  # RACE-DOUBLE-GRANT / RACE-CONFLICT / RACE-UNLOCKED-WRITE
    table: int
    slot: int
    time: float
    actors: Tuple[str, ...]
    message: str
    trace: str = "<memory>"

    def render(self) -> str:
        return (
            f"{self.code} table {self.table} slot {self.slot} at "
            f"{self.time * 1e6:.3f}us [{self.trace}]: {self.message}"
        )


@dataclass
class RaceReport:
    """Aggregated result over one or more traces."""

    races: List[Race] = field(default_factory=list)
    attempts: int = 0
    regions: int = 0
    writes_checked: int = 0
    traces: List[str] = field(default_factory=list)

    def merge(self, other: "RaceReport") -> None:
        self.races.extend(other.races)
        self.attempts += other.attempts
        self.regions += other.regions
        self.writes_checked += other.writes_checked
        self.traces.extend(other.traces)


class _Interval:
    """One ownership interval of one attempt on one region."""

    __slots__ = ("start", "end", "owner", "finished")

    def __init__(self, start: float, owner: str, finished: bool) -> None:
        self.start = start
        self.end = float("inf")
        self.owner = owner  # "c<coord> txn <id> attempt <n>"
        # Whether the owning attempt reached a recorded outcome. A
        # grant overlapping an UNfinished (crashed) owner is sanctioned
        # — PILL steals the stray lock, or recovery releases it at the
        # memory server, and neither shows up as a release in the dead
        # owner's flight record. A grant overlapping a FINISHED owner's
        # still-open interval is the symptom of a lock leak.
        self.finished = finished

    def covers(self, ts: float) -> bool:
        return self.start <= ts < self.end


def _owner_id(attempt: FlightAttempt) -> str:
    return f"c{attempt.coord_id} txn {attempt.txn_id:#x} attempt {attempt.attempt}"


def _intervals_for(
    attempt: FlightAttempt,
) -> Dict[Tuple[int, int], List[_Interval]]:
    """Pair acquired/released lock events into per-region intervals."""
    out: Dict[Tuple[int, int], List[_Interval]] = {}
    open_iv: Dict[Tuple[int, int], _Interval] = {}
    owner = _owner_id(attempt)
    finished = attempt.outcome is not None
    for event in attempt.locks:
        name, table, slot, ts = event[0], event[1], event[2], event[3]
        region = (table, slot)
        if name == "acquired":
            interval = _Interval(ts, owner, finished)
            open_iv[region] = interval
            out.setdefault(region, []).append(interval)
        elif name == "released":
            interval = open_iv.pop(region, None)
            if interval is not None:
                interval.end = ts
    # An attempt that never recorded a release for an open interval
    # either crashed (finished=False: PILL may steal it) or leaked the
    # lock; the interval stays open-ended (end = +inf).
    return out


def analyze_attempts(
    attempts: Iterable[FlightAttempt], trace: str = "<memory>"
) -> RaceReport:
    """Run the lockset checks over in-memory flight attempts."""
    report = RaceReport(traces=[trace])
    regions: Dict[Tuple[int, int], List[_Interval]] = {}
    writes: List[Tuple[float, Tuple[int, int], str]] = []
    attempts = list(attempts)
    report.attempts = len(attempts)
    for attempt in attempts:
        for region, intervals in _intervals_for(attempt).items():
            regions.setdefault(region, []).extend(intervals)
        owner = _owner_id(attempt)
        for entry in attempt.verbs:
            if entry[0] != "write_object" or len(entry) < 7:
                continue
            detail = entry[6]
            writes.append((entry[3], (detail[0], detail[1]), owner))
    report.regions = len(regions)
    report.writes_checked = len(writes)

    # RACE-DOUBLE-GRANT: overlapping intervals, different coordinators.
    for (table, slot), intervals in sorted(regions.items()):
        intervals.sort(key=lambda iv: iv.start)
        for i, left in enumerate(intervals):
            for right in intervals[i + 1 :]:
                if right.start >= left.end:
                    break
                if left.owner.split()[0] == right.owner.split()[0]:
                    continue  # same coordinator: sequential attempts
                if not left.finished:
                    # The earlier owner crashed mid-attempt (no
                    # outcome, no release): later grants reach the
                    # region via PILL's steal or recovery's stray-lock
                    # release, both invisible to the dead owner's
                    # flight record. Sanctioned.
                    continue
                report.races.append(
                    Race(
                        "RACE-DOUBLE-GRANT",
                        table,
                        slot,
                        right.start,
                        (left.owner, right.owner),
                        f"{right.owner} acquired the lock while "
                        f"{left.owner} still held it "
                        f"(held since {left.start * 1e6:.3f}us)",
                        trace,
                    )
                )

    # RACE-CONFLICT / RACE-UNLOCKED-WRITE: attribute each in-place
    # write to the region's owner at post time.
    for ts, region, writer in sorted(writes):
        holding = [
            iv for iv in regions.get(region, ()) if iv.covers(ts)
        ]
        if any(iv.owner == writer for iv in holding):
            continue
        table, slot = region
        others = [iv.owner for iv in holding if iv.owner != writer]
        if others:
            report.races.append(
                Race(
                    "RACE-CONFLICT",
                    table,
                    slot,
                    ts,
                    (writer, others[0]),
                    f"{writer} wrote the object in place while "
                    f"{others[0]} owned its lock",
                    trace,
                )
            )
        else:
            report.races.append(
                Race(
                    "RACE-UNLOCKED-WRITE",
                    table,
                    slot,
                    ts,
                    (writer,),
                    f"{writer} wrote the object in place while nobody "
                    "owned its lock",
                    trace,
                )
            )
    return report


def analyze_lock_events(
    lock_events: Iterable[Tuple[float, int, int, str, int, int]],
    failed_ids: Any = frozenset(),
    trace: str = "<sanitizer>",
) -> RaceReport:
    """Lockset check over a PillSanitizer's memory-side transition log.

    This view sees every lock-word transition the memory nodes
    executed — including recovery and registration traffic the flight
    recorder files as unattributed. ``failed_ids`` marks coordinators
    whose steals are sanctioned.
    """
    report = RaceReport(traces=[trace])
    held: Dict[Tuple[int, int], Tuple[int, float]] = {}
    regions = set()
    for ts, table, slot, event, compute, _word in lock_events:
        region = (table, slot)
        regions.add(region)
        if event in ("grant", "overwrite"):
            held[region] = (compute, ts)
        elif event == "steal":
            prior = held.get(region)
            if prior is not None and prior[0] not in failed_ids:
                report.races.append(
                    Race(
                        "RACE-DOUBLE-GRANT",
                        table,
                        slot,
                        ts,
                        (f"c{prior[0]}", f"c{compute}"),
                        f"compute {compute} stole the lock from live "
                        f"compute {prior[0]} (held since "
                        f"{prior[1] * 1e6:.3f}us)",
                        trace,
                    )
                )
            held[region] = (compute, ts)
        elif event == "release":
            held.pop(region, None)
    report.regions = len(regions)
    return report


def load_flight_jsonl(path: str) -> List[FlightAttempt]:
    """Flight attempts from a (possibly mixed) obs JSONL export."""
    attempts = []
    with open(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if isinstance(payload, dict) and payload.get("ph") == "flight":
                attempts.append(FlightAttempt.from_json(payload))
    return attempts


def analyze_traces(paths: Iterable[str]) -> RaceReport:
    """Run :func:`analyze_attempts` over each JSONL file and merge."""
    report = RaceReport()
    for path in paths:
        report.merge(analyze_attempts(load_flight_jsonl(path), trace=path))
    return report


def render_text(report: RaceReport) -> str:
    lines = [race.render() for race in report.races]
    lines.append(
        f"races: {len(report.races)} race(s) over {report.attempts} "
        f"attempt(s), {report.regions} region(s), "
        f"{report.writes_checked} in-place write(s) checked"
    )
    return "\n".join(lines)


def render_json(report: RaceReport) -> str:
    return json.dumps(
        {
            "tool": "races",
            "races": [
                {
                    "code": race.code,
                    "table": race.table,
                    "slot": race.slot,
                    "time": race.time,
                    "actors": list(race.actors),
                    "message": race.message,
                    "trace": race.trace,
                }
                for race in report.races
            ],
            "attempts": report.attempts,
            "regions": report.regions,
            "writes_checked": report.writes_checked,
            "traces": report.traces,
            "count": len(report.races),
        },
        indent=2,
    )


def _main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    import argparse

    parser = argparse.ArgumentParser(prog="repro-races")
    parser.add_argument("traces", nargs="+")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    args = parser.parse_args(argv)
    report = analyze_traces(args.traces)
    rendered = render_json(report) if args.format == "json" else render_text(report)
    print(rendered)  # simlint: disable=SIM007 -- direct CLI entry point
    return 1 if report.races else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(_main())
